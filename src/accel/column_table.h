// ColumnTable: one accelerator-resident table — hash-distributed across
// data slices, columnar within each slice, versioned with per-row
// createxid/deletexid transaction ids exactly like Netezza's storage model.
// Visibility is decided by TransactionManager::IsVisible, which implements
// the paper's requirement: snapshot isolation for other transactions plus
// read-your-own-uncommitted-writes for the DB2 transaction that issued the
// statement.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "accel/batch.h"
#include "accel/column.h"
#include "accel/zone_map.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "sql/binder.h"
#include "txn/transaction_manager.h"

namespace idaa::accel {

/// Tuning knobs of the simulated appliance.
struct AcceleratorOptions {
  size_t num_slices = 4;      ///< parallel data slices (SPU equivalents)
  size_t zone_size = 1024;    ///< rows per zone-map extent
  bool enable_zone_maps = true;
  size_t num_threads = 4;     ///< worker threads for slice parallelism
  /// Vectorized batch execution (selection-vector scans over raw column
  /// arrays). When off — or when a query is not batchable — the
  /// row-at-a-time path runs instead; results are identical.
  bool enable_batch_path = true;
  size_t morsel_size = kDefaultMorselSize;  ///< rows per scan morsel
  /// Per-zone compressed encodings (RLE / FOR-bitpack / null bitmaps),
  /// applied by GROOM to full zones while the hot tail stays uncompressed.
  /// Logical results are identical either way; when off, future GROOMs
  /// stop compacting (and rebuilds decompact, since rebuilt slices start
  /// raw).
  bool enable_encoding = true;
};

/// Column-major staging buffer for bulk appends from the vectorized
/// engine: per column, exactly the typed vector matching the schema type
/// is populated (sized num_rows; `nulls` is optional — empty means no
/// NULLs, and values at NULL positions are ignored). Only DOUBLE, INTEGER
/// and VARCHAR columns are supported; writers of other types use the
/// row-at-a-time Insert.
struct ColumnarRows {
  struct Col {
    std::vector<double> doubles;       ///< DataType::kDouble
    std::vector<int64_t> ints;         ///< DataType::kInteger
    std::vector<std::string> strings;  ///< DataType::kVarchar
    std::vector<uint8_t> nulls;        ///< optional; 1 = NULL at that row
  };
  size_t num_rows = 0;
  std::vector<Col> columns;
};

/// Result of a groom (space reclamation) pass.
struct GroomStats {
  size_t rows_examined = 0;
  size_t rows_reclaimed = 0;
  size_t zones_compacted = 0;  ///< zones newly encoded by this pass
};

/// Table-wide encoding summary (EXPLAIN attrs, compression bench).
struct TableEncodingStats {
  ColumnEncodingStats columns;  ///< summed over slices × columns
  size_t hot_rows = 0;          ///< row versions still in the raw hot tail
  uint64_t compaction_epoch = 0;
};

/// Per-scan accounting for one slice (query-trace attribution; the global
/// MetricsRegistry counters are incremented regardless).
struct SliceScanStats {
  size_t rows_scanned = 0;
  size_t rows_skipped_zone_map = 0;
};

class ColumnTable {
 public:
  ColumnTable(Schema schema, std::optional<size_t> distribution_column,
              const AcceleratorOptions& options);

  const Schema& schema() const { return schema_; }
  size_t num_slices() const { return slices_.size(); }

  /// Append rows with createxid = txn (uncommitted until the transaction
  /// manager publishes the commit).
  Status Insert(const std::vector<Row>& rows, TxnId txn);

  /// Columnar bulk append: same transactional semantics and identical
  /// stored state as Insert() of the equivalent rows, but values move
  /// straight from the staged column vectors into the column arrays —
  /// no Row materialization or per-cell Value boxing on the hot path.
  Status InsertColumnar(const ColumnarRows& rows, TxnId txn);

  /// Mark all rows visible to `txn` that satisfy `predicate` (nullable) as
  /// deleted by `txn`. Snapshot-isolation first-writer-wins: deleting a row
  /// already deleted by a concurrent or newer-committed transaction fails
  /// with kConflict.
  Result<size_t> DeleteWhere(const sql::BoundExpr* predicate, TxnId txn,
                             Csn snapshot, const TransactionManager& tm);

  /// Delete the first row visible to `txn` whose values equal `image`
  /// (storage equality; NULL matches NULL). Used by replication apply,
  /// where full-row images identify rows content-wise. Returns whether a
  /// row was found.
  Result<bool> DeleteOneMatching(const Row& image, TxnId txn, Csn snapshot,
                                 const TransactionManager& tm);

  /// Update = delete old version + insert new version in one pass.
  Result<size_t> UpdateWhere(
      const std::vector<std::pair<size_t, const sql::BoundExpr*>>& assignments,
      const sql::BoundExpr* predicate, TxnId txn, Csn snapshot,
      const TransactionManager& tm);

  /// Scan one slice: rows visible to (reader, snapshot) that satisfy
  /// `predicate`. Zones that provably cannot match are skipped via zone
  /// maps; pure conjunctions of simple comparisons take a vectorized
  /// column-at-a-time path; visibility resolution is memoized per scan.
  /// If `projection` is non-null (one flag per column), columns whose flag
  /// is 0 are not materialized (the output row holds NULL there) — the
  /// columnar engine reads only what the query touches.
  /// Thread-safe against concurrent scans.
  /// `stats`, when non-null, receives this scan's row accounting (for
  /// per-query trace attribution).
  Result<std::vector<Row>> ScanSlice(size_t slice_index,
                                     const sql::BoundExpr* predicate,
                                     TxnId reader, Csn snapshot,
                                     const TransactionManager& tm,
                                     MetricsRegistry* metrics,
                                     const std::vector<uint8_t>* projection =
                                         nullptr,
                                     SliceScanStats* stats = nullptr) const;

  /// Rows visible to (reader, snapshot) across all slices (no predicate).
  Result<size_t> CountVisible(TxnId reader, Csn snapshot,
                              const TransactionManager& tm) const;

  /// Column-at-a-time visitor over the visible, predicate-passing rows of
  /// one slice — the hook for slice-local (SPU-side) aggregation. Only
  /// predicates that convert exactly to column ranges are supported;
  /// anything else returns kNotSupported and the caller must fall back to
  /// ScanSlice. The visitor receives the slice's columns and a row index.
  using ColumnVisitor =
      std::function<void(const std::vector<std::unique_ptr<Column>>& columns,
                         size_t row_index)>;
  Status VisitVisible(size_t slice_index, const sql::BoundExpr* predicate,
                      TxnId reader, Csn snapshot, const TransactionManager& tm,
                      MetricsRegistry* metrics, const ColumnVisitor& visitor,
                      SliceScanStats* stats = nullptr) const;

  // ---- Vectorized batch scan interface ----------------------------------

  const AcceleratorOptions& options() const { return options_; }

  /// Pin the physical layout for a multi-acquisition scan: while held,
  /// Groom cannot rebuild slices (which would shift row indexes), but
  /// writers still append and mark deletes freely. Scans that release and
  /// re-take the data lock between morsels must hold a pin for their whole
  /// duration. Lock order: groom pin before the data lock, always.
  std::shared_lock<std::shared_mutex> PinForScan() const {
    return std::shared_lock<std::shared_mutex>(groom_mu_);
  }

  /// Split every slice's current rows into zone-aligned morsels of about
  /// `morsel_size` rows, in slice order (so morsel-order concatenation
  /// equals slice-order concatenation). Rows appended after planning are
  /// not covered — they postdate the scan snapshot.
  std::vector<Morsel> PlanMorsels(size_t morsel_size) const;

  /// Compile `ranges` against one slice's dictionaries (codes are
  /// slice-local). nullopt → not batchable, use the row path.
  std::optional<BatchPredicate> CompilePredicateForSlice(
      size_t slice_index, const std::vector<ColumnRange>& ranges) const;

  /// Scan one morsel: bulk visibility over createxid/deletexid, zone-map
  /// pruning, compiled predicate column-at-a-time, then hand the surviving
  /// selection to `consumer` as a ColumnBatch. The data lock is held only
  /// for the duration of this call (callers hold a PinForScan across the
  /// whole morsel loop); `sel` is caller-owned scratch so workers reuse
  /// the allocation across morsels.
  using BatchConsumer = std::function<void(const ColumnBatch& batch)>;
  /// `zone_filter` (optional) is an extra zone-granular pruning hook
  /// consulted after the range-based zone-map check: return false to skip
  /// the zone (sideways information passing, e.g. join-key Bloom filters).
  /// It must be conservative — pruning a zone that could match is a
  /// correctness bug, keeping one that cannot is only a missed skip.
  using ZoneFilter = std::function<bool(const ZoneMap& zone_map, size_t zone)>;
  void ScanMorsel(const Morsel& morsel, const std::vector<ColumnRange>& ranges,
                  const BatchPredicate* predicate,
                  const TransactionManager::VisibilityChecker& visibility,
                  std::vector<uint32_t>* sel, BatchScanStats* stats,
                  const BatchConsumer& consumer,
                  const ZoneFilter* zone_filter = nullptr) const;

  /// Translate the slice-local dictionary codes of VARCHAR `column` in
  /// slice `slice_index` into 1-based codes of `target` (0 = the string
  /// does not occur in `target`). Used by the batch join to compare
  /// dictionary codes instead of strings across tables.
  std::vector<uint32_t> MapDictionaryCodes(size_t slice_index, size_t column,
                                           const Column& target) const;

  /// Reclaim rows whose deletion committed at csn <= horizon and rows
  /// created by aborted transactions; clears aborted deletexids. When
  /// encoding is enabled, every full zone of the surviving data is then
  /// compacted into its per-zone encoding (chosen from zone stats) — the
  /// hot tail past the last full zone stays uncompressed, and zone-map
  /// extrema are observed from the pre-encoding raw values during the
  /// rebuild so pruning bounds stay exact.
  GroomStats Groom(Csn horizon, const TransactionManager& tm);

  /// Runtime toggle for GROOM-time compaction (mirrors the table-level
  /// effect of AcceleratorOptions::enable_encoding). Takes effect at the
  /// next Groom; already-encoded zones keep decoding transparently.
  void SetEncodingEnabled(bool enabled) {
    encoding_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool encoding_enabled() const {
    return encoding_enabled_.load(std::memory_order_relaxed);
  }

  /// Bumped by every Groom pass that newly encodes at least one zone:
  /// cached results computed against the pre-compaction layout are
  /// invalidated on the bump (physical layout changed; logical content did
  /// not, but row order within rebuilt slices may have).
  uint64_t compaction_epoch() const {
    return compaction_epoch_.load(std::memory_order_acquire);
  }

  TableEncodingStats EncodingStats() const;

  /// Total stored row versions (live + not yet groomed).
  size_t NumVersions() const;

  /// Physical-layout fingerprint of one slice: every stored row version in
  /// storage order, values rendered with NULLs marked, independent of
  /// transaction ids. Two tables loaded with the same data are physically
  /// identical iff all slice fingerprints match — the loader's
  /// bit-identical-across-worker-counts tests assert exactly this.
  std::string SliceContentString(size_t slice_index) const;

  /// Approximate compressed bytes across all slices.
  size_t ByteSize() const;

 private:
  struct Slice {
    std::vector<std::unique_ptr<Column>> columns;
    std::vector<TxnId> createxid;
    std::vector<TxnId> deletexid;
    ZoneMap zone_map;

    Slice(const Schema& schema, size_t zone_size);
    size_t NumRows() const { return createxid.size(); }
    /// Pre-size all per-row arrays for `n` total rows (bulk ingest).
    void Reserve(size_t n);
    Status Append(const Row& row, TxnId txn);
    Row MaterializeRow(size_t i) const;
    /// Materialize only the flagged columns (others stay NULL).
    Row MaterializeProjected(size_t i,
                             const std::vector<uint8_t>& projection) const;
  };

  size_t SliceFor(const Row& row);

  Schema schema_;
  std::optional<size_t> distribution_column_;
  AcceleratorOptions options_;
  // Two-level locking: mu_ protects all per-slice data and is held only
  // briefly (per zone / per morsel) by scans so writers interleave;
  // groom_mu_ is taken shared by scans for their whole duration (PinForScan)
  // and unique by Groom, whose slice rebuilds shift row indexes. Order:
  // groom_mu_ then mu_.
  mutable std::shared_mutex groom_mu_;
  mutable std::shared_mutex mu_;
  std::vector<Slice> slices_;
  size_t round_robin_next_ = 0;
  std::atomic<bool> encoding_enabled_{true};
  std::atomic<uint64_t> compaction_epoch_{0};
};

}  // namespace idaa::accel
