#include "accel/column.h"

#include <algorithm>

#include "common/schema.h"

namespace idaa::accel {

namespace {

// Set bit i of a packed bitmap (pre-sized).
void BitmapSet(std::vector<uint64_t>& bits, size_t i) {
  bits[i >> 6] |= uint64_t{1} << (i & 63);
}

// Write a `width`-bit value at element index `idx` (words pre-zeroed, one
// trailing pad word allocated).
void PackValue(std::vector<uint64_t>& words, size_t idx, uint32_t width,
               uint64_t delta) {
  const size_t bit = idx * width;
  const size_t w = bit >> 6;
  const size_t b = bit & 63;
  words[w] |= delta << b;
  if (b + width > 64) words[w + 1] |= delta >> (64 - b);
}

// Count runs of identical (value, nullness) in vals[0, n). Null positions
// hold the type's zero, so comparing values alone cannot merge a NULL run
// with a genuine zero run — the null flag is compared explicitly.
template <typename T>
size_t CountRuns(const T* vals, const uint8_t* nulls, size_t n) {
  size_t runs = 1;
  for (size_t i = 1; i < n; ++i) {
    if (vals[i] != vals[i - 1] || nulls[i] != nulls[i - 1]) ++runs;
  }
  return runs;
}

template <typename T, typename Out>
void BuildRle(const T* vals, const uint8_t* nulls, size_t n,
              std::vector<Out>* out_vals, std::vector<uint32_t>* run_ends) {
  size_t start = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || vals[i] != vals[start] || nulls[i] != nulls[start]) {
      out_vals->push_back(static_cast<Out>(vals[start]));
      run_ends->push_back(static_cast<uint32_t>(i));
      start = i;
    }
  }
}

// Bits needed for values in [min, max]; 64 when the span overflows (e.g.
// INT64_MIN..INT64_MAX), which disqualifies FOR packing.
uint32_t BitWidthFor(int64_t min_v, int64_t max_v) {
  const uint64_t span =
      static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
  uint32_t w = 0;
  while (w < 64 && (span >> w) != 0) ++w;
  return w;
}

std::vector<uint64_t> BuildNullBitmap(const uint8_t* nulls, size_t n) {
  std::vector<uint64_t> bits;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    if (nulls[i]) {
      any = true;
      break;
    }
  }
  if (!any) return bits;  // empty bitmap == no NULLs
  bits.assign((n + 63) / 64, 0);
  for (size_t i = 0; i < n; ++i) {
    if (nulls[i]) BitmapSet(bits, i);
  }
  return bits;
}

}  // namespace

const char* ZoneEncodingName(ZoneEncoding e) {
  switch (e) {
    case ZoneEncoding::kPlain:
      return "plain";
    case ZoneEncoding::kRle:
      return "rle";
    case ZoneEncoding::kForPacked:
      return "for";
  }
  return "?";
}

size_t EncodedZone::ByteSize() const {
  return null_bits.size() * sizeof(uint64_t) + ints.size() * sizeof(int64_t) +
         doubles.size() * sizeof(double) + codes.size() * sizeof(uint32_t) +
         run_ends.size() * sizeof(uint32_t) + packed.size() * sizeof(uint64_t);
}

void Column::Reserve(size_t n) {
  nulls_.reserve(n);
  switch (type_) {
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kVarchar:
      codes_.reserve(n);
      break;
    default:
      ints_.reserve(n);
  }
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    nulls_.push_back(1);
    switch (type_) {
      case DataType::kDouble:
        doubles_.push_back(0.0);
        break;
      case DataType::kVarchar:
        codes_.push_back(0);
        break;
      default:
        ints_.push_back(0);
    }
    return Status::OK();
  }
  if (!ValueMatchesType(v, type_)) {
    return Status::ConstraintViolation("column type mismatch: " + v.ToString() +
                                       " vs " + DataTypeToString(type_));
  }
  nulls_.push_back(0);
  switch (type_) {
    case DataType::kBoolean:
      ints_.push_back(v.AsBoolean() ? 1 : 0);
      break;
    case DataType::kInteger:
      ints_.push_back(v.AsInteger());
      break;
    case DataType::kDate:
      ints_.push_back(v.AsDate());
      break;
    case DataType::kTimestamp:
      ints_.push_back(v.AsTimestamp());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case DataType::kVarchar: {
      const std::string& s = v.AsVarchar();
      auto it = dict_index_.find(s);
      uint32_t code;
      if (it == dict_index_.end()) {
        code = static_cast<uint32_t>(dict_.size());
        dict_.push_back(s);
        dict_index_.emplace(s, code);
      } else {
        code = it->second;
      }
      codes_.push_back(code);
      break;
    }
  }
  return Status::OK();
}

void Column::AppendRawNull() {
  nulls_.push_back(1);
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kVarchar:
      codes_.push_back(0);
      break;
    default:
      ints_.push_back(0);
  }
}

void Column::AppendRawVarchar(const std::string& s) {
  nulls_.push_back(0);
  auto it = dict_index_.find(s);
  uint32_t code;
  if (it == dict_index_.end()) {
    code = static_cast<uint32_t>(dict_.size());
    dict_.push_back(s);
    dict_index_.emplace(s, code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
}

void Column::AppendFrom(const Column& src, size_t i) {
  if (src.IsNull(i)) {
    AppendRawNull();
    return;
  }
  switch (type_) {
    case DataType::kDouble:
      AppendRawDouble(src.RawDouble(i));
      break;
    case DataType::kVarchar:
      AppendRawVarchar(src.DictEntry(src.RawCode(i)));
      break;
    default:
      AppendRawInt(src.RawInt(i));
  }
}

Value Column::Get(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kBoolean:
      return Value::Boolean(RawInt(i) != 0);
    case DataType::kInteger:
      return Value::Integer(RawInt(i));
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(RawInt(i)));
    case DataType::kTimestamp:
      return Value::Timestamp(RawInt(i));
    case DataType::kDouble:
      return Value::Double(RawDouble(i));
    case DataType::kVarchar:
      return Value::Varchar(dict_[RawCode(i)]);
  }
  return Value::Null();
}

Value ColumnCursor::Get(size_t i) {
  if (IsNull(i)) return Value::Null();
  switch (col_->type()) {
    case DataType::kBoolean:
      return Value::Boolean(Int(i) != 0);
    case DataType::kInteger:
      return Value::Integer(Int(i));
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(Int(i)));
    case DataType::kTimestamp:
      return Value::Timestamp(Int(i));
    case DataType::kDouble:
      return Value::Double(Double(i));
    case DataType::kVarchar:
      return Value::Varchar(col_->DictEntry(Code(i)));
  }
  return Value::Null();
}

int64_t Column::LookupCode(const std::string& s) const {
  auto it = dict_index_.find(s);
  return it == dict_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

bool Column::EncodedIsNull(size_t i) const {
  const EncodedZone& z = zones_[i / zone_size_];
  return BitmapGet(z.null_bits, i % zone_size_);
}

int64_t Column::EncodedInt(size_t i) const {
  const EncodedZone& z = zones_[i / zone_size_];
  const size_t off = i % zone_size_;
  switch (z.encoding) {
    case ZoneEncoding::kPlain:
      return z.ints[off];
    case ZoneEncoding::kRle: {
      const size_t run = std::upper_bound(z.run_ends.begin(), z.run_ends.end(),
                                          static_cast<uint32_t>(off)) -
                         z.run_ends.begin();
      return z.ints[run];
    }
    case ZoneEncoding::kForPacked:
      if (z.bit_width == 0) return z.for_base;
      return z.for_base + static_cast<int64_t>(
                              ExtractPacked(z.packed.data(), off, z.bit_width));
  }
  return 0;
}

double Column::EncodedDouble(size_t i) const {
  const EncodedZone& z = zones_[i / zone_size_];
  const size_t off = i % zone_size_;
  if (z.encoding == ZoneEncoding::kRle) {
    const size_t run = std::upper_bound(z.run_ends.begin(), z.run_ends.end(),
                                        static_cast<uint32_t>(off)) -
                       z.run_ends.begin();
    return z.doubles[run];
  }
  return z.doubles[off];
}

uint32_t Column::EncodedCode(size_t i) const {
  const EncodedZone& z = zones_[i / zone_size_];
  const size_t off = i % zone_size_;
  switch (z.encoding) {
    case ZoneEncoding::kPlain:
      return z.codes[off];
    case ZoneEncoding::kRle: {
      const size_t run = std::upper_bound(z.run_ends.begin(), z.run_ends.end(),
                                          static_cast<uint32_t>(off)) -
                         z.run_ends.begin();
      return z.codes[run];
    }
    case ZoneEncoding::kForPacked:
      if (z.bit_width == 0) return static_cast<uint32_t>(z.for_base);
      return static_cast<uint32_t>(
          z.for_base + static_cast<int64_t>(ExtractPacked(z.packed.data(), off,
                                                          z.bit_width)));
  }
  return 0;
}

void Column::EncodeOneZone() {
  const size_t n = zone_size_;
  EncodedZone z;
  z.null_bits = BuildNullBitmap(nulls_.data(), n);
  const size_t bitmap_bytes = z.null_bits.size() * sizeof(uint64_t);

  switch (type_) {
    case DataType::kDouble: {
      const size_t runs = CountRuns(doubles_.data(), nulls_.data(), n);
      const size_t rle_bytes =
          runs * (sizeof(double) + sizeof(uint32_t)) + bitmap_bytes;
      const size_t plain_bytes = n * sizeof(double) + bitmap_bytes;
      if (rle_bytes < plain_bytes) {
        z.encoding = ZoneEncoding::kRle;
        BuildRle(doubles_.data(), nulls_.data(), n, &z.doubles, &z.run_ends);
      } else {
        z.encoding = ZoneEncoding::kPlain;
        z.doubles.assign(doubles_.begin(), doubles_.begin() + n);
      }
      doubles_.erase(doubles_.begin(), doubles_.begin() + n);
      break;
    }
    case DataType::kVarchar: {
      const size_t runs = CountRuns(codes_.data(), nulls_.data(), n);
      uint32_t min_c = codes_[0];
      uint32_t max_c = codes_[0];
      for (size_t i = 1; i < n; ++i) {
        min_c = std::min(min_c, codes_[i]);
        max_c = std::max(max_c, codes_[i]);
      }
      const uint32_t width = BitWidthFor(min_c, max_c);
      const size_t rle_bytes =
          runs * (sizeof(uint32_t) + sizeof(uint32_t)) + bitmap_bytes;
      const size_t for_bytes =
          ((n * width + 63) / 64 + 1) * sizeof(uint64_t) + bitmap_bytes;
      const size_t plain_bytes = n * sizeof(uint32_t) + bitmap_bytes;
      // Same run-heavy preference as the int branch: runs buy per-run
      // execution, worth more than a marginally smaller FOR zone.
      const bool run_heavy = runs * 8 <= n;
      if ((rle_bytes <= for_bytes || run_heavy) && rle_bytes < plain_bytes) {
        z.encoding = ZoneEncoding::kRle;
        BuildRle(codes_.data(), nulls_.data(), n, &z.codes, &z.run_ends);
      } else if (for_bytes < plain_bytes) {
        z.encoding = ZoneEncoding::kForPacked;
        z.for_base = min_c;
        z.bit_width = width;
        if (width > 0) {
          z.packed.assign((n * width + 63) / 64 + 1, 0);
          for (size_t i = 0; i < n; ++i) {
            PackValue(z.packed, i, width, codes_[i] - min_c);
          }
        }
      } else {
        z.encoding = ZoneEncoding::kPlain;
        z.codes.assign(codes_.begin(), codes_.begin() + n);
      }
      codes_.erase(codes_.begin(), codes_.begin() + n);
      break;
    }
    default: {  // int-family
      const size_t runs = CountRuns(ints_.data(), nulls_.data(), n);
      int64_t min_v = ints_[0];
      int64_t max_v = ints_[0];
      for (size_t i = 1; i < n; ++i) {
        min_v = std::min(min_v, ints_[i]);
        max_v = std::max(max_v, ints_[i]);
      }
      // NULL positions already hold 0 in the raw array and are packed
      // verbatim, so decode needs no bitmap consult and a NULL position
      // decodes to exactly the 0 the flat array held.
      const uint32_t width = BitWidthFor(min_v, max_v);
      const size_t rle_bytes =
          runs * (sizeof(int64_t) + sizeof(uint32_t)) + bitmap_bytes;
      const size_t for_bytes =
          width >= 64 ? SIZE_MAX
                      : ((n * width + 63) / 64 + 1) * sizeof(uint64_t) +
                            bitmap_bytes;
      const size_t plain_bytes = n * sizeof(int64_t) + bitmap_bytes;
      // Run-heavy zones take RLE even when FOR is marginally smaller
      // (a constant zone is 8 bytes as FOR, 12 as RLE): runs feed the
      // per-run filter verdicts and run-folded accumulators, worth far
      // more than the few bytes.
      const bool run_heavy = runs * 8 <= n;
      if ((rle_bytes <= for_bytes || run_heavy) && rle_bytes < plain_bytes) {
        z.encoding = ZoneEncoding::kRle;
        BuildRle(ints_.data(), nulls_.data(), n, &z.ints, &z.run_ends);
      } else if (for_bytes < plain_bytes) {
        z.encoding = ZoneEncoding::kForPacked;
        z.for_base = min_v;
        z.bit_width = width;
        if (width > 0) {
          z.packed.assign((n * width + 63) / 64 + 1, 0);
          for (size_t i = 0; i < n; ++i) {
            PackValue(z.packed, i, width,
                      static_cast<uint64_t>(ints_[i]) -
                          static_cast<uint64_t>(min_v));
          }
        }
      } else {
        z.encoding = ZoneEncoding::kPlain;
        z.ints.assign(ints_.begin(), ints_.begin() + n);
      }
      ints_.erase(ints_.begin(), ints_.begin() + n);
      break;
    }
  }

  nulls_.erase(nulls_.begin(), nulls_.begin() + n);
  zones_.push_back(std::move(z));
  encoded_rows_ += n;
}

void Column::CompactZones(size_t zone_size) {
  if (zone_size == 0) return;
  if (zone_size_ == 0) zone_size_ = zone_size;
  while (nulls_.size() >= zone_size_) EncodeOneZone();
}

void Column::DecodeZoneInts(size_t zi, int64_t* out, uint8_t* nulls_out) const {
  const EncodedZone& z = zones_[zi];
  const size_t n = zone_size_;
  for (size_t i = 0; i < n; ++i) {
    nulls_out[i] = BitmapGet(z.null_bits, i) ? 1 : 0;
  }
  switch (z.encoding) {
    case ZoneEncoding::kPlain:
      std::copy(z.ints.begin(), z.ints.end(), out);
      break;
    case ZoneEncoding::kRle: {
      size_t start = 0;
      for (size_t r = 0; r < z.run_ends.size(); ++r) {
        const size_t end = z.run_ends[r];
        std::fill(out + start, out + end, z.ints[r]);
        start = end;
      }
      break;
    }
    case ZoneEncoding::kForPacked:
      if (z.bit_width == 0) {
        std::fill(out, out + n, z.for_base);
      } else {
        for (size_t i = 0; i < n; ++i) {
          out[i] = z.for_base +
                   static_cast<int64_t>(
                       ExtractPacked(z.packed.data(), i, z.bit_width));
        }
      }
      break;
  }
}

ColumnEncodingStats Column::EncodingStats() const {
  ColumnEncodingStats s;
  const size_t elem = type_ == DataType::kVarchar ? sizeof(uint32_t)
                                                  : sizeof(int64_t);
  for (const EncodedZone& z : zones_) {
    switch (z.encoding) {
      case ZoneEncoding::kPlain:
        ++s.zones_plain;
        break;
      case ZoneEncoding::kRle:
        ++s.zones_rle;
        break;
      case ZoneEncoding::kForPacked:
        ++s.zones_for;
        break;
    }
    s.encoded_bytes += z.ByteSize();
    s.raw_bytes += zone_size_ * (elem + 1);  // values + byte-per-row nulls
  }
  s.encoded_rows = encoded_rows_;
  return s;
}

size_t Column::ByteSize() const {
  size_t bytes = nulls_.size();
  bytes += ints_.size() * sizeof(int64_t);
  bytes += doubles_.size() * sizeof(double);
  bytes += codes_.size() * sizeof(uint32_t);
  for (const auto& s : dict_) bytes += s.size();
  for (const EncodedZone& z : zones_) bytes += z.ByteSize();
  return bytes;
}

}  // namespace idaa::accel
