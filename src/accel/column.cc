#include "accel/column.h"

#include "common/schema.h"

namespace idaa::accel {

void Column::Reserve(size_t n) {
  nulls_.reserve(n);
  switch (type_) {
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kVarchar:
      codes_.reserve(n);
      break;
    default:
      ints_.reserve(n);
  }
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    nulls_.push_back(1);
    switch (type_) {
      case DataType::kDouble:
        doubles_.push_back(0.0);
        break;
      case DataType::kVarchar:
        codes_.push_back(0);
        break;
      default:
        ints_.push_back(0);
    }
    return Status::OK();
  }
  if (!ValueMatchesType(v, type_)) {
    return Status::ConstraintViolation("column type mismatch: " + v.ToString() +
                                       " vs " + DataTypeToString(type_));
  }
  nulls_.push_back(0);
  switch (type_) {
    case DataType::kBoolean:
      ints_.push_back(v.AsBoolean() ? 1 : 0);
      break;
    case DataType::kInteger:
      ints_.push_back(v.AsInteger());
      break;
    case DataType::kDate:
      ints_.push_back(v.AsDate());
      break;
    case DataType::kTimestamp:
      ints_.push_back(v.AsTimestamp());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case DataType::kVarchar: {
      const std::string& s = v.AsVarchar();
      auto it = dict_index_.find(s);
      uint32_t code;
      if (it == dict_index_.end()) {
        code = static_cast<uint32_t>(dict_.size());
        dict_.push_back(s);
        dict_index_.emplace(s, code);
      } else {
        code = it->second;
      }
      codes_.push_back(code);
      break;
    }
  }
  return Status::OK();
}

void Column::AppendRawNull() {
  nulls_.push_back(1);
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kVarchar:
      codes_.push_back(0);
      break;
    default:
      ints_.push_back(0);
  }
}

void Column::AppendRawVarchar(const std::string& s) {
  nulls_.push_back(0);
  auto it = dict_index_.find(s);
  uint32_t code;
  if (it == dict_index_.end()) {
    code = static_cast<uint32_t>(dict_.size());
    dict_.push_back(s);
    dict_index_.emplace(s, code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
}

Value Column::Get(size_t i) const {
  if (nulls_[i]) return Value::Null();
  switch (type_) {
    case DataType::kBoolean:
      return Value::Boolean(ints_[i] != 0);
    case DataType::kInteger:
      return Value::Integer(ints_[i]);
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(ints_[i]));
    case DataType::kTimestamp:
      return Value::Timestamp(ints_[i]);
    case DataType::kDouble:
      return Value::Double(doubles_[i]);
    case DataType::kVarchar:
      return Value::Varchar(dict_[codes_[i]]);
  }
  return Value::Null();
}

int64_t Column::LookupCode(const std::string& s) const {
  auto it = dict_index_.find(s);
  return it == dict_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

size_t Column::ByteSize() const {
  size_t bytes = nulls_.size();
  bytes += ints_.size() * sizeof(int64_t);
  bytes += doubles_.size() * sizeof(double);
  bytes += codes_.size() * sizeof(uint32_t);
  for (const auto& s : dict_) bytes += s.size();
  return bytes;
}

}  // namespace idaa::accel
