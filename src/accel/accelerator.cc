#include "accel/accelerator.h"

namespace idaa::accel {

const char* AcceleratorStateToString(AcceleratorState state) {
  switch (state) {
    case AcceleratorState::kOnline:
      return "ONLINE";
    case AcceleratorState::kOffline:
      return "OFFLINE";
    case AcceleratorState::kRecovering:
      return "RECOVERING";
  }
  return "UNKNOWN";
}

Status Accelerator::CheckReady(const char* op) const {
  AcceleratorState s = state();
  if (s != AcceleratorState::kOnline) {
    return Status::Unavailable(std::string(op) + ": accelerator " + name_ +
                               " is " +
                               (s == AcceleratorState::kOffline
                                    ? "offline"
                                    : "recovering (replaying replication "
                                      "backlog)"));
  }
  if (injector_ != nullptr) {
    Status st = injector_->MaybeFail(FaultInjector::AcceleratorSite(name_));
    if (!st.ok()) {
      metrics_->Increment(metric::kFaultsInjected);
      return st;
    }
  }
  return Status::OK();
}

Accelerator::Accelerator(const AcceleratorOptions& options,
                         TransactionManager* tm, MetricsRegistry* metrics,
                         std::string name)
    : options_(options), name_(Catalog::NormalizeName(name)),
      batch_path_enabled_(options.enable_batch_path),
      encoding_enabled_(options.enable_encoding), tm_(tm),
      metrics_(metrics), pool_(options.num_threads) {}

void Accelerator::SetEncodingEnabled(bool enabled) {
  encoding_enabled_ = enabled;
  // Tables created after the toggle inherit it (AddTable copies options_).
  options_.enable_encoding = enabled;
  std::vector<std::shared_ptr<ColumnTable>> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, table] : tables_) tables.push_back(table);
  }
  for (const auto& table : tables) table->SetEncodingEnabled(enabled);
}

size_t Accelerator::NumTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

Status Accelerator::AddTable(const TableInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = Catalog::NormalizeName(info.name);
  if (tables_.count(name)) {
    return Status::AlreadyExists("accelerator table already exists: " + name);
  }
  tables_[name] = std::make_shared<ColumnTable>(
      info.schema, info.distribution_column, options_);
  return Status::OK();
}

Status Accelerator::RemoveTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tables_.erase(Catalog::NormalizeName(name))) {
    return Status::NotFound("accelerator table not found: " + name);
  }
  return Status::OK();
}

bool Accelerator::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(Catalog::NormalizeName(name)) > 0;
}

Result<ColumnTable*> Accelerator::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Catalog::NormalizeName(name));
  if (it == tables_.end()) {
    return Status::NotFound("accelerator table not found: " + name);
  }
  return it->second.get();
}

Result<const ColumnTable*> Accelerator::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Catalog::NormalizeName(name));
  if (it == tables_.end()) {
    return Status::NotFound("accelerator table not found: " + name);
  }
  return const_cast<const ColumnTable*>(it->second.get());
}

Status Accelerator::LoadRows(const std::string& name,
                             const std::vector<Row>& rows, TxnId txn) {
  IDAA_RETURN_IF_ERROR(CheckReady("LOAD"));
  IDAA_ASSIGN_OR_RETURN(ColumnTable * table, GetTable(name));
  return table->Insert(rows, txn);
}

Status Accelerator::LoadColumnar(const std::string& name,
                                 const ColumnarRows& rows, TxnId txn) {
  IDAA_RETURN_IF_ERROR(CheckReady("LOAD"));
  IDAA_ASSIGN_OR_RETURN(ColumnTable * table, GetTable(name));
  return table->InsertColumnar(rows, txn);
}

Result<ResultSet> Accelerator::ExecuteSelect(const sql::BoundSelect& plan,
                                             TxnId reader, Csn snapshot,
                                             TraceContext tc) {
  IDAA_RETURN_IF_ERROR(CheckReady("SELECT"));
  AccelTableResolver resolver =
      [this](const sql::BoundTable& bt) -> Result<const ColumnTable*> {
    return static_cast<const Accelerator*>(this)->GetTable(bt.info->name);
  };
  BatchOptions batch;
  batch.enabled = batch_path_enabled_.load(std::memory_order_relaxed);
  batch.morsel_size = options_.morsel_size;
  return ExecuteAccelSelect(plan, resolver, reader, snapshot, *tm_, &pool_,
                            metrics_, tc, batch);
}

Result<size_t> Accelerator::ExecuteUpdate(const sql::BoundUpdate& plan,
                                          TxnId txn, Csn snapshot) {
  IDAA_RETURN_IF_ERROR(CheckReady("UPDATE"));
  IDAA_ASSIGN_OR_RETURN(ColumnTable * table, GetTable(plan.table->name));
  std::vector<std::pair<size_t, const sql::BoundExpr*>> assignments;
  assignments.reserve(plan.assignments.size());
  for (const auto& [col, expr] : plan.assignments) {
    assignments.emplace_back(col, expr.get());
  }
  return table->UpdateWhere(assignments, plan.where.get(), txn, snapshot, *tm_);
}

Result<size_t> Accelerator::ExecuteDelete(const sql::BoundDelete& plan,
                                          TxnId txn, Csn snapshot) {
  IDAA_RETURN_IF_ERROR(CheckReady("DELETE"));
  IDAA_ASSIGN_OR_RETURN(ColumnTable * table, GetTable(plan.table->name));
  return table->DeleteWhere(plan.where.get(), txn, snapshot, *tm_);
}

GroomStats Accelerator::GroomAll() {
  Csn horizon = tm_->OldestActiveSnapshot();
  GroomStats total;
  // Keep the snapshot alive by ownership: a concurrent DROP TABLE or AOT
  // re-create may erase entries from tables_ while we groom.
  std::vector<std::pair<std::string, std::shared_ptr<ColumnTable>>> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, table] : tables_) tables.emplace_back(name, table);
  }
  std::vector<std::string> compacted;
  for (const auto& [name, table] : tables) {
    GroomStats stats = table->Groom(horizon, *tm_);
    total.rows_examined += stats.rows_examined;
    total.rows_reclaimed += stats.rows_reclaimed;
    total.zones_compacted += stats.zones_compacted;
    if (stats.rows_reclaimed > 0 || stats.zones_compacted > 0) {
      compacted.push_back(name);
    }
  }
  // Compaction changed the physical layout (and bumped the tables'
  // compaction epochs); layout-independent logical results are unchanged,
  // but cached results must not outlive the layout they were computed on.
  if (!compacted.empty() && compaction_listener_) {
    compaction_listener_(compacted);
  }
  return total;
}

std::vector<std::string> Accelerator::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<size_t> Accelerator::TableVersions(const std::string& name) const {
  IDAA_ASSIGN_OR_RETURN(const ColumnTable* table, GetTable(name));
  return table->NumVersions();
}

Result<std::vector<Row>> Accelerator::SnapshotRows(const std::string& name,
                                                   TxnId reader,
                                                   Csn snapshot) const {
  IDAA_ASSIGN_OR_RETURN(const ColumnTable* table, GetTable(name));
  std::vector<Row> rows;
  for (size_t s = 0; s < table->num_slices(); ++s) {
    IDAA_ASSIGN_OR_RETURN(
        std::vector<Row> slice_rows,
        table->ScanSlice(s, nullptr, reader, snapshot, *tm_, metrics_));
    rows.insert(rows.end(), std::make_move_iterator(slice_rows.begin()),
                std::make_move_iterator(slice_rows.end()));
  }
  return rows;
}

Result<ReplicaRoute> Accelerator::ReplicaRouteFor(const std::string& table) {
  IDAA_ASSIGN_OR_RETURN(ColumnTable * storage, GetTable(table));
  ReplicaRoute route;
  route.targets.push_back(storage);
  return route;
}

Result<std::vector<Row>> Accelerator::ScanTable(
    const std::string& name, const sql::BoundExpr* predicate, TxnId reader,
    Csn snapshot, const std::vector<uint8_t>* projection, TraceContext tc,
    std::optional<size_t> limit_cap) {
  IDAA_RETURN_IF_ERROR(CheckReady("SELECT"));
  IDAA_ASSIGN_OR_RETURN(const ColumnTable* table,
                        static_cast<const Accelerator*>(this)->GetTable(name));
  BatchOptions batch;
  batch.enabled = batch_path_enabled_.load(std::memory_order_relaxed);
  batch.morsel_size = options_.morsel_size;
  return ParallelScan(*table, predicate, reader, snapshot, *tm_, &pool_,
                      metrics_, projection, tc, batch, limit_cap);
}

Result<std::optional<AggPartial>> Accelerator::ExecuteSelectPartial(
    const sql::BoundSelect& plan, TxnId reader, Csn snapshot, TraceContext tc) {
  IDAA_RETURN_IF_ERROR(CheckReady("SELECT"));
  AccelTableResolver resolver =
      [this](const sql::BoundTable& bt) -> Result<const ColumnTable*> {
    return static_cast<const Accelerator*>(this)->GetTable(bt.info->name);
  };
  BatchOptions batch;
  batch.enabled = batch_path_enabled_.load(std::memory_order_relaxed);
  batch.morsel_size = options_.morsel_size;
  return ExecuteAccelSelectPartial(plan, resolver, reader, snapshot, *tm_,
                                   &pool_, metrics_, tc, batch);
}

}  // namespace idaa::accel
