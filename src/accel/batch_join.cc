#include "accel/batch_join.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "accel/morsel_scan.h"
#include "accel/partial_agg.h"
#include "sql/expression_eval.h"

namespace idaa::accel {

namespace {

/// Sentinel build-row index: "no match" (and, for left-outer probes, the
/// NULL-padded virtual candidate).
constexpr uint32_t kNoRow = 0xffffffffu;

/// Zones whose join-key span exceeds this are not Bloom-tested (the
/// candidate enumeration would cost more than scanning the zone).
constexpr int64_t kZoneBloomSpanLimit = 1024;

inline uint64_t MixBits(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashKeyWords(const uint64_t* key, size_t width) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < width; ++i) {
    h = MixBits(h ^ (key[i] * 0x9ddfea08eb382d69ULL));
  }
  return h;
}

/// Blocked-free Bloom filter over 64-bit key hashes: two probes derived
/// from one hash. False positives only cost a wasted hash-table lookup
/// (or a zone that is not pruned); never a correctness issue.
class BloomFilter {
 public:
  void Init(size_t expected_keys) {
    size_t bits = 1024;
    while (bits < expected_keys * 12) bits <<= 1;
    words_.assign(bits / 64, 0);
    mask_ = bits - 1;
  }
  void Add(uint64_t h) {
    Set(h & mask_);
    Set((h >> 21) & mask_);
  }
  bool MayContain(uint64_t h) const {
    return Test(h & mask_) && Test((h >> 21) & mask_);
  }
  uint64_t num_bits() const { return (mask_ + 1); }

 private:
  void Set(uint64_t b) { words_[b >> 6] |= 1ULL << (b & 63); }
  bool Test(uint64_t b) const { return (words_[b >> 6] >> (b & 63)) & 1; }
  std::vector<uint64_t> words_;
  uint64_t mask_ = 1023;
};

/// Compact open-addressing hash table over flat fixed-width build keys.
/// Built once per dimension with hash-prefix partitioning: a serial pass
/// buckets rows by partition (preserving build-row order), then each
/// partition is inserted by one worker into its own disjoint slot region —
/// no locks, no atomics. Duplicate keys chain through next_ in ascending
/// build-row order, the same candidate order the row-path JoinIterator
/// produces. Probes are lock-free.
class JoinHashTable {
 public:
  void Build(const std::vector<uint64_t>& keys, size_t key_width,
             uint32_t num_rows, const std::vector<uint8_t>& insertable,
             const std::vector<uint64_t>& hashes, ThreadPool* pool) {
    key_width_ = key_width;
    keys_ = keys.data();
    next_.assign(num_rows, kNoRow);
    tail_.assign(num_rows, 0);

    size_t parts = 1;
    while (parts < 16 && parts * 4096 < num_rows) parts <<= 1;
    part_count_ = parts;
    part_bits_ = 0;
    while ((size_t{1} << part_bits_) < parts) ++part_bits_;

    std::vector<std::vector<uint32_t>> buckets(parts);
    for (uint32_t r = 0; r < num_rows; ++r) {
      if (insertable[r]) buckets[hashes[r] & (parts - 1)].push_back(r);
    }
    size_t max_bucket = 8;
    for (const auto& b : buckets) max_bucket = std::max(max_bucket, b.size());
    size_t region = 16;
    while (region < max_bucket * 2) region <<= 1;
    region_bits_ = 0;
    while ((size_t{1} << region_bits_) < region) ++region_bits_;
    region_mask_ = region - 1;
    slots_.assign(parts * region, 0);

    auto insert_partition = [&](size_t p) {
      uint32_t* base = slots_.data() + (p << region_bits_);
      for (uint32_t r : buckets[p]) {
        uint64_t idx = (hashes[r] >> part_bits_) & region_mask_;
        while (true) {
          uint32_t existing = base[idx];
          if (existing == 0) {
            base[idx] = r + 1;
            tail_[r] = r;
            break;
          }
          uint32_t head = existing - 1;
          if (std::memcmp(keys_ + static_cast<size_t>(head) * key_width_,
                          keys_ + static_cast<size_t>(r) * key_width_,
                          key_width_ * sizeof(uint64_t)) == 0) {
            next_[tail_[head]] = r;
            tail_[head] = r;
            break;
          }
          idx = (idx + 1) & region_mask_;
        }
      }
    };
    if (pool != nullptr && parts > 1) {
      pool->ParallelFor(parts, insert_partition);
    } else {
      for (size_t p = 0; p < parts; ++p) insert_partition(p);
    }
  }

  /// Head build row of the duplicate chain matching `key`, or kNoRow.
  uint32_t Find(const uint64_t* key, uint64_t hash) const {
    const uint32_t* base =
        slots_.data() + ((hash & (part_count_ - 1)) << region_bits_);
    uint64_t idx = (hash >> part_bits_) & region_mask_;
    while (true) {
      uint32_t existing = base[idx];
      if (existing == 0) return kNoRow;
      uint32_t head = existing - 1;
      if (std::memcmp(keys_ + static_cast<size_t>(head) * key_width_, key,
                      key_width_ * sizeof(uint64_t)) == 0) {
        return head;
      }
      idx = (idx + 1) & region_mask_;
    }
  }

  uint32_t NextMatch(uint32_t row) const { return next_[row]; }
  size_t num_partitions() const { return part_count_; }

 private:
  size_t key_width_ = 1;
  const uint64_t* keys_ = nullptr;
  std::vector<uint32_t> slots_;  // row + 1; 0 = empty
  std::vector<uint32_t> next_;   // duplicate chain, ascending build row
  std::vector<uint32_t> tail_;   // chain tail, indexed by head row
  size_t part_count_ = 1;
  unsigned part_bits_ = 0;
  unsigned region_bits_ = 4;
  uint64_t region_mask_ = 15;
};

struct DimKey {
  size_t base_column;  ///< probe key, base-table-local
  size_t dim_column;   ///< build key, dimension-local
  DataType type;       ///< identical on both sides (enforced)
};

/// One build side (joined table) of the batch join.
struct BuildSide {
  const sql::BoundTable* bt = nullptr;
  size_t offset = 0;  ///< combined-layout offset
  size_t width = 0;
  std::vector<DimKey> keys;
  std::vector<const sql::BoundExpr*> residual;
  std::vector<uint8_t> needed;  ///< dim-local columns the plan touches

  // Build output: global-dictionary column copies of the needed columns
  // (VARCHAR values re-interned into one dictionary spanning all slices,
  // so codes compare globally), flat key words, and the hash table.
  std::vector<std::unique_ptr<Column>> cols;
  uint32_t num_rows = 0;
  std::vector<uint64_t> key_words;    ///< num_rows * keys.size()
  std::vector<uint8_t> insertable;    ///< non-NULL key rows
  std::vector<uint64_t> hashes;
  uint32_t insertable_rows = 0;
  JoinHashTable ht;
  BloomFilter bloom;          ///< over key hashes of insertable rows
  bool zone_bloom = false;    ///< single int-family key, inner: zone pruning
  std::vector<ColumnRange> sideways;  ///< min/max over base key columns
  /// Probe-code -> build-code+1 translation per VARCHAR key per base slice.
  std::vector<std::vector<std::vector<uint32_t>>> dict_maps;
};

bool IsIntFamily(DataType type) {
  return type == DataType::kInteger || type == DataType::kDate ||
         type == DataType::kTimestamp;
}

bool IntFamilyValue(DataType type, int64_t v, Value* out) {
  switch (type) {
    case DataType::kInteger:
      *out = Value::Integer(v);
      return true;
    case DataType::kDate:
      *out = Value::Date(static_cast<int32_t>(v));
      return true;
    case DataType::kTimestamp:
      *out = Value::Timestamp(v);
      return true;
    default:
      return false;
  }
}

bool IntFamilyRaw(const Value& v, int64_t* out) {
  if (v.is_integer()) {
    *out = v.AsInteger();
    return true;
  }
  if (v.is_date()) {
    *out = v.AsDate();
    return true;
  }
  if (v.is_timestamp()) {
    *out = v.AsTimestamp();
    return true;
  }
  return false;
}

/// Shape test: every joined table's equi keys probe the base table with
/// identical, non-DOUBLE types on both sides (DOUBLE equality is IEEE,
/// not bit-pattern: -0.0 == 0.0). Fills key/residual metadata.
bool BatchJoinEligible(const sql::BoundSelect& plan,
                       std::vector<BuildSide>* dims) {
  if (plan.tables.size() < 2) return false;
  const size_t base_width = plan.tables[0].info->schema.NumColumns();
  for (size_t t = 1; t < plan.tables.size(); ++t) {
    const sql::BoundTable& bt = plan.tables[t];
    BuildSide dim;
    dim.bt = &bt;
    dim.offset = bt.offset;
    dim.width = bt.info->schema.NumColumns();
    if (bt.join_on) {
      std::vector<exec::EquiKey> keys;
      exec::ExtractEquiKeys(*bt.join_on, bt.offset, bt.offset + dim.width,
                            &keys, &dim.residual);
      for (const exec::EquiKey& k : keys) {
        if (k.left_index >= base_width) return false;  // chained join key
        const DataType lt = plan.tables[0].info->schema.Column(k.left_index).type;
        const DataType rt =
            bt.info->schema.Column(k.right_index - bt.offset).type;
        if (lt != rt || lt == DataType::kDouble) return false;
        dim.keys.push_back({k.left_index, k.right_index - bt.offset, lt});
      }
    }
    dims->push_back(std::move(dim));
  }
  return true;
}

/// Whether the post-join aggregation can run inside the probe loop
/// (no residual WHERE / join conjuncts, every dimension keyed,
/// plain-column keys and arguments, no DISTINCT).
bool JoinAggregateMode(const sql::BoundSelect& plan,
                       const std::vector<BuildSide>& dims) {
  if (!plan.has_aggregation || plan.where || plan.distinct) return false;
  for (const BuildSide& dim : dims) {
    if (dim.keys.empty() || !dim.residual.empty()) return false;
  }
  for (const auto& key : plan.group_keys) {
    if (key->kind != sql::BoundExprKind::kColumn) return false;
  }
  for (const auto& agg : plan.aggregates) {
    if (agg.distinct) return false;
    if (agg.arg && agg.arg->kind != sql::BoundExprKind::kColumn) return false;
  }
  return true;
}

/// Scan one dimension into global columns (no Row materialization: raw
/// appends straight from the slice arrays, VARCHAR re-interned into the
/// build dictionary), then encode key words and build the hash table,
/// Bloom filter and sideways min/max ranges. The caller holds the table's
/// scan pin (taken before `bp` was compiled, held through the probe).
void BuildDim(const ColumnTable& table, const BatchScanPlan& bp, TxnId reader,
              Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
              const BatchOptions& batch, BuildSide* dim) {
  const Schema& schema = table.schema();
  dim->cols.resize(dim->width);
  for (size_t c = 0; c < dim->width; ++c) {
    if (dim->needed[c]) {
      dim->cols[c] = std::make_unique<Column>(schema.Column(c).type);
    }
  }

  const std::vector<Morsel> morsels = table.PlanMorsels(batch.morsel_size);
  TransactionManager::VisibilityChecker visibility(&tm, reader, snapshot);
  std::vector<uint32_t> sel;
  BatchScanStats stats;
  for (const Morsel& m : morsels) {
    table.ScanMorsel(
        m, bp.ranges, &bp.per_slice[m.slice], visibility, &sel, &stats,
        [&](const ColumnBatch& b) {
          // Ascending cursors over the (possibly encoded) source columns;
          // the build-side copies land in the dst columns' hot tails, so
          // later random access on them stays flat-array O(1).
          std::vector<ColumnCursor> src_curs;
          src_curs.reserve(dim->width);
          for (size_t c = 0; c < dim->width; ++c) {
            src_curs.emplace_back(*(*b.columns)[c]);
          }
          for (size_t k = 0; k < b.sel_count; ++k) {
            const size_t i = b.AbsoluteRow(k);
            for (size_t c = 0; c < dim->width; ++c) {
              Column* dst = dim->cols[c].get();
              if (dst == nullptr) continue;
              ColumnCursor& src = src_curs[c];
              if (src.IsNull(i)) {
                dst->AppendRawNull();
              } else {
                switch (src.type()) {
                  case DataType::kDouble:
                    dst->AppendRawDouble(src.Double(i));
                    break;
                  case DataType::kVarchar:
                    dst->AppendRawVarchar(src.column().DictEntry(src.Code(i)));
                    break;
                  default:
                    dst->AppendRawInt(src.Int(i));
                }
              }
            }
            ++dim->num_rows;
          }
        });
  }

  const size_t nk = dim->keys.size();
  if (nk == 0) return;
  dim->key_words.resize(static_cast<size_t>(dim->num_rows) * nk);
  dim->insertable.assign(dim->num_rows, 1);
  dim->hashes.resize(dim->num_rows);
  std::vector<int64_t> key_min(nk, 0), key_max(nk, 0);
  for (uint32_t r = 0; r < dim->num_rows; ++r) {
    for (size_t j = 0; j < nk; ++j) {
      const Column& col = *dim->cols[dim->keys[j].dim_column];
      uint64_t w = 0;
      if (col.IsNull(r)) {
        dim->insertable[r] = 0;  // NULL never equi-joins
      } else if (col.type() == DataType::kVarchar) {
        w = col.RawCode(r);
      } else {
        w = static_cast<uint64_t>(col.RawInt(r));
      }
      dim->key_words[static_cast<size_t>(r) * nk + j] = w;
    }
    dim->hashes[r] =
        HashKeyWords(&dim->key_words[static_cast<size_t>(r) * nk], nk);
    if (dim->insertable[r]) {
      for (size_t j = 0; j < nk; ++j) {
        const int64_t v = static_cast<int64_t>(
            dim->key_words[static_cast<size_t>(r) * nk + j]);
        if (dim->insertable_rows == 0) {
          key_min[j] = key_max[j] = v;
        } else {
          key_min[j] = std::min(key_min[j], v);
          key_max[j] = std::max(key_max[j], v);
        }
      }
      ++dim->insertable_rows;
    }
  }
  dim->ht.Build(dim->key_words, nk, dim->num_rows, dim->insertable,
                dim->hashes, pool);
  dim->bloom.Init(dim->insertable_rows);
  for (uint32_t r = 0; r < dim->num_rows; ++r) {
    if (dim->insertable[r]) dim->bloom.Add(dim->hashes[r]);
  }

  // Sideways information passing (inner dims only: pruning probe rows that
  // could only produce left-padded output would be wrong): min/max over
  // the build keys becomes extra zone-map ranges on the base key columns,
  // and a single int-family key additionally enables Bloom zone pruning.
  if (dim->bt->join_type == sql::JoinType::kInner &&
      dim->insertable_rows > 0) {
    for (size_t j = 0; j < nk; ++j) {
      Value lo, hi;
      if (IntFamilyValue(dim->keys[j].type, key_min[j], &lo) &&
          IntFamilyValue(dim->keys[j].type, key_max[j], &hi)) {
        dim->sideways.push_back(
            {dim->keys[j].base_column, sql::BinaryOp::kGtEq, lo});
        dim->sideways.push_back(
            {dim->keys[j].base_column, sql::BinaryOp::kLtEq, hi});
      }
    }
    dim->zone_bloom = nk == 1 && IsIntFamily(dim->keys[0].type);
  }
}

/// Resolution of a combined-layout column to its side.
struct ColRef {
  bool from_base = true;
  size_t col = 0;  ///< table-local column
  size_t dim = 0;  ///< dims index when !from_base
};

ColRef ResolveColumn(size_t combined_index, size_t base_width,
                     const std::vector<BuildSide>& dims) {
  if (combined_index < base_width) return {true, combined_index, 0};
  for (size_t d = dims.size(); d-- > 0;) {
    if (combined_index >= dims[d].offset) {
      return {false, combined_index - dims[d].offset, d};
    }
  }
  return {true, combined_index, 0};
}

/// How an aggregate consumes its argument (mirrors BatchAggregate).
enum class ArgMode { kRow, kCount, kInt64, kDouble, kValue };

}  // namespace

Result<std::optional<ResultSet>> TryBatchJoin(
    const sql::BoundSelect& plan, const AccelTableResolver& resolver,
    TxnId reader, Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc, const BatchOptions& batch) {
  std::vector<BuildSide> dims;
  if (!batch.enabled || !BatchJoinEligible(plan, &dims)) {
    return std::optional<ResultSet>();
  }

  IDAA_ASSIGN_OR_RETURN(const ColumnTable* base, resolver(plan.tables[0]));
  std::vector<const ColumnTable*> dim_tables(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    IDAA_ASSIGN_OR_RETURN(dim_tables[d], resolver(*dims[d].bt));
  }

  // Pin every involved table's physical layout before anything bakes in
  // slice-local state: compiled per-slice predicates and the probe-side
  // dictionary-code maps both hold dictionary codes that a Groom rebuild
  // re-interns. The pins are held through build and probe so the codes the
  // probe compares are the codes that were compiled. Deduplicated by table
  // because a self-join must not shared-lock the same mutex twice.
  std::vector<const ColumnTable*> pinned_tables;
  std::vector<std::shared_lock<std::shared_mutex>> pins;
  auto pin_once = [&](const ColumnTable* t) {
    for (const ColumnTable* p : pinned_tables) {
      if (p == t) return;
    }
    pinned_tables.push_back(t);
    pins.push_back(t->PinForScan());
  };
  pin_once(base);
  for (const ColumnTable* t : dim_tables) pin_once(t);

  BatchScanPlan base_bp;
  if (!PrepareBatchScan(*base, plan.tables[0].scan_predicate.get(),
                        &base_bp)) {
    return std::optional<ResultSet>();
  }
  std::vector<BatchScanPlan> dim_bps(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    if (!PrepareBatchScan(*dim_tables[d], dims[d].bt->scan_predicate.get(),
                          &dim_bps[d])) {
      return std::optional<ResultSet>();
    }
  }

  const size_t base_width = plan.tables[0].info->schema.NumColumns();
  size_t combined_width = base_width;
  for (const BuildSide& dim : dims) {
    combined_width = std::max(combined_width, dim.offset + dim.width);
  }
  const std::vector<std::vector<uint8_t>> projections =
      ComputeProjections(plan);

  // ---- Build phase ------------------------------------------------------
  TraceSpan build_span(tc, "accel.batch_join_build");
  uint64_t build_rows = 0, partitions = 0, bloom_bits = 0;
  for (size_t d = 0; d < dims.size(); ++d) {
    dims[d].needed = projections[d + 1];
    BuildDim(*dim_tables[d], dim_bps[d], reader, snapshot, tm, pool, batch,
             &dims[d]);
    build_rows += dims[d].num_rows;
    if (!dims[d].keys.empty()) {
      partitions += dims[d].ht.num_partitions();
      bloom_bits += dims[d].bloom.num_bits();
    }
    // Probe-side dictionary codes are slice-local: translate each base
    // slice's codes into the build dictionary once, then probing compares
    // codes, never strings.
    dims[d].dict_maps.resize(dims[d].keys.size());
    for (size_t j = 0; j < dims[d].keys.size(); ++j) {
      if (dims[d].keys[j].type != DataType::kVarchar) continue;
      dims[d].dict_maps[j].resize(base->num_slices());
      for (size_t s = 0; s < base->num_slices(); ++s) {
        dims[d].dict_maps[j][s] = base->MapDictionaryCodes(
            s, dims[d].keys[j].base_column,
            *dims[d].cols[dims[d].keys[j].dim_column]);
      }
    }
  }
  build_span.Attr("dimensions", static_cast<uint64_t>(dims.size()));
  build_span.Attr("build_rows", build_rows);
  build_span.Attr("partitions", partitions);
  build_span.Attr("bloom_bits", bloom_bits);
  build_span.End();

  // An empty inner build side annihilates the whole join: skip the probe.
  bool empty_inner = false;
  for (const BuildSide& dim : dims) {
    if (dim.bt->join_type == sql::JoinType::kInner ||
        dim.bt->join_type == sql::JoinType::kCross) {
      if ((dim.keys.empty() ? dim.num_rows : dim.insertable_rows) == 0) {
        empty_inner = true;
      }
    }
  }

  const bool aggregate_mode = JoinAggregateMode(plan, dims);

  // Aggregate-mode metadata: group-key sources (slice-qualified raw codes
  // for base-side VARCHAR keys, global codes for build-side keys) and
  // argument fast paths.
  std::vector<ColRef> key_refs(plan.group_keys.size());
  bool base_varchar_key = false;
  std::vector<ColRef> arg_refs(plan.aggregates.size());
  std::vector<ArgMode> modes(plan.aggregates.size(), ArgMode::kRow);
  if (aggregate_mode) {
    for (size_t g = 0; g < plan.group_keys.size(); ++g) {
      key_refs[g] = ResolveColumn(plan.group_keys[g]->index, base_width, dims);
      const Schema& schema = key_refs[g].from_base
                                 ? plan.tables[0].info->schema
                                 : dims[key_refs[g].dim].bt->info->schema;
      if (key_refs[g].from_base &&
          schema.Column(key_refs[g].col).type == DataType::kVarchar) {
        base_varchar_key = true;
      }
    }
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      const auto& agg = plan.aggregates[a];
      if (agg.func == sql::AggFunc::kCountStar) continue;
      arg_refs[a] = ResolveColumn(agg.arg->index, base_width, dims);
      const Schema& schema = arg_refs[a].from_base
                                 ? plan.tables[0].info->schema
                                 : dims[arg_refs[a].dim].bt->info->schema;
      if (agg.func == sql::AggFunc::kCount) {
        modes[a] = ArgMode::kCount;
      } else {
        switch (schema.Column(arg_refs[a].col).type) {
          case DataType::kInteger:
            modes[a] = ArgMode::kInt64;
            break;
          case DataType::kDouble:
            modes[a] = ArgMode::kDouble;
            break;
          default:
            modes[a] = ArgMode::kValue;
        }
      }
    }
  }
  const size_t key_base = base_varchar_key ? 1 : 0;

  // ---- Probe phase ------------------------------------------------------
  TraceSpan probe_span(tc, "accel.batch_join_probe");
  probe_span.Attr("mode", aggregate_mode ? "aggregate" : "materialize");

  // Sideways ranges extend zone-map pruning of the probe scan; the
  // compiled per-slice predicate still only covers the plan's own ranges.
  std::vector<ColumnRange> probe_ranges = base_bp.ranges;
  std::vector<const BuildSide*> zone_bloom_dims;
  for (const BuildSide& dim : dims) {
    probe_ranges.insert(probe_ranges.end(), dim.sideways.begin(),
                        dim.sideways.end());
    if (dim.zone_bloom) zone_bloom_dims.push_back(&dim);
  }
  std::atomic<uint64_t> bloom_pruned_zones{0};
  ColumnTable::ZoneFilter zone_filter = [&](const ZoneMap& zm, size_t zone) {
    for (const BuildSide* dim : zone_bloom_dims) {
      Value zmin, zmax;
      bool zone_has_null = false;
      if (!zm.ZoneStatsFor(zone, dim->keys[0].base_column, &zmin, &zmax,
                           &zone_has_null)) {
        continue;
      }
      if (zmin.is_null()) {  // all-NULL keys: inner equi never matches
        bloom_pruned_zones.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      int64_t lo, hi;
      if (!IntFamilyRaw(zmin, &lo) || !IntFamilyRaw(zmax, &hi)) continue;
      // Unsigned span: hi - lo on arbitrary int64 stats can exceed
      // INT64_MAX (signed overflow), and the offset loop sidesteps the
      // ++v overflow when hi == INT64_MAX.
      const uint64_t span =
          static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      if (hi < lo || span > static_cast<uint64_t>(kZoneBloomSpanLimit)) {
        continue;
      }
      bool any = false;
      for (uint64_t off = 0; off <= span; ++off) {
        uint64_t w = static_cast<uint64_t>(lo) + off;
        if (dim->bloom.MayContain(HashKeyWords(&w, 1))) {
          any = true;
          break;
        }
      }
      if (!any) {
        bloom_pruned_zones.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    return true;
  };
  const ColumnTable::ZoneFilter* zone_filter_ptr =
      zone_bloom_dims.empty() ? nullptr : &zone_filter;

  const std::vector<Morsel> morsels =
      empty_inner ? std::vector<Morsel>() : base->PlanMorsels(batch.morsel_size);
  const size_t num_workers = MorselWorkerCount(pool, morsels.size());

  struct Worker {
    explicit Worker(TransactionManager::VisibilityChecker v)
        : visibility(std::move(v)) {}
    TransactionManager::VisibilityChecker visibility;
    std::vector<uint32_t> sel;
    BatchScanStats stats;
    Status status;
    uint64_t matches = 0;
    uint64_t bloom_rejected = 0;
    // Aggregate mode.
    std::unordered_map<std::vector<uint64_t>, size_t, RawKeyHash> index;
    AggPartial partial;
    std::vector<uint64_t> raw_key;
    // Scratch.
    std::vector<uint32_t> heads;
    std::vector<uint32_t> cur;
    std::vector<uint64_t> kw;
    Row row;
  };
  size_t max_keys = 1;
  for (const BuildSide& dim : dims) {
    max_keys = std::max(max_keys, dim.keys.size());
  }
  std::vector<Worker> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    Worker wk(TransactionManager::VisibilityChecker(&tm, reader, snapshot));
    wk.raw_key.resize(key_base + plan.group_keys.size() * 2);
    wk.heads.resize(dims.size());
    wk.cur.resize(dims.size());
    wk.kw.resize(max_keys);
    wk.row.resize(combined_width);
    workers.push_back(std::move(wk));
  }
  std::vector<std::vector<Row>> morsel_rows(morsels.size());

  auto run = [&](size_t w, size_t mi) {
    Worker& wk = workers[w];
    if (!wk.status.ok()) return;
    const Morsel& m = morsels[mi];
    const BatchScanStats before = wk.stats;
    TraceSpan morsel_span(probe_span.context(), "accel.slice_scan");
    base->ScanMorsel(
        m, probe_ranges, &base_bp.per_slice[m.slice], wk.visibility, &wk.sel,
        &wk.stats,
        [&](const ColumnBatch& b) {
          if (!wk.status.ok()) return;
          const auto& columns = *b.columns;
          // One ascending cursor per base column: probe keys, group keys
          // and aggregate args all read the base side at monotonically
          // non-decreasing i, so encoded zones cost amortized O(1).
          std::vector<ColumnCursor> base_curs;
          base_curs.reserve(columns.size());
          for (const auto& col : columns) base_curs.emplace_back(*col);
          for (size_t k = 0; k < b.sel_count; ++k) {
            const size_t i = b.AbsoluteRow(k);
            // Probe every keyed dimension; an inner miss drops the row,
            // a left-outer miss marks the NULL-padded candidate.
            bool reject = false;
            for (size_t d = 0; d < dims.size() && !reject; ++d) {
              const BuildSide& dim = dims[d];
              const size_t nk = dim.keys.size();
              if (nk == 0) continue;
              bool miss = false;
              for (size_t j = 0; j < nk && !miss; ++j) {
                ColumnCursor& col = base_curs[dim.keys[j].base_column];
                if (col.IsNull(i)) {
                  miss = true;
                } else if (dim.keys[j].type == DataType::kVarchar) {
                  const uint32_t code = col.Code(i);
                  const auto& map = dim.dict_maps[j][m.slice];
                  if (code >= map.size() || map[code] == 0) {
                    miss = true;
                  } else {
                    wk.kw[j] = map[code] - 1;
                  }
                } else {
                  wk.kw[j] = static_cast<uint64_t>(col.Int(i));
                }
              }
              uint32_t head = kNoRow;
              if (!miss) {
                const uint64_t h = HashKeyWords(wk.kw.data(), nk);
                if (!dim.bloom.MayContain(h)) {
                  ++wk.bloom_rejected;
                } else {
                  head = dim.ht.Find(wk.kw.data(), h);
                }
              }
              if (head == kNoRow &&
                  dim.bt->join_type == sql::JoinType::kInner) {
                reject = true;
              }
              wk.heads[d] = head;
            }
            if (reject) continue;

            if (aggregate_mode) {
              // Odometer over the per-dimension duplicate chains; the last
              // dimension varies fastest (JoinIterator nesting order).
              for (size_t d = 0; d < dims.size(); ++d) wk.cur[d] = wk.heads[d];
              bool done = false;
              while (!done) {
                ++wk.matches;
                if (base_varchar_key) wk.raw_key[0] = m.slice;
                for (size_t g = 0; g < plan.group_keys.size(); ++g) {
                  uint64_t* nf = &wk.raw_key[key_base + 2 * g];
                  uint64_t* bits = nf + 1;
                  const ColRef& ref = key_refs[g];
                  if (ref.from_base) {
                    RawKeyOf(base_curs[ref.col], i, nf, bits);
                  } else if (wk.cur[ref.dim] == kNoRow) {
                    *nf = 1;
                    *bits = 0;
                  } else {
                    RawKeyOf(*dims[ref.dim].cols[ref.col], wk.cur[ref.dim], nf,
                             bits);
                  }
                }
                auto it = wk.index.find(wk.raw_key);
                size_t group;
                if (it == wk.index.end()) {
                  group = wk.partial.keys.size();
                  wk.index.emplace(wk.raw_key, group);
                  std::vector<Value> key_values;
                  key_values.reserve(plan.group_keys.size());
                  for (size_t g = 0; g < plan.group_keys.size(); ++g) {
                    const ColRef& ref = key_refs[g];
                    if (ref.from_base) {
                      key_values.push_back(columns[ref.col]->Get(i));
                    } else if (wk.cur[ref.dim] == kNoRow) {
                      key_values.push_back(Value::Null());
                    } else {
                      key_values.push_back(
                          dims[ref.dim].cols[ref.col]->Get(wk.cur[ref.dim]));
                    }
                  }
                  wk.partial.keys.push_back(std::move(key_values));
                  std::vector<sql::AggregateAccumulator> accs;
                  accs.reserve(plan.aggregates.size());
                  for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
                  wk.partial.accumulators.push_back(std::move(accs));
                } else {
                  group = it->second;
                }
                auto& accs = wk.partial.accumulators[group];
                for (size_t a = 0; a < plan.aggregates.size(); ++a) {
                  if (modes[a] == ArgMode::kRow) {
                    accs[a].AccumulateRow();
                    continue;
                  }
                  const ColRef& ref = arg_refs[a];
                  if (ref.from_base) {
                    // Base-side argument at the (ascending) probe row:
                    // read through the cursor so encoded zones stay O(1).
                    ColumnCursor& cur = base_curs[ref.col];
                    const bool is_null = cur.IsNull(i);
                    switch (modes[a]) {
                      case ArgMode::kCount:
                        if (is_null) {
                          accs[a].AccumulateNull();
                        } else {
                          accs[a].AccumulateCountNonNull();
                        }
                        break;
                      case ArgMode::kInt64:
                        if (is_null) {
                          accs[a].AccumulateNull();
                        } else {
                          accs[a].AccumulateInt64(cur.Int(i));
                        }
                        break;
                      case ArgMode::kDouble:
                        if (is_null) {
                          accs[a].AccumulateNull();
                        } else {
                          accs[a].AccumulateDouble(cur.Double(i));
                        }
                        break;
                      default:
                        accs[a].Accumulate(is_null ? Value::Null()
                                                   : cur.Get(i));
                    }
                    continue;
                  }
                  // Dimension-side argument: the build copy lives in the
                  // dst column's hot tail, already flat-array access.
                  const Column* col;
                  size_t r;
                  bool padded = false;
                  if (wk.cur[ref.dim] == kNoRow) {
                    col = nullptr;
                    r = 0;
                    padded = true;
                  } else {
                    col = dims[ref.dim].cols[ref.col].get();
                    r = wk.cur[ref.dim];
                  }
                  const bool is_null = padded || col->IsNull(r);
                  switch (modes[a]) {
                    case ArgMode::kCount:
                      if (is_null) {
                        accs[a].AccumulateNull();
                      } else {
                        accs[a].AccumulateCountNonNull();
                      }
                      break;
                    case ArgMode::kInt64:
                      if (is_null) {
                        accs[a].AccumulateNull();
                      } else {
                        accs[a].AccumulateInt64(col->RawInt(r));
                      }
                      break;
                    case ArgMode::kDouble:
                      if (is_null) {
                        accs[a].AccumulateNull();
                      } else {
                        accs[a].AccumulateDouble(col->RawDouble(r));
                      }
                      break;
                    default:
                      accs[a].Accumulate(is_null ? Value::Null() : col->Get(r));
                  }
                }
                // Advance, last dimension fastest.
                size_t d = dims.size();
                while (true) {
                  if (d == 0) {
                    done = true;
                    break;
                  }
                  --d;
                  if (wk.cur[d] != kNoRow) {
                    const uint32_t nxt = dims[d].ht.NextMatch(wk.cur[d]);
                    if (nxt != kNoRow) {
                      wk.cur[d] = nxt;
                      break;
                    }
                  }
                  wk.cur[d] = wk.heads[d];
                }
              }
            } else {
              // Materialize mode: late-materialize survivors into combined
              // rows, replicating JoinIterator chaining exactly (residual
              // conjuncts per candidate, left-pad when none pass, WHERE on
              // the full combined row).
              Row& row = wk.row;
              for (size_t c = 0; c < base_width; ++c) {
                if (projections[0][c]) row[c] = base_curs[c].Get(i);
              }
              std::function<void(size_t)> expand = [&](size_t d) {
                if (!wk.status.ok()) return;
                if (d == dims.size()) {
                  ++wk.matches;
                  if (plan.where) {
                    auto pass = sql::EvalPredicate(*plan.where, row);
                    if (!pass.ok()) {
                      wk.status = pass.status();
                      return;
                    }
                    if (!*pass) return;
                  }
                  morsel_rows[mi].push_back(row);
                  return;
                }
                const BuildSide& dim = dims[d];
                const bool keyed = !dim.keys.empty();
                bool matched = false;
                uint32_t r = keyed ? wk.heads[d]
                                   : (dim.num_rows > 0 ? 0 : kNoRow);
                while (r != kNoRow && wk.status.ok()) {
                  for (size_t c = 0; c < dim.width; ++c) {
                    if (dim.cols[c] != nullptr) {
                      row[dim.offset + c] = dim.cols[c]->Get(r);
                    }
                  }
                  bool pass = true;
                  for (const sql::BoundExpr* pred : dim.residual) {
                    auto p = sql::EvalPredicate(*pred, row);
                    if (!p.ok()) {
                      wk.status = p.status();
                      return;
                    }
                    if (!*p) {
                      pass = false;
                      break;
                    }
                  }
                  if (pass) {
                    matched = true;
                    expand(d + 1);
                  }
                  r = keyed ? dim.ht.NextMatch(r)
                            : (r + 1 < dim.num_rows ? r + 1 : kNoRow);
                }
                if (!matched && dim.bt->join_type == sql::JoinType::kLeft) {
                  for (size_t c = 0; c < dim.width; ++c) {
                    if (dim.cols[c] != nullptr) {
                      row[dim.offset + c] = Value::Null();
                    }
                  }
                  expand(d + 1);
                }
              };
              expand(0);
              if (!wk.status.ok()) return;
            }
          }
        },
        zone_filter_ptr);
    RecordMorselSpan(morsel_span, m, before, wk.stats);
  };
  if (pool != nullptr && morsels.size() > 1) {
    pool->ParallelForDynamic(morsels.size(), num_workers, run);
  } else {
    for (size_t mi = 0; mi < morsels.size(); ++mi) run(0, mi);
  }

  BatchScanStats total;
  uint64_t total_matches = 0, total_bloom_rejected = 0;
  std::vector<AggPartial> partials;
  partials.reserve(workers.size());
  for (Worker& wk : workers) {
    IDAA_RETURN_IF_ERROR(wk.status);
    total.Merge(wk.stats);
    total_matches += wk.matches;
    total_bloom_rejected += wk.bloom_rejected;
    partials.push_back(std::move(wk.partial));
  }
  AddScanMetrics(metrics, total);
  RecordBatchAttrs(probe_span, total);
  if (empty_inner) probe_span.Attr("short_circuit", "empty_build");
  probe_span.Attr("matches", total_matches);
  probe_span.Attr("bloom_rejected_rows", total_bloom_rejected);
  probe_span.Attr("bloom_pruned_zones",
                  bloom_pruned_zones.load(std::memory_order_relaxed));
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  total.rows_selected > 0
                      ? static_cast<double>(total_matches) / total.rows_selected
                      : 0.0);
    probe_span.Attr("match_selectivity", buf);
  }
  probe_span.End();

  TraceSpan merge_span(tc, "accel.coordinator_merge");
  if (aggregate_mode) {
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> post,
                          MergeAggPartials(plan, &partials));
    merge_span.Attr("groups", static_cast<uint64_t>(post.size()));
    IDAA_ASSIGN_OR_RETURN(ResultSet out,
                          exec::FinalizeSelect(plan, std::move(post)));
    return std::optional<ResultSet>(std::move(out));
  }
  std::vector<Row> combined;
  size_t total_rows = 0;
  for (const auto& rows : morsel_rows) total_rows += rows.size();
  combined.reserve(total_rows);
  for (auto& rows : morsel_rows) {
    combined.insert(combined.end(), std::make_move_iterator(rows.begin()),
                    std::make_move_iterator(rows.end()));
  }
  merge_span.Attr("rows", static_cast<uint64_t>(combined.size()));
  IDAA_ASSIGN_OR_RETURN(ResultSet out,
                        exec::FinishSelect(plan, std::move(combined)));
  return std::optional<ResultSet>(std::move(out));
}

}  // namespace idaa::accel
