#include "accel/zone_map.h"

namespace idaa::accel {

using sql::BinaryOp;
using sql::BoundExpr;
using sql::BoundExprKind;

namespace {

/// Returns true when the node was fully converted into ranges.
bool ExtractImpl(const BoundExpr& pred, std::vector<ColumnRange>* out) {
  if (pred.kind == BoundExprKind::kBinary && pred.binary_op == BinaryOp::kAnd) {
    bool left = ExtractImpl(*pred.children[0], out);
    bool right = ExtractImpl(*pred.children[1], out);
    return left && right;
  }
  // col OP literal  /  literal OP col
  if (pred.kind == BoundExprKind::kBinary) {
    BinaryOp op = pred.binary_op;
    bool comparison = op == BinaryOp::kEq || op == BinaryOp::kLt ||
                      op == BinaryOp::kLtEq || op == BinaryOp::kGt ||
                      op == BinaryOp::kGtEq;
    if (!comparison) return false;
    const BoundExpr& lhs = *pred.children[0];
    const BoundExpr& rhs = *pred.children[1];
    if (lhs.kind == BoundExprKind::kColumn &&
        rhs.kind == BoundExprKind::kLiteral && !rhs.literal.is_null()) {
      out->push_back({lhs.index, op, rhs.literal});
      return true;
    }
    if (rhs.kind == BoundExprKind::kColumn &&
        lhs.kind == BoundExprKind::kLiteral && !lhs.literal.is_null()) {
      // Mirror the operator: 5 < col  ==  col > 5.
      BinaryOp mirrored = op;
      switch (op) {
        case BinaryOp::kLt: mirrored = BinaryOp::kGt; break;
        case BinaryOp::kLtEq: mirrored = BinaryOp::kGtEq; break;
        case BinaryOp::kGt: mirrored = BinaryOp::kLt; break;
        case BinaryOp::kGtEq: mirrored = BinaryOp::kLtEq; break;
        default: break;
      }
      out->push_back({rhs.index, mirrored, lhs.literal});
      return true;
    }
    return false;
  }
  // col BETWEEN lo AND hi (not negated, literal bounds)
  if (pred.kind == BoundExprKind::kBetween && !pred.negated &&
      pred.children[0]->kind == BoundExprKind::kColumn &&
      pred.children[1]->kind == BoundExprKind::kLiteral &&
      pred.children[2]->kind == BoundExprKind::kLiteral &&
      !pred.children[1]->literal.is_null() &&
      !pred.children[2]->literal.is_null()) {
    out->push_back(
        {pred.children[0]->index, BinaryOp::kGtEq, pred.children[1]->literal});
    out->push_back(
        {pred.children[0]->index, BinaryOp::kLtEq, pred.children[2]->literal});
    return true;
  }
  return false;
}

}  // namespace

std::vector<ColumnRange> ExtractColumnRanges(const BoundExpr& predicate,
                                             bool* fully_consumed) {
  std::vector<ColumnRange> out;
  bool consumed = ExtractImpl(predicate, &out);
  if (fully_consumed != nullptr) *fully_consumed = consumed;
  return out;
}

void ZoneMap::Observe(size_t row_index, size_t column, const Value& v) {
  if (zones_per_column_.empty()) zones_per_column_.resize(num_columns_);
  size_t zone = row_index / zone_size_;
  auto& zones = zones_per_column_[column];
  if (zones.size() <= zone) zones.resize(zone + 1);
  ZoneStats& stats = zones[zone];
  ++stats.count;
  if (v.is_null()) {
    stats.has_null = true;
    return;
  }
  if (stats.min.is_null()) {
    stats.min = v;
    stats.max = v;
    return;
  }
  auto cmp_min = v.Compare(stats.min);
  if (cmp_min.ok() && *cmp_min < 0) stats.min = v;
  auto cmp_max = v.Compare(stats.max);
  if (cmp_max.ok() && *cmp_max > 0) stats.max = v;
}

void ZoneMap::ObserveRun(size_t row_index, size_t column, size_t count,
                         const Value& min, const Value& max, bool has_null) {
  if (count == 0) return;
  if (zones_per_column_.empty()) zones_per_column_.resize(num_columns_);
  size_t zone = row_index / zone_size_;
  auto& zones = zones_per_column_[column];
  if (zones.size() <= zone) zones.resize(zone + 1);
  ZoneStats& stats = zones[zone];
  stats.count += count;
  if (has_null) stats.has_null = true;
  if (min.is_null()) return;  // all-null run
  if (stats.min.is_null()) {
    stats.min = min;
    stats.max = max;
    return;
  }
  auto cmp_min = min.Compare(stats.min);
  if (cmp_min.ok() && *cmp_min < 0) stats.min = min;
  auto cmp_max = max.Compare(stats.max);
  if (cmp_max.ok() && *cmp_max > 0) stats.max = max;
}

bool ZoneMap::ZoneStatsFor(size_t zone, size_t column, Value* min, Value* max,
                           bool* has_null) const {
  if (column >= zones_per_column_.size()) return false;
  const auto& zones = zones_per_column_[column];
  if (zone >= zones.size()) return false;
  const ZoneStats& stats = zones[zone];
  if (stats.count == 0) return false;
  *min = stats.min;
  *max = stats.max;
  *has_null = stats.has_null;
  return true;
}

bool ZoneMap::ZoneCanMatch(size_t zone,
                           const std::vector<ColumnRange>& ranges) const {
  for (const ColumnRange& range : ranges) {
    if (range.column >= zones_per_column_.size()) continue;
    const auto& zones = zones_per_column_[range.column];
    if (zone >= zones.size()) continue;
    const ZoneStats& stats = zones[zone];
    if (stats.min.is_null()) {
      // Zone holds only NULLs; a comparison can never be TRUE.
      if (stats.count > 0) return false;
      continue;
    }
    auto lo = range.literal.Compare(stats.min);  // literal vs min
    auto hi = range.literal.Compare(stats.max);  // literal vs max
    if (!lo.ok() || !hi.ok()) continue;          // incomparable: cannot prune
    switch (range.op) {
      case BinaryOp::kEq:
        if (*lo < 0 || *hi > 0) return false;  // literal outside [min,max]
        break;
      case BinaryOp::kLt:  // need min < literal
        if (*lo <= 0) return false;
        break;
      case BinaryOp::kLtEq:  // need min <= literal
        if (*lo < 0) return false;
        break;
      case BinaryOp::kGt:  // need max > literal
        if (*hi >= 0) return false;
        break;
      case BinaryOp::kGtEq:  // need max >= literal
        if (*hi > 0) return false;
        break;
      default:
        break;
    }
  }
  return true;
}

}  // namespace idaa::accel
