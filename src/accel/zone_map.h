// Zone maps: per-extent min/max statistics that let the accelerator skip
// whole storage zones when a scan predicate cannot match anything inside —
// the software analogue of Netezza's zone-map-directed disk reads.

#pragma once

#include <optional>
#include <vector>

#include "common/value.h"
#include "sql/binder.h"

namespace idaa::accel {

/// A simple single-column comparison extracted from a scan predicate:
/// `column <op> literal`.
struct ColumnRange {
  size_t column = 0;
  sql::BinaryOp op = sql::BinaryOp::kEq;  // Eq / Lt / LtEq / Gt / GtEq
  Value literal;
};

/// Split a (single-table layout) predicate into zone-map-usable column
/// ranges and a residual of everything else. The ranges are implied by the
/// predicate (safe to use for pruning); `residual` receives the conjuncts
/// that still must be evaluated per row — note that range conjuncts are ALSO
/// re-evaluated per row (pruning is zone-granular, not row-exact), so the
/// caller should evaluate the original predicate on surviving rows.
/// If `fully_consumed` is non-null it is set to true when the predicate is
/// exactly an AND of the returned ranges — in that case the vectorized
/// range check is exact and no per-row re-evaluation is needed.
std::vector<ColumnRange> ExtractColumnRanges(const sql::BoundExpr& predicate,
                                             bool* fully_consumed = nullptr);

/// Min/max/null statistics per zone for every column of a slice.
class ZoneMap {
 public:
  ZoneMap(size_t num_columns, size_t zone_size)
      : num_columns_(num_columns), zone_size_(zone_size) {}

  size_t zone_size() const { return zone_size_; }

  /// Record the value of `column` for the row at `row_index`.
  void Observe(size_t row_index, size_t column, const Value& v);

  /// Bulk form of Observe for `count` consecutive rows of `column`
  /// starting at `row_index` — the caller guarantees the run stays inside
  /// one zone and passes the extrema of the run's non-null values (NULL
  /// Values for an all-null run). Final zone stats are identical to
  /// observing every row individually.
  void ObserveRun(size_t row_index, size_t column, size_t count,
                  const Value& min, const Value& max, bool has_null);

  size_t NumZones() const { return zones_per_column_.empty() ? 0 : zones_per_column_[0].size(); }

  /// Can any row in `zone` possibly satisfy all `ranges`?
  bool ZoneCanMatch(size_t zone, const std::vector<ColumnRange>& ranges) const;

  /// Per-zone extrema of one column, for sideways-information consumers
  /// (e.g. Bloom-filter zone pruning in the batch join). Returns false when
  /// the zone holds no observed rows for `column`; `min`/`max` stay NULL
  /// when every row in the zone is NULL.
  bool ZoneStatsFor(size_t zone, size_t column, Value* min, Value* max,
                    bool* has_null) const;

 private:
  struct ZoneStats {
    Value min;        // NULL until a non-null value observed
    Value max;
    bool has_null = false;
    size_t count = 0;
  };

  size_t num_columns_;
  size_t zone_size_;
  // zones_per_column_[column][zone]
  std::vector<std::vector<ZoneStats>> zones_per_column_;
};

}  // namespace idaa::accel
