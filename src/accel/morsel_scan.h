// Shared helpers for morsel-driven batch scans: per-table scan
// compilation, worker sizing, projection masks and the EXPLAIN ANALYZE
// accounting attrs emitted on scan/morsel spans. Used by the batch scan,
// batch aggregation and batch join paths.

#pragma once

#include <algorithm>
#include <cstdio>
#include <vector>

#include "accel/column_table.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "sql/binder.h"

namespace idaa::accel {

/// A scan predicate compiled for every slice of one table (dictionary
/// codes are slice-local, so each slice gets its own compilation).
struct BatchScanPlan {
  std::vector<ColumnRange> ranges;
  std::vector<BatchPredicate> per_slice;
};

/// True when `predicate` (nullable) converts exactly to column ranges that
/// compile to a batch predicate on every slice of `table`.
inline bool PrepareBatchScan(const ColumnTable& table,
                             const sql::BoundExpr* predicate,
                             BatchScanPlan* out) {
  if (predicate != nullptr) {
    bool exact = false;
    out->ranges = ExtractColumnRanges(*predicate, &exact);
    if (!exact) return false;
  }
  out->per_slice.reserve(table.num_slices());
  for (size_t s = 0; s < table.num_slices(); ++s) {
    auto compiled = table.CompilePredicateForSlice(s, out->ranges);
    if (!compiled.has_value()) return false;
    out->per_slice.push_back(std::move(*compiled));
  }
  return true;
}

inline size_t MorselWorkerCount(ThreadPool* pool, size_t num_morsels) {
  size_t cap = pool != nullptr ? pool->num_threads() : 1;
  return std::max<size_t>(1, std::min(cap, std::max<size_t>(num_morsels, 1)));
}

/// Gather combined-layout column indexes referenced by a bound tree.
inline void CollectColumns(const sql::BoundExpr& expr,
                           std::vector<uint8_t>* flags) {
  if (expr.kind == sql::BoundExprKind::kColumn && expr.index < flags->size()) {
    (*flags)[expr.index] = 1;
  }
  for (const auto& child : expr.children) CollectColumns(*child, flags);
}

/// Per-table projection masks: which columns the plan actually touches.
/// Scan predicates are table-local and handled per table; everything else
/// addresses the combined layout.
inline std::vector<std::vector<uint8_t>> ComputeProjections(
    const sql::BoundSelect& plan) {
  size_t combined_width = 0;
  for (const auto& bt : plan.tables) {
    combined_width += bt.info->schema.NumColumns();
  }
  std::vector<uint8_t> combined(combined_width, 0);
  auto collect = [&](const sql::BoundExprPtr& e) {
    if (e) CollectColumns(*e, &combined);
  };
  collect(plan.where);
  for (const auto& bt : plan.tables) collect(bt.join_on);
  for (const auto& g : plan.group_keys) CollectColumns(*g, &combined);
  for (const auto& agg : plan.aggregates) collect(agg.arg);
  for (const auto& e : plan.select_exprs) CollectColumns(*e, &combined);
  collect(plan.having);
  for (const auto& ob : plan.order_by) CollectColumns(*ob.expr, &combined);

  std::vector<std::vector<uint8_t>> per_table;
  per_table.reserve(plan.tables.size());
  for (const auto& bt : plan.tables) {
    size_t width = bt.info->schema.NumColumns();
    std::vector<uint8_t> flags(width, 0);
    for (size_t c = 0; c < width; ++c) flags[c] = combined[bt.offset + c];
    if (bt.scan_predicate) CollectColumns(*bt.scan_predicate, &flags);
    per_table.push_back(std::move(flags));
  }
  return per_table;
}

/// Emit the per-morsel scan accounting as an accel.slice_scan span (the
/// same stage name the row path uses, so EXPLAIN ANALYZE consumers see a
/// uniform shape). Records the observed per-morsel selectivity so
/// adaptive-routing consumers can see skew between morsels.
inline void RecordMorselSpan(TraceSpan& span, const Morsel& morsel,
                             const BatchScanStats& before,
                             const BatchScanStats& after) {
  const uint64_t scanned = after.rows_scanned - before.rows_scanned;
  const uint64_t selected = after.rows_selected - before.rows_selected;
  span.Attr("slice", static_cast<uint64_t>(morsel.slice));
  span.Attr("rows_scanned", scanned);
  span.Attr("rows_selected", selected);
  span.Attr("zone_map_skipped",
            static_cast<uint64_t>(after.rows_skipped_zone_map -
                                  before.rows_skipped_zone_map));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                scanned > 0 ? static_cast<double>(selected) / scanned : 0.0);
  span.Attr("selectivity", buf);
}

inline void RecordBatchAttrs(TraceSpan& span, const BatchScanStats& total) {
  span.Attr("batch_path", "true");
  span.Attr("morsels", static_cast<uint64_t>(total.morsels));
  span.Attr("batches", static_cast<uint64_t>(total.batches));
  span.Attr("encoded_eval_rows",
            static_cast<uint64_t>(total.rows_encoded_eval));
  span.Attr("decode_fallback_rows",
            static_cast<uint64_t>(total.rows_decode_fallback));
  char buf[32];
  double selectivity =
      total.rows_scanned > 0
          ? static_cast<double>(total.rows_selected) / total.rows_scanned
          : 0.0;
  std::snprintf(buf, sizeof(buf), "%.3f", selectivity);
  span.Attr("selectivity", buf);
}

/// Storage-layout summary of the scanned table on the scan span: zone
/// counts per encoding and the footprint the encoded zones have vs. what
/// the same rows would cost as flat arrays (EXPLAIN ANALYZE visibility
/// into what compaction bought).
inline void RecordEncodingAttrs(TraceSpan& span, const ColumnTable& table) {
  const TableEncodingStats enc = table.EncodingStats();
  if (enc.columns.encoded_rows == 0) return;
  span.Attr("enc_zones_plain", static_cast<uint64_t>(enc.columns.zones_plain));
  span.Attr("enc_zones_rle", static_cast<uint64_t>(enc.columns.zones_rle));
  span.Attr("enc_zones_for", static_cast<uint64_t>(enc.columns.zones_for));
  span.Attr("enc_bytes", static_cast<uint64_t>(enc.columns.encoded_bytes));
  span.Attr("enc_raw_bytes", static_cast<uint64_t>(enc.columns.raw_bytes));
  span.Attr("enc_hot_rows", static_cast<uint64_t>(enc.hot_rows));
}

inline void AddScanMetrics(MetricsRegistry* metrics,
                           const BatchScanStats& total) {
  if (metrics == nullptr) return;
  metrics->Add(metric::kAccelRowsScanned, total.rows_scanned);
  metrics->Add(metric::kAccelRowsSkippedZoneMap, total.rows_skipped_zone_map);
  metrics->Add(metric::kAccelRowsEncodedEval, total.rows_encoded_eval);
  metrics->Add(metric::kAccelRowsDecodeFallback, total.rows_decode_fallback);
}

}  // namespace idaa::accel
