#include "accel/column_table.h"

#include <algorithm>
#include <string_view>

#include "sql/expression_eval.h"

namespace idaa::accel {

using sql::BoundExpr;
using sql::EvalExpr;
using sql::EvalPredicate;

ColumnTable::Slice::Slice(const Schema& schema, size_t zone_size)
    : zone_map(schema.NumColumns(), zone_size) {
  columns.reserve(schema.NumColumns());
  for (const auto& col : schema.columns()) {
    columns.push_back(std::make_unique<Column>(col.type));
  }
}

void ColumnTable::Slice::Reserve(size_t n) {
  for (auto& col : columns) col->Reserve(n);
  createxid.reserve(n);
  deletexid.reserve(n);
}

Status ColumnTable::Slice::Append(const Row& row, TxnId txn) {
  size_t row_index = NumRows();
  for (size_t c = 0; c < columns.size(); ++c) {
    IDAA_RETURN_IF_ERROR(columns[c]->Append(row[c]));
    zone_map.Observe(row_index, c, row[c]);
  }
  createxid.push_back(txn);
  deletexid.push_back(kInvalidTxnId);
  return Status::OK();
}

Row ColumnTable::Slice::MaterializeRow(size_t i) const {
  Row row;
  row.reserve(columns.size());
  for (const auto& col : columns) row.push_back(col->Get(i));
  return row;
}

Row ColumnTable::Slice::MaterializeProjected(
    size_t i, const std::vector<uint8_t>& projection) const {
  Row row(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    if (projection[c]) row[c] = columns[c]->Get(i);
  }
  return row;
}

ColumnTable::ColumnTable(Schema schema,
                         std::optional<size_t> distribution_column,
                         const AcceleratorOptions& options)
    : schema_(std::move(schema)),
      distribution_column_(distribution_column),
      options_(options),
      encoding_enabled_(options.enable_encoding) {
  slices_.reserve(options_.num_slices);
  for (size_t i = 0; i < options_.num_slices; ++i) {
    slices_.emplace_back(schema_, options_.zone_size);
  }
}

size_t ColumnTable::SliceFor(const Row& row) {
  if (distribution_column_) {
    return row[*distribution_column_].Hash() % slices_.size();
  }
  return round_robin_next_++ % slices_.size();
}

Status ColumnTable::Insert(const std::vector<Row>& rows, TxnId txn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (rows.size() > 1) {
    // Bulk ingest (loader / replication apply): pre-size every slice for
    // its share so per-row appends stop reallocating. Hashed distribution
    // is roughly uniform; round-robin exactly so.
    size_t per_slice = rows.size() / slices_.size() + 1;
    for (Slice& slice : slices_) slice.Reserve(slice.NumRows() + per_slice);
  }
  for (const Row& row : rows) {
    IDAA_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, schema_));
    IDAA_RETURN_IF_ERROR(schema_.ValidateRow(coerced));
    IDAA_RETURN_IF_ERROR(slices_[SliceFor(coerced)].Append(coerced, txn));
  }
  return Status::OK();
}

namespace {

/// Append one staged column's cells (the ascending staging rows in `sel`)
/// to `dst`, observing zone stats one zone-sized run at a time. The run
/// extrema are tracked on the raw typed values; the resulting zone stats
/// are identical to per-cell ZoneMap::Observe.
template <typename T, typename GetCell, typename AppendCell, typename Box>
void AppendColumnRuns(const std::vector<uint32_t>& sel, size_t base,
                      size_t zone_size, size_t column, ZoneMap& zone_map,
                      const ColumnarRows::Col& col, Column& dst,
                      const GetCell& get, const AppendCell& append,
                      const Box& box) {
  const bool has_nulls = !col.nulls.empty();
  size_t k = 0;
  while (k < sel.size()) {
    const size_t abs = base + k;  // slice row index of the run's first row
    const size_t seg = std::min(sel.size() - k, zone_size - abs % zone_size);
    T lo{}, hi{};
    bool any = false, null_seen = false;
    for (size_t j = k; j < k + seg; ++j) {
      const uint32_t r = sel[j];
      if (has_nulls && col.nulls[r] != 0) {
        dst.AppendRawNull();
        null_seen = true;
        continue;
      }
      T v = get(col, r);
      append(dst, v);
      if (!any) {
        lo = hi = v;
        any = true;
      } else if (v < lo) {
        lo = v;
      } else if (hi < v) {
        hi = v;
      }
    }
    zone_map.ObserveRun(abs, column, seg, any ? box(lo) : Value::Null(),
                        any ? box(hi) : Value::Null(), null_seen);
    k += seg;
  }
}

}  // namespace

Status ColumnTable::InsertColumnar(const ColumnarRows& data, TxnId txn) {
  if (data.columns.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("columnar insert: column count mismatch");
  }
  // Validate the staged vectors against the schema up front so the loop
  // below cannot fail mid-append (Insert validates per row for the same
  // reason: a failed row leaves earlier rows appended — callers run inside
  // a transaction whose rollback hides them either way).
  auto cell_is_null = [](const ColumnarRows::Col& col, size_t r) {
    return !col.nulls.empty() && col.nulls[r] != 0;
  };
  for (size_t c = 0; c < data.columns.size(); ++c) {
    const ColumnarRows::Col& col = data.columns[c];
    const ColumnDef& def = schema_.Column(c);
    size_t values = 0;
    switch (def.type) {
      case DataType::kDouble:
        values = col.doubles.size();
        break;
      case DataType::kInteger:
        values = col.ints.size();
        break;
      case DataType::kVarchar:
        values = col.strings.size();
        break;
      default:
        return Status::InvalidArgument(
            "columnar insert supports DOUBLE/INTEGER/VARCHAR columns only: " +
            def.name);
    }
    if (values != data.num_rows ||
        (!col.nulls.empty() && col.nulls.size() != data.num_rows)) {
      return Status::InvalidArgument("columnar insert: column " + def.name +
                                     " is not sized to num_rows");
    }
    if (!def.nullable) {
      for (size_t r = 0; r < data.num_rows; ++r) {
        if (cell_is_null(col, r)) {
          return Status::ConstraintViolation("NULL value for NOT NULL column " +
                                             def.name);
        }
      }
    }
  }
  // Materialize one cell as a Value (distribution hashing / zone maps).
  auto cell_value = [&](size_t c, size_t r) {
    const ColumnarRows::Col& col = data.columns[c];
    if (cell_is_null(col, r)) return Value::Null();
    switch (schema_.Column(c).type) {
      case DataType::kDouble:
        return Value::Double(col.doubles[r]);
      case DataType::kInteger:
        return Value::Integer(col.ints[r]);
      default:
        return Value::Varchar(col.strings[r]);
    }
  };

  std::unique_lock<std::shared_mutex> lock(mu_);
  // Scatter order replicates row-at-a-time SliceFor exactly: every row's
  // target slice is fixed up front (same round-robin / hash sequence), then
  // each slice's rows are appended in ascending staging order — their
  // arrival order — column by column, so the stored state is identical to
  // inserting the same rows via Insert(). The column-by-column walk lets
  // zone-map maintenance fold into one ObserveRun per zone-sized run
  // instead of one Value-boxed Observe per cell.
  std::vector<uint32_t> slice_of(data.num_rows);
  for (size_t r = 0; r < data.num_rows; ++r) {
    slice_of[r] = static_cast<uint32_t>(
        distribution_column_
            ? cell_value(*distribution_column_, r).Hash() % slices_.size()
            : round_robin_next_++ % slices_.size());
  }
  std::vector<uint32_t> sel;
  for (size_t s = 0; s < slices_.size(); ++s) {
    Slice& slice = slices_[s];
    sel.clear();
    sel.reserve(data.num_rows / slices_.size() + 1);
    for (size_t r = 0; r < data.num_rows; ++r) {
      if (slice_of[r] == s) sel.push_back(static_cast<uint32_t>(r));
    }
    if (sel.empty()) continue;
    const size_t base = slice.NumRows();
    slice.Reserve(base + sel.size());
    const size_t zone_size = slice.zone_map.zone_size();
    for (size_t c = 0; c < data.columns.size(); ++c) {
      const ColumnarRows::Col& col = data.columns[c];
      Column& dst = *slice.columns[c];
      switch (dst.type()) {
        case DataType::kDouble:
          AppendColumnRuns<double>(
              sel, base, zone_size, c, slice.zone_map, col, dst,
              [](const ColumnarRows::Col& sc, uint32_t r) {
                return sc.doubles[r];
              },
              [](Column& d, double v) { d.AppendRawDouble(v); },
              [](double v) { return Value::Double(v); });
          break;
        case DataType::kInteger:
          AppendColumnRuns<int64_t>(
              sel, base, zone_size, c, slice.zone_map, col, dst,
              [](const ColumnarRows::Col& sc, uint32_t r) {
                return sc.ints[r];
              },
              [](Column& d, int64_t v) { d.AppendRawInt(v); },
              [](int64_t v) { return Value::Integer(v); });
          break;
        default: {
          // Dictionary-encoded strings: track run extrema by reference
          // against the staged vector (no per-cell Value boxing), then fold
          // zone-map maintenance into one ObserveRun per zone-sized run —
          // two boxed extrema per run instead of one per cell. Final zone
          // stats are identical to per-cell Observe.
          size_t k = 0;
          while (k < sel.size()) {
            const size_t abs = base + k;
            const size_t seg =
                std::min(sel.size() - k, zone_size - abs % zone_size);
            const std::string* lo = nullptr;
            const std::string* hi = nullptr;
            bool null_seen = false;
            for (size_t j = k; j < k + seg; ++j) {
              const uint32_t r = sel[j];
              if (cell_is_null(col, r)) {
                dst.AppendRawNull();
                null_seen = true;
                continue;
              }
              const std::string& v = col.strings[r];
              dst.AppendRawVarchar(v);
              if (lo == nullptr) {
                lo = hi = &v;
              } else if (v < *lo) {
                lo = &v;
              } else if (*hi < v) {
                hi = &v;
              }
            }
            slice.zone_map.ObserveRun(
                abs, c, seg, lo != nullptr ? Value::Varchar(*lo) : Value::Null(),
                hi != nullptr ? Value::Varchar(*hi) : Value::Null(), null_seen);
            k += seg;
          }
        }
      }
    }
    for (size_t j = 0; j < sel.size(); ++j) {
      slice.createxid.push_back(txn);
      slice.deletexid.push_back(kInvalidTxnId);
    }
  }
  return Status::OK();
}

Result<size_t> ColumnTable::DeleteWhere(const BoundExpr* predicate, TxnId txn,
                                        Csn snapshot,
                                        const TransactionManager& tm) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t deleted = 0;
  for (Slice& slice : slices_) {
    for (size_t i = 0; i < slice.NumRows(); ++i) {
      if (!tm.IsVisible(slice.createxid[i], slice.deletexid[i], txn, snapshot)) {
        continue;
      }
      if (predicate != nullptr) {
        Row row = slice.MaterializeRow(i);
        IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate, row));
        if (!pass) continue;
      }
      // First-writer-wins conflict detection against concurrent deleters.
      TxnId current = slice.deletexid[i];
      if (current != kInvalidTxnId && current != txn) {
        TxnState state = tm.StateOf(current);
        if (state == TxnState::kActive) {
          return Status::Conflict(
              "row is being deleted by a concurrent transaction");
        }
        if (state == TxnState::kCommitted) {
          // Deleted by a transaction that committed after our snapshot
          // (otherwise the row would have been invisible): WW conflict.
          return Status::Conflict(
              "row was deleted by a newer committed transaction");
        }
        // Aborted deleter: its mark is void, we may take over.
      }
      slice.deletexid[i] = txn;
      ++deleted;
    }
  }
  return deleted;
}

Result<bool> ColumnTable::DeleteOneMatching(const Row& image, TxnId txn,
                                            Csn snapshot,
                                            const TransactionManager& tm) {
  IDAA_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(image, schema_));
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (Slice& slice : slices_) {
    for (size_t i = 0; i < slice.NumRows(); ++i) {
      if (!tm.IsVisible(slice.createxid[i], slice.deletexid[i], txn, snapshot)) {
        continue;
      }
      if (slice.MaterializeRow(i) != coerced) continue;
      TxnId current = slice.deletexid[i];
      if (current != kInvalidTxnId && current != txn &&
          tm.StateOf(current) != TxnState::kAborted) {
        continue;  // claimed by someone else; try another identical row
      }
      slice.deletexid[i] = txn;
      return true;
    }
  }
  return false;
}

Result<size_t> ColumnTable::UpdateWhere(
    const std::vector<std::pair<size_t, const BoundExpr*>>& assignments,
    const BoundExpr* predicate, TxnId txn, Csn snapshot,
    const TransactionManager& tm) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Collect new versions first, then delete+append (update = delete+insert,
  // the Netezza model; the new version may hash to a different slice).
  struct Pending {
    Slice* slice;
    size_t row_index;
    Row new_row;
  };
  std::vector<Pending> pending;
  for (Slice& slice : slices_) {
    for (size_t i = 0; i < slice.NumRows(); ++i) {
      if (!tm.IsVisible(slice.createxid[i], slice.deletexid[i], txn, snapshot)) {
        continue;
      }
      Row row = slice.MaterializeRow(i);
      if (predicate != nullptr) {
        IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate, row));
        if (!pass) continue;
      }
      TxnId current = slice.deletexid[i];
      if (current != kInvalidTxnId && current != txn) {
        TxnState state = tm.StateOf(current);
        if (state == TxnState::kActive || state == TxnState::kCommitted) {
          return Status::Conflict("update conflicts with concurrent delete");
        }
      }
      Row new_row = row;
      for (const auto& [col, expr] : assignments) {
        IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, row));
        if (!v.is_null() && !ValueMatchesType(v, schema_.Column(col).type)) {
          IDAA_ASSIGN_OR_RETURN(v, v.CastTo(schema_.Column(col).type));
        }
        new_row[col] = std::move(v);
      }
      IDAA_RETURN_IF_ERROR(schema_.ValidateRow(new_row));
      pending.push_back({&slice, i, std::move(new_row)});
    }
  }
  for (Pending& p : pending) {
    p.slice->deletexid[p.row_index] = txn;
    IDAA_RETURN_IF_ERROR(slices_[SliceFor(p.new_row)].Append(p.new_row, txn));
  }
  return pending.size();
}

Result<std::vector<Row>> ColumnTable::ScanSlice(
    size_t slice_index, const BoundExpr* predicate, TxnId reader, Csn snapshot,
    const TransactionManager& tm, MetricsRegistry* metrics,
    const std::vector<uint8_t>* projection, SliceScanStats* stats) const {
  // Pin the layout (blocks Groom's index-shifting rebuilds, not writers),
  // then take the data lock per zone so a long scan never stalls writers
  // for more than one zone's worth of work.
  std::shared_lock<std::shared_mutex> groom_pin(groom_mu_);
  TransactionManager::VisibilityChecker visibility(&tm, reader, snapshot);
  const Slice& slice = slices_[slice_index];
  size_t num_rows;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    num_rows = slice.NumRows();
  }
  std::vector<Row> out;
  out.reserve(std::min<size_t>(num_rows, 1024));

  std::vector<ColumnRange> ranges;
  bool exact_ranges = false;
  if (predicate != nullptr) {
    ranges = ExtractColumnRanges(*predicate, &exact_ranges);
  }

  const size_t zone_size = options_.zone_size;
  size_t rows_scanned = 0;
  size_t rows_skipped = 0;
  std::vector<Row> candidates;

  for (size_t zone_start = 0; zone_start < num_rows; zone_start += zone_size) {
    size_t zone = zone_start / zone_size;
    size_t zone_end = std::min(zone_start + zone_size, num_rows);
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (options_.enable_zone_maps && !ranges.empty() &&
        !slice.zone_map.ZoneCanMatch(zone, ranges)) {
      rows_skipped += zone_end - zone_start;
      continue;
    }

    // Vectorized restriction: evaluate simple ranges column-at-a-time over
    // the zone (the software stand-in for the FPGA restriction stage).
    std::vector<uint8_t> selected(zone_end - zone_start, 1);
    for (const ColumnRange& range : ranges) {
      const Column& col = *slice.columns[range.column];
      for (size_t i = zone_start; i < zone_end; ++i) {
        size_t s = i - zone_start;
        if (!selected[s]) continue;
        if (col.IsNull(i)) {
          selected[s] = 0;
          continue;
        }
        Value v = col.Get(i);
        auto cmp = v.Compare(range.literal);
        if (!cmp.ok()) {
          selected[s] = 0;
          continue;
        }
        bool pass = false;
        switch (range.op) {
          case sql::BinaryOp::kEq: pass = *cmp == 0; break;
          case sql::BinaryOp::kLt: pass = *cmp < 0; break;
          case sql::BinaryOp::kLtEq: pass = *cmp <= 0; break;
          case sql::BinaryOp::kGt: pass = *cmp > 0; break;
          case sql::BinaryOp::kGtEq: pass = *cmp >= 0; break;
          default: pass = true;
        }
        if (!pass) selected[s] = 0;
      }
    }

    candidates.clear();
    for (size_t i = zone_start; i < zone_end; ++i) {
      ++rows_scanned;
      if (!selected[i - zone_start]) continue;
      if (!visibility.IsVisible(slice.createxid[i], slice.deletexid[i])) {
        continue;
      }
      candidates.push_back(projection != nullptr
                               ? slice.MaterializeProjected(i, *projection)
                               : slice.MaterializeRow(i));
    }
    // Residual predicate evaluation runs on materialized copies, outside
    // the data lock — arbitrary expression work must not stall writers.
    lock.unlock();
    for (Row& row : candidates) {
      if (predicate != nullptr && !exact_ranges) {
        IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate, row));
        if (!pass) continue;
      }
      out.push_back(std::move(row));
    }
  }

  if (metrics != nullptr) {
    metrics->Add(metric::kAccelRowsScanned, rows_scanned);
    metrics->Add(metric::kAccelRowsSkippedZoneMap, rows_skipped);
  }
  if (stats != nullptr) {
    stats->rows_scanned = rows_scanned;
    stats->rows_skipped_zone_map = rows_skipped;
  }
  return out;
}

Status ColumnTable::VisitVisible(size_t slice_index,
                                 const BoundExpr* predicate, TxnId reader,
                                 Csn snapshot, const TransactionManager& tm,
                                 MetricsRegistry* metrics,
                                 const ColumnVisitor& visitor,
                                 SliceScanStats* stats) const {
  std::vector<ColumnRange> ranges;
  if (predicate != nullptr) {
    bool exact = false;
    ranges = ExtractColumnRanges(*predicate, &exact);
    if (!exact) {
      return Status::NotSupported(
          "predicate not expressible as column ranges");
    }
  }
  // As in ScanSlice: pin the layout for the whole visit, hold the data
  // lock only per zone so the visitor (which may feed a slow coordinator)
  // cannot stall Groom or writers for the whole slice.
  std::shared_lock<std::shared_mutex> groom_pin(groom_mu_);
  TransactionManager::VisibilityChecker visibility(&tm, reader, snapshot);
  const Slice& slice = slices_[slice_index];
  size_t num_rows;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    num_rows = slice.NumRows();
  }
  const size_t zone_size = options_.zone_size;
  size_t rows_scanned = 0;
  size_t rows_skipped = 0;

  for (size_t zone_start = 0; zone_start < num_rows; zone_start += zone_size) {
    size_t zone = zone_start / zone_size;
    size_t zone_end = std::min(zone_start + zone_size, num_rows);
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (options_.enable_zone_maps && !ranges.empty() &&
        !slice.zone_map.ZoneCanMatch(zone, ranges)) {
      rows_skipped += zone_end - zone_start;
      continue;
    }
    for (size_t i = zone_start; i < zone_end; ++i) {
      ++rows_scanned;
      bool pass = true;
      for (const ColumnRange& range : ranges) {
        const Column& col = *slice.columns[range.column];
        if (col.IsNull(i)) {
          pass = false;
          break;
        }
        auto cmp = col.Get(i).Compare(range.literal);
        if (!cmp.ok()) {
          pass = false;
          break;
        }
        switch (range.op) {
          case sql::BinaryOp::kEq: pass = *cmp == 0; break;
          case sql::BinaryOp::kLt: pass = *cmp < 0; break;
          case sql::BinaryOp::kLtEq: pass = *cmp <= 0; break;
          case sql::BinaryOp::kGt: pass = *cmp > 0; break;
          case sql::BinaryOp::kGtEq: pass = *cmp >= 0; break;
          default: break;
        }
        if (!pass) break;
      }
      if (!pass) continue;
      if (!visibility.IsVisible(slice.createxid[i], slice.deletexid[i])) {
        continue;
      }
      visitor(slice.columns, i);
    }
  }
  if (metrics != nullptr) {
    metrics->Add(metric::kAccelRowsScanned, rows_scanned);
    metrics->Add(metric::kAccelRowsSkippedZoneMap, rows_skipped);
  }
  if (stats != nullptr) {
    stats->rows_scanned = rows_scanned;
    stats->rows_skipped_zone_map = rows_skipped;
  }
  return Status::OK();
}

Result<size_t> ColumnTable::CountVisible(TxnId reader, Csn snapshot,
                                         const TransactionManager& tm) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  TransactionManager::VisibilityChecker visibility(&tm, reader, snapshot);
  size_t count = 0;
  for (const Slice& slice : slices_) {
    for (size_t i = 0; i < slice.NumRows(); ++i) {
      if (visibility.IsVisible(slice.createxid[i], slice.deletexid[i])) {
        ++count;
      }
    }
  }
  return count;
}

namespace {

// Rebuild one column of a grooming slice: append the kept elements of
// `src` (decoding encoded source zones back to raw values) and feed the
// zone map one ObserveRun per zone-sized run, with extrema tracked on the
// PRE-ENCODING raw values. Boxing only the two extrema per run keeps the
// resulting zone stats identical to per-cell Observe while never letting
// an encoded representation (frame deltas, run indexes) leak into pruning
// bounds — sideways join Bloom ranges compare against these.
template <typename T, typename GetRaw, typename AppendCell, typename Box>
void RebuildColumnRuns(const Column& src, const std::vector<size_t>& keep,
                       size_t zone_size, size_t column, ZoneMap& zone_map,
                       Column& dst, const GetRaw& get, const AppendCell& append,
                       const Box& box) {
  size_t k = 0;
  while (k < keep.size()) {
    const size_t seg = std::min(keep.size() - k, zone_size - k % zone_size);
    T lo{}, hi{};
    bool any = false, null_seen = false;
    for (size_t j = k; j < k + seg; ++j) {
      const size_t i = keep[j];
      if (src.IsNull(i)) {
        dst.AppendRawNull();
        null_seen = true;
        continue;
      }
      T v = get(src, i);
      append(dst, v);
      if (!any) {
        lo = hi = v;
        any = true;
      } else if (v < lo) {
        lo = v;
      } else if (hi < v) {
        hi = v;
      }
    }
    zone_map.ObserveRun(k, column, seg, any ? box(lo) : Value::Null(),
                        any ? box(hi) : Value::Null(), null_seen);
    k += seg;
  }
}

}  // namespace

GroomStats ColumnTable::Groom(Csn horizon, const TransactionManager& tm) {
  // Rebuilding a slice shifts row indexes, so wait out pinned scans first
  // (lock order: groom_mu_ then mu_, matching the scan paths). Compaction
  // into encoded zones also happens only here, under both locks held
  // exclusively: raw tail views and cursors held by scans never outlive
  // their pin.
  std::unique_lock<std::shared_mutex> groom_lock(groom_mu_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const bool encode = encoding_enabled_.load(std::memory_order_relaxed);
  GroomStats stats;
  for (Slice& slice : slices_) {
    size_t n = slice.NumRows();
    stats.rows_examined += n;
    // Decide survivors.
    std::vector<size_t> keep;
    keep.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      TxnState created = tm.StateOf(slice.createxid[i]);
      if (created == TxnState::kAborted) continue;  // never existed
      TxnId dx = slice.deletexid[i];
      if (dx != kInvalidTxnId) {
        TxnState deleted = tm.StateOf(dx);
        if (deleted == TxnState::kAborted) {
          slice.deletexid[i] = kInvalidTxnId;  // clear void delete mark
        } else if (deleted == TxnState::kCommitted &&
                   tm.CommitCsnOf(dx) <= horizon) {
          continue;  // no active snapshot can still see it
        }
      }
      keep.push_back(i);
    }
    if (keep.size() < n) {
      stats.rows_reclaimed += n - keep.size();
      Slice rebuilt(schema_, options_.zone_size);
      rebuilt.Reserve(keep.size());
      for (size_t c = 0; c < slice.columns.size(); ++c) {
        const Column& src = *slice.columns[c];
        Column& dst = *rebuilt.columns[c];
        const DataType type = src.type();
        switch (type) {
          case DataType::kDouble:
            RebuildColumnRuns<double>(
                src, keep, options_.zone_size, c, rebuilt.zone_map, dst,
                [](const Column& s, size_t i) { return s.RawDouble(i); },
                [](Column& d, double v) { d.AppendRawDouble(v); },
                [](double v) { return Value::Double(v); });
            break;
          case DataType::kVarchar:
            // String extrema compare by content; values re-intern through
            // the rebuilt column's dictionary (dropping codes only dead
            // rows used).
            RebuildColumnRuns<std::string_view>(
                src, keep, options_.zone_size, c, rebuilt.zone_map, dst,
                [](const Column& s, size_t i) {
                  return std::string_view(s.DictEntry(s.RawCode(i)));
                },
                [](Column& d, std::string_view v) {
                  d.AppendRawVarchar(std::string(v));
                },
                [](std::string_view v) {
                  return Value::Varchar(std::string(v));
                });
            break;
          default:
            // Int-family storage; box extrema back to the schema type so
            // zone stats compare exactly as per-cell Observe did.
            RebuildColumnRuns<int64_t>(
                src, keep, options_.zone_size, c, rebuilt.zone_map, dst,
                [](const Column& s, size_t i) { return s.RawInt(i); },
                [](Column& d, int64_t v) { d.AppendRawInt(v); },
                [type](int64_t v) {
                  switch (type) {
                    case DataType::kBoolean:
                      return Value::Boolean(v != 0);
                    case DataType::kDate:
                      return Value::Date(static_cast<int32_t>(v));
                    case DataType::kTimestamp:
                      return Value::Timestamp(v);
                    default:
                      return Value::Integer(v);
                  }
                });
            break;
        }
      }
      for (size_t i : keep) {
        rebuilt.createxid.push_back(slice.createxid[i]);
        rebuilt.deletexid.push_back(slice.deletexid[i]);
      }
      slice = std::move(rebuilt);
    }
    if (encode) {
      // Fold every full zone of the (possibly just-rebuilt) slice into its
      // per-zone encoding; the partial zone at the end stays the hot tail.
      // All columns of a slice advance in lockstep, so count one column.
      bool first = true;
      for (auto& col : slice.columns) {
        const size_t before = col->encoded_zone_count();
        col->CompactZones(options_.zone_size);
        if (first) {
          stats.zones_compacted += col->encoded_zone_count() - before;
          first = false;
        }
      }
    }
  }
  if (stats.zones_compacted > 0 || stats.rows_reclaimed > 0) {
    compaction_epoch_.fetch_add(1, std::memory_order_release);
  }
  return stats;
}

TableEncodingStats ColumnTable::EncodingStats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  TableEncodingStats out;
  for (const Slice& slice : slices_) {
    size_t encoded = 0;
    for (const auto& col : slice.columns) {
      ColumnEncodingStats s = col->EncodingStats();
      encoded = s.encoded_rows;  // same for every column of the slice
      out.columns.Merge(s);
    }
    out.hot_rows += slice.NumRows() - encoded;
  }
  out.compaction_epoch = compaction_epoch_.load(std::memory_order_acquire);
  return out;
}

std::vector<Morsel> ColumnTable::PlanMorsels(size_t morsel_size) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const size_t zone = options_.zone_size;
  // Zone-align the morsel size so zone-map pruning stays whole-zone.
  const size_t step =
      std::max(zone, (std::max<size_t>(morsel_size, 1) + zone - 1) / zone * zone);
  std::vector<Morsel> morsels;
  for (size_t s = 0; s < slices_.size(); ++s) {
    const size_t n = slices_[s].NumRows();
    for (size_t b = 0; b < n; b += step) {
      morsels.push_back({s, b, std::min(b + step, n)});
    }
  }
  return morsels;
}

std::optional<BatchPredicate> ColumnTable::CompilePredicateForSlice(
    size_t slice_index, const std::vector<ColumnRange>& ranges) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CompileBatchPredicate(ranges, slices_[slice_index].columns);
}

std::vector<uint32_t> ColumnTable::MapDictionaryCodes(
    size_t slice_index, size_t column, const Column& target) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Column& col = *slices_[slice_index].columns[column];
  std::vector<uint32_t> map(col.DictSize(), 0);
  for (size_t code = 0; code < map.size(); ++code) {
    int64_t t = target.LookupCode(col.DictEntry(static_cast<uint32_t>(code)));
    if (t >= 0) map[code] = static_cast<uint32_t>(t) + 1;
  }
  return map;
}

void ColumnTable::ScanMorsel(const Morsel& morsel,
                             const std::vector<ColumnRange>& ranges,
                             const BatchPredicate* predicate,
                             const TransactionManager::VisibilityChecker& visibility,
                             std::vector<uint32_t>* sel, BatchScanStats* stats,
                             const BatchConsumer& consumer,
                             const ZoneFilter* zone_filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Slice& slice = slices_[morsel.slice];
  ++stats->morsels;
  sel->clear();
  if (predicate != nullptr && predicate->never_matches) return;
  const size_t zone_size = options_.zone_size;
  const size_t end = std::min(morsel.row_end, slice.NumRows());
  // morsel.row_begin is zone-aligned by PlanMorsels.
  for (size_t zone_start = morsel.row_begin; zone_start < end;
       zone_start += zone_size) {
    const size_t zone_end = std::min(zone_start + zone_size, end);
    if (options_.enable_zone_maps && !ranges.empty() &&
        !slice.zone_map.ZoneCanMatch(zone_start / zone_size, ranges)) {
      stats->rows_skipped_zone_map += zone_end - zone_start;
      continue;
    }
    if (options_.enable_zone_maps && zone_filter != nullptr &&
        !(*zone_filter)(slice.zone_map, zone_start / zone_size)) {
      stats->rows_skipped_zone_map += zone_end - zone_start;
      continue;
    }
    stats->rows_scanned += zone_end - zone_start;
    FilterVisibility(slice.createxid.data(), slice.deletexid.data(),
                     zone_start, zone_end, morsel.row_begin, visibility, sel);
  }
  if (predicate != nullptr && !sel->empty()) {
    ApplyBatchPredicate(*predicate, slice.columns, morsel.row_begin, sel,
                        stats);
  }
  stats->rows_selected += sel->size();
  if (sel->empty()) return;
  ++stats->batches;
  ColumnBatch batch;
  batch.columns = &slice.columns;
  batch.row_begin = morsel.row_begin;
  batch.row_count = end - morsel.row_begin;
  batch.sel = sel->data();
  batch.sel_count = sel->size();
  consumer(batch);
}

size_t ColumnTable::NumVersions() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const Slice& slice : slices_) total += slice.NumRows();
  return total;
}

std::string ColumnTable::SliceContentString(size_t slice_index) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (slice_index >= slices_.size()) return std::string();
  const Slice& slice = slices_[slice_index];
  std::string out;
  for (size_t i = 0; i < slice.NumRows(); ++i) {
    Row row = slice.MaterializeRow(i);
    for (const Value& v : row) {
      out += v.is_null() ? "<null>" : v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

size_t ColumnTable::ByteSize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const Slice& slice : slices_) {
    for (const auto& col : slice.columns) total += col->ByteSize();
    total += slice.createxid.size() * 2 * sizeof(TxnId);
  }
  return total;
}

}  // namespace idaa::accel
