// ShardedAccelerator: one logical accelerator presented over N physical
// Accelerator shard instances, behind the exact single-appliance API.
//
// Placement follows the DDL: a table with DISTRIBUTE BY is hash-
// partitioned across the shards on that column (shard hash is a
// splitmix64 remix of Value::Hash so it stays independent of the
// slice-level placement inside each shard); a table without one is
// broadcast — every shard holds a full copy, so the batch hash join
// builds its dimension side locally and joins never move rows between
// shards.
//
// SELECT strategy, in order:
//   1. all tables broadcast            -> delegate whole plan to one
//                                         Online shard (prefer shard 0,
//                                         which always has full history);
//   2. partition-key equality          -> shard-pruned: the scan
//      predicate pins the distribution    predicate restricts the fact
//      column to one constant             table to exactly one shard, so
//                                         the whole plan runs there (the
//                                         source of scale-out: 1/N of the
//                                         data is touched per query);
//   3. aggregation                     -> scatter: every shard computes an
//                                         unfinalized AggPartial locally
//                                         (slice partials merged in the
//                                         single-appliance order), the
//                                         coordinator merges shard
//                                         partials in shard order and
//                                         finalizes — bit-identical to one
//                                         appliance for any shard count;
//   4. no agg/order/limit/distinct     -> scatter-concat: each shard runs
//                                         the full local plan, results are
//                                         concatenated shard-major;
//   5. anything else                   -> row-gather: partitioned tables
//                                         are scanned on every shard with
//                                         the scan predicate pushed down,
//                                         broadcast tables on shard 0, and
//                                         the shared coordinator runtime
//                                         finishes the plan.
//
// Topology changes (AddShard with rebalance) run under an exclusive
// topology gate; every statement and every replication route holds a
// shared pin. Pins never block each other, so replication and queries
// only stall for the bounded duration of a rebalance. Rebalance happens
// inside one MVCC transaction: moved rows become visible atomically at
// commit and no reader can observe a half-moved table. Releasing a
// replication pin advances the touched shards' apply epochs; a topology
// change advances the topology epoch and fires the invalidation listener
// so the WLM result cache drops entries for every sharded table.
//
// Failure granularity is the shard: a single Offline shard fails only the
// statements that need it (kUnavailable, retryable), which composes with
// the router's per-statement failback and the health monitor's per-shard
// breaker sites ("<name>#<i>") — the logical accelerator stays attached.

#pragma once

#include <condition_variable>
#include <map>
#include <optional>
#include <vector>

#include "accel/accelerator.h"

namespace idaa::accel {

class ShardedAccelerator : public Accelerator {
 public:
  /// Fires after a topology change commits, with the names of every table
  /// whose placement may have changed (WLM result-cache invalidation).
  using TopologyListener =
      std::function<void(const std::vector<std::string>& tables)>;

  ShardedAccelerator(const AcceleratorOptions& options, size_t num_shards,
                     TransactionManager* tm, MetricsRegistry* metrics,
                     std::string name = "ACCEL1");

  // -- shard management ----------------------------------------------------

  size_t num_shards() const override;
  std::vector<AcceleratorState> ShardStates() const override;

  /// Direct access to one shard instance (tests, health monitoring).
  Accelerator& shard(size_t i);

  /// Per-shard lifecycle control (outage simulation). The logical state
  /// stays Online: statements that can avoid the downed shard still run.
  void SetShardState(size_t i, AcceleratorState state);
  AcceleratorState shard_state(size_t i) const;

  /// Online shard add: creates shard N, registers every table on it, then
  /// rebalances under the exclusive topology gate — broadcast tables are
  /// copied from shard 0, and partitioned rows whose hash now lands on a
  /// different shard are moved — all in one MVCC transaction, so the new
  /// placement becomes visible atomically. Advances the topology epoch
  /// and fires the topology listener.
  Status AddShard();

  /// Monotone counter advanced every time a replication route pin over
  /// shard `i` is released (i.e. after each applied batch touching it).
  uint64_t apply_epoch(size_t i) const;

  /// Monotone counter advanced by every committed topology change.
  uint64_t topology_epoch() const;

  void set_topology_listener(TopologyListener listener);

  // -- Accelerator API -----------------------------------------------------

  void set_fault_injector(FaultInjector* injector) override;
  void SetBatchPathEnabled(bool enabled) override;
  void SetEncodingEnabled(bool enabled) override;

  size_t NumTables() const override;
  Status AddTable(const TableInfo& info) override;
  Status RemoveTable(const std::string& name) override;
  bool HasTable(const std::string& name) const override;
  Result<ColumnTable*> GetTable(const std::string& name) override;
  Result<const ColumnTable*> GetTable(const std::string& name) const override;
  Status LoadRows(const std::string& name, const std::vector<Row>& rows,
                  TxnId txn) override;
  Status LoadColumnar(const std::string& name, const ColumnarRows& rows,
                      TxnId txn) override;
  Result<ResultSet> ExecuteSelect(const sql::BoundSelect& plan, TxnId reader,
                                  Csn snapshot, TraceContext tc = {}) override;
  Result<size_t> ExecuteUpdate(const sql::BoundUpdate& plan, TxnId txn,
                               Csn snapshot) override;
  Result<size_t> ExecuteDelete(const sql::BoundDelete& plan, TxnId txn,
                               Csn snapshot) override;
  GroomStats GroomAll() override;
  std::vector<std::string> ListTables() const override;
  Result<size_t> TableVersions(const std::string& name) const override;
  Result<std::vector<Row>> SnapshotRows(const std::string& name, TxnId reader,
                                        Csn snapshot) const override;
  Result<ReplicaRoute> ReplicaRouteFor(const std::string& table) override;

  /// Shard a row's partition-column value lands on (exposed for tests).
  static size_t ShardOfValue(const Value& v, size_t num_shards);

 private:
  /// Shared topology pin: blocks only while a topology change is in
  /// progress. When `bump_epochs`, releasing the pin advances the apply
  /// epoch of every current shard (replication routes).
  std::shared_ptr<void> AcquirePin(bool bump_epochs = false) const;

  /// Distribution column of `name` (normalized), nullopt for broadcast;
  /// kNotFound when the table is unknown to the shard group.
  Result<std::optional<size_t>> DistributionOf(const std::string& name) const;

  /// Lowest-index Online shard; kUnavailable (retryable) when none.
  Result<size_t> FirstOnlineShard() const;

  /// kUnavailable naming the first non-Online shard; OK when all serve.
  Status AllShardsOnline(const char* op) const;

  Result<ResultSet> ScatterGather(const sql::BoundSelect& plan, TxnId reader,
                                  Csn snapshot, TraceContext tc,
                                  size_t partitioned_table);

  // Guards shards_ growth and the pin/exclusive handshake. Readers of
  // shards_ hold either a pin or gate_mu_ itself; shards_ only grows, and
  // it grows only under the exclusive gate.
  mutable std::mutex gate_mu_;
  mutable std::condition_variable gate_cv_;
  mutable size_t active_pins_ = 0;
  bool topology_locked_ = false;

  std::vector<std::unique_ptr<Accelerator>> shards_;
  // shared_ptr so a route pin created before an AddShard can still bump
  // epochs it captured, and apply_epoch() needs no gate.
  std::vector<std::shared_ptr<std::atomic<uint64_t>>> apply_epochs_;
  std::atomic<uint64_t> topology_epoch_{0};

  // Placement policy + original definitions (AddShard re-registers every
  // table on the new shard).
  mutable std::mutex policy_mu_;
  std::map<std::string, std::optional<size_t>> dist_;
  std::map<std::string, TableInfo> infos_;

  TopologyListener topology_listener_;
};

}  // namespace idaa::accel
