#include "accel/accel_executor.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "accel/batch_join.h"
#include "accel/morsel_scan.h"
#include "accel/partial_agg.h"
#include "sql/expression_eval.h"

namespace idaa::accel {

/// Plans whose aggregation can run at the slices (SPU-side): one table,
/// no residual predicate, plain-column group keys, plain-column (or
/// COUNT(*)) non-DISTINCT aggregate arguments.
bool EligibleForSliceAggregation(const sql::BoundSelect& plan) {
  if (plan.tables.size() != 1 || !plan.has_aggregation) return false;
  if (plan.where) return false;
  for (const auto& key : plan.group_keys) {
    if (key->kind != sql::BoundExprKind::kColumn) return false;
  }
  for (const auto& agg : plan.aggregates) {
    if (agg.distinct) return false;
    if (agg.arg && agg.arg->kind != sql::BoundExprKind::kColumn) return false;
  }
  return true;
}

namespace {

/// Partial aggregation state for one slice.
using SlicePartial = AggPartial;

/// Aggregate one slice without materializing rows (the columnar fast path).
Status AggregateSlice(const ColumnTable& table, size_t slice_index,
                      const sql::BoundSelect& plan, TxnId reader, Csn snapshot,
                      const TransactionManager& tm, MetricsRegistry* metrics,
                      SlicePartial* out, SliceScanStats* stats) {
  std::unordered_map<std::vector<uint64_t>, size_t, RawKeyHash> index;
  std::vector<uint64_t> raw_key(plan.group_keys.size() * 2);

  auto raw_of = [](const Column& col, size_t i, uint64_t* null_flag,
                   uint64_t* bits) {
    if (col.IsNull(i)) {
      *null_flag = 1;
      *bits = 0;
      return;
    }
    *null_flag = 0;
    switch (col.type()) {
      case DataType::kDouble: {
        double d = col.RawDouble(i);
        uint64_t b;
        std::memcpy(&b, &d, sizeof(b));
        *bits = b;
        break;
      }
      case DataType::kVarchar:
        *bits = col.RawCode(i);
        break;
      default:
        *bits = static_cast<uint64_t>(col.RawInt(i));
    }
  };

  return table.VisitVisible(
      slice_index, plan.tables[0].scan_predicate.get(), reader, snapshot, tm,
      metrics,
      [&](const std::vector<std::unique_ptr<Column>>& columns, size_t i) {
        for (size_t k = 0; k < plan.group_keys.size(); ++k) {
          const Column& col = *columns[plan.group_keys[k]->index];
          raw_of(col, i, &raw_key[2 * k], &raw_key[2 * k + 1]);
        }
        auto it = index.find(raw_key);
        size_t group;
        if (it == index.end()) {
          group = out->keys.size();
          index.emplace(raw_key, group);
          std::vector<Value> key_values;
          key_values.reserve(plan.group_keys.size());
          for (const auto& key : plan.group_keys) {
            key_values.push_back(columns[key->index]->Get(i));
          }
          out->keys.push_back(std::move(key_values));
          std::vector<sql::AggregateAccumulator> accs;
          accs.reserve(plan.aggregates.size());
          for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
          out->accumulators.push_back(std::move(accs));
        } else {
          group = it->second;
        }
        auto& accs = out->accumulators[group];
        for (size_t a = 0; a < plan.aggregates.size(); ++a) {
          const auto& agg = plan.aggregates[a];
          if (agg.func == sql::AggFunc::kCountStar) {
            accs[a].AccumulateRow();
          } else {
            accs[a].Accumulate(columns[agg.arg->index]->Get(i));
          }
        }
      },
      stats);
}

// ---------------------------------------------------------------------------
// Vectorized batch execution: morsel-driven scans over raw column arrays
// with selection vectors, bulk visibility, compiled predicates and late
// materialization. Taken whenever the scan predicate converts exactly to
// column ranges that compile against every slice; anything else falls back
// to the row-at-a-time path below with identical results. The shared scan
// plumbing (BatchScanPlan, worker sizing, span accounting) lives in
// morsel_scan.h, also used by the batch join.
// ---------------------------------------------------------------------------

/// Morsel-driven gather: scan morsels pulled from a shared cursor, late-
/// materializing only projected columns of surviving rows, concatenated in
/// morsel (= slice) order. With `limit_cap`, stops pulling morsels once the
/// processed prefix already holds that many rows; because the cursor is
/// monotonic, every morsel pulled before the stop flag completes, so the
/// processed set is a prefix and the first-N trim is deterministic.
Result<std::vector<Row>> BatchGather(
    const ColumnTable& table, const BatchScanPlan& bp, TxnId reader,
    Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, const std::vector<uint8_t>* projection,
    std::optional<size_t> limit_cap, const BatchOptions& batch,
    TraceContext tc) {
  TraceSpan span(tc, "accel.batch_scan");
  auto pin = table.PinForScan();
  const std::vector<Morsel> morsels = table.PlanMorsels(batch.morsel_size);
  const size_t width = table.schema().NumColumns();
  const size_t num_workers = MorselWorkerCount(pool, morsels.size());

  struct Worker {
    TransactionManager::VisibilityChecker visibility;
    std::vector<uint32_t> sel;
    BatchScanStats stats;
  };
  std::vector<Worker> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{TransactionManager::VisibilityChecker(&tm, reader, snapshot),
               {},
               {}});
  }

  std::vector<std::vector<Row>> morsel_rows(morsels.size());
  std::mutex progress_mu;
  std::vector<int64_t> done(morsels.size(), -1);
  size_t prefix = 0;
  size_t prefix_rows = 0;
  std::atomic<bool> stop{false};

  auto run = [&](size_t w, size_t mi) {
    if (stop.load(std::memory_order_relaxed)) return;
    Worker& wk = workers[w];
    const Morsel& m = morsels[mi];
    const BatchScanStats before = wk.stats;
    TraceSpan morsel_span(span.context(), "accel.slice_scan");
    table.ScanMorsel(
        m, bp.ranges, &bp.per_slice[m.slice], wk.visibility, &wk.sel,
        &wk.stats, [&](const ColumnBatch& b) {
          // Cursors keep late materialization amortized-O(1) per element
          // over encoded zones (sel is ascending).
          std::vector<ColumnCursor> cursors;
          cursors.reserve(width);
          for (size_t c = 0; c < width; ++c) {
            cursors.emplace_back(*(*b.columns)[c]);
          }
          std::vector<Row>& rows = morsel_rows[mi];
          rows.reserve(b.sel_count);
          for (size_t k = 0; k < b.sel_count; ++k) {
            const size_t i = b.AbsoluteRow(k);
            Row row(width);
            for (size_t c = 0; c < width; ++c) {
              if (projection == nullptr || (*projection)[c]) {
                row[c] = cursors[c].Get(i);
              }
            }
            rows.push_back(std::move(row));
          }
        });
    RecordMorselSpan(morsel_span, m, before, wk.stats);
    if (limit_cap.has_value()) {
      std::lock_guard<std::mutex> lock(progress_mu);
      done[mi] = static_cast<int64_t>(morsel_rows[mi].size());
      while (prefix < done.size() && done[prefix] >= 0) {
        prefix_rows += static_cast<size_t>(done[prefix]);
        ++prefix;
      }
      if (prefix_rows >= *limit_cap) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };
  if (pool != nullptr && morsels.size() > 1) {
    pool->ParallelForDynamic(morsels.size(), num_workers, run);
  } else {
    for (size_t mi = 0; mi < morsels.size(); ++mi) run(0, mi);
  }

  BatchScanStats total;
  for (const Worker& wk : workers) total.Merge(wk.stats);
  AddScanMetrics(metrics, total);

  std::vector<Row> out;
  out.reserve(limit_cap.has_value()
                  ? std::min(total.rows_selected, *limit_cap)
                  : total.rows_selected);
  for (auto& rows : morsel_rows) {
    for (Row& row : rows) {
      if (limit_cap.has_value() && out.size() >= *limit_cap) break;
      out.push_back(std::move(row));
    }
  }
  RecordBatchAttrs(span, total);
  RecordEncodingAttrs(span, table);
  span.Attr("rows", static_cast<uint64_t>(out.size()));
  return out;
}

/// Morsel-driven GROUP BY / aggregation: each worker accumulates into its
/// own raw-keyed partial (dictionary codes qualified by slice id when a
/// group key is VARCHAR), merged afterwards — unfinalized — through the
/// same raw merge as the row path.
Result<AggPartial> BatchAggregate(
    const sql::BoundSelect& plan, const ColumnTable& table,
    const BatchScanPlan& bp, TxnId reader, Csn snapshot,
    const TransactionManager& tm, ThreadPool* pool, MetricsRegistry* metrics,
    const BatchOptions& batch, TraceSpan& agg_span) {
  // How each aggregate consumes its argument: raw int64/double fast paths
  // for INTEGER/DOUBLE columns, counter-only for COUNT, and the boxed
  // Value path for types whose min/max must keep their logical type
  // (DATE/TIMESTAMP/BOOLEAN/VARCHAR).
  enum class ArgMode { kRow, kCount, kInt64, kDouble, kValue };
  const Schema& schema = table.schema();
  std::vector<ArgMode> modes(plan.aggregates.size(), ArgMode::kRow);
  std::vector<size_t> arg_cols(plan.aggregates.size(), 0);
  for (size_t a = 0; a < plan.aggregates.size(); ++a) {
    const auto& agg = plan.aggregates[a];
    if (agg.func == sql::AggFunc::kCountStar) continue;
    arg_cols[a] = agg.arg->index;
    if (agg.func == sql::AggFunc::kCount) {
      modes[a] = ArgMode::kCount;
    } else {
      switch (schema.Column(arg_cols[a]).type) {
        case DataType::kInteger:
          modes[a] = ArgMode::kInt64;
          break;
        case DataType::kDouble:
          modes[a] = ArgMode::kDouble;
          break;
        default:
          modes[a] = ArgMode::kValue;
      }
    }
  }
  bool varchar_key = false;
  for (const auto& key : plan.group_keys) {
    if (schema.Column(key->index).type == DataType::kVarchar) {
      varchar_key = true;
    }
  }
  const size_t key_base = varchar_key ? 1 : 0;

  auto pin = table.PinForScan();
  const std::vector<Morsel> morsels = table.PlanMorsels(batch.morsel_size);
  const size_t num_workers = MorselWorkerCount(pool, morsels.size());

  struct Worker {
    TransactionManager::VisibilityChecker visibility;
    std::vector<uint32_t> sel;
    BatchScanStats stats;
    std::unordered_map<std::vector<uint64_t>, size_t, RawKeyHash> index;
    SlicePartial partial;
    std::vector<uint64_t> raw_key;
  };
  std::vector<Worker> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{TransactionManager::VisibilityChecker(&tm, reader, snapshot),
               {},
               {},
               {},
               {},
               std::vector<uint64_t>(key_base + plan.group_keys.size() * 2)});
  }

  auto run = [&](size_t w, size_t mi) {
    Worker& wk = workers[w];
    const Morsel& m = morsels[mi];
    const BatchScanStats before = wk.stats;
    TraceSpan morsel_span(agg_span.context(), "accel.slice_scan");
    table.ScanMorsel(
        m, bp.ranges, &bp.per_slice[m.slice], wk.visibility, &wk.sel,
        &wk.stats, [&](const ColumnBatch& b) {
          const auto& columns = *b.columns;
          if (b.sel_count == 0) return;
          // One cursor per aggregate argument: sel is ascending, so reads
          // over encoded zones stay amortized O(1), and RunEnd exposes RLE
          // runs to the scalar fold below.
          std::vector<ColumnCursor> arg_curs;
          arg_curs.reserve(plan.aggregates.size());
          for (size_t a = 0; a < plan.aggregates.size(); ++a) {
            arg_curs.emplace_back(*columns[arg_cols[a]]);
          }
          if (plan.group_keys.empty()) {
            // Scalar aggregation: one group for the whole table, resolved
            // once per batch. Each aggregate then walks sel independently,
            // folding whole RLE runs into one accumulator update.
            if (wk.partial.keys.empty()) {
              wk.index.emplace(wk.raw_key, 0);
              wk.partial.keys.emplace_back();
              std::vector<sql::AggregateAccumulator> accs;
              accs.reserve(plan.aggregates.size());
              for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
              wk.partial.accumulators.push_back(std::move(accs));
            }
            auto& accs = wk.partial.accumulators[0];
            for (size_t a = 0; a < plan.aggregates.size(); ++a) {
              if (modes[a] == ArgMode::kRow) {
                accs[a].AccumulateRowRun(b.sel_count);
                continue;
              }
              ColumnCursor& cur = arg_curs[a];
              if (modes[a] == ArgMode::kValue) {
                for (size_t k = 0; k < b.sel_count; ++k) {
                  accs[a].Accumulate(cur.Get(b.AbsoluteRow(k)));
                }
                continue;
              }
              size_t k = 0;
              while (k < b.sel_count) {
                const size_t i = b.AbsoluteRow(k);
                const size_t run_end = cur.RunEnd(i);
                size_t k2 = k + 1;
                while (k2 < b.sel_count && b.AbsoluteRow(k2) < run_end) {
                  ++k2;
                }
                const uint64_t n = k2 - k;
                if (cur.IsNull(i)) {
                  accs[a].AccumulateNullRun(n);
                } else {
                  switch (modes[a]) {
                    case ArgMode::kCount:
                      accs[a].AccumulateCountNonNullRun(n);
                      break;
                    case ArgMode::kInt64:
                      accs[a].AccumulateInt64Run(cur.Int(i), n);
                      break;
                    default:
                      accs[a].AccumulateDoubleRun(cur.Double(i), n);
                  }
                }
                k = k2;
              }
            }
            return;
          }
          std::vector<ColumnCursor> key_curs;
          key_curs.reserve(plan.group_keys.size());
          for (const auto& key : plan.group_keys) {
            key_curs.emplace_back(*columns[key->index]);
          }
          // Grouped aggregation folds on group-key runs: every selected
          // row inside the maximal run shared by ALL group keys belongs
          // to the same group, so the key extraction + hash probe happen
          // once per run (a GROOM-clustered key collapses a zone to a
          // handful of probes), and each aggregate folds its own argument
          // runs inside the group run exactly like the scalar path.
          size_t k = 0;
          while (k < b.sel_count) {
            const size_t i = b.AbsoluteRow(k);
            size_t key_run_end = key_curs[0].RunEnd(i);
            for (size_t g = 1; g < plan.group_keys.size(); ++g) {
              key_run_end = std::min(key_run_end, key_curs[g].RunEnd(i));
            }
            size_t k2 = k + 1;
            while (k2 < b.sel_count && b.AbsoluteRow(k2) < key_run_end) {
              ++k2;
            }
            if (varchar_key) wk.raw_key[0] = m.slice;
            for (size_t g = 0; g < plan.group_keys.size(); ++g) {
              RawKeyOf(key_curs[g], i, &wk.raw_key[key_base + 2 * g],
                       &wk.raw_key[key_base + 2 * g + 1]);
            }
            auto it = wk.index.find(wk.raw_key);
            size_t group;
            if (it == wk.index.end()) {
              group = wk.partial.keys.size();
              wk.index.emplace(wk.raw_key, group);
              std::vector<Value> key_values;
              key_values.reserve(plan.group_keys.size());
              for (const auto& key : plan.group_keys) {
                key_values.push_back(columns[key->index]->Get(i));
              }
              wk.partial.keys.push_back(std::move(key_values));
              std::vector<sql::AggregateAccumulator> accs;
              accs.reserve(plan.aggregates.size());
              for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
              wk.partial.accumulators.push_back(std::move(accs));
            } else {
              group = it->second;
            }
            auto& accs = wk.partial.accumulators[group];
            for (size_t a = 0; a < plan.aggregates.size(); ++a) {
              if (modes[a] == ArgMode::kRow) {
                accs[a].AccumulateRowRun(k2 - k);
                continue;
              }
              ColumnCursor& cur = arg_curs[a];
              if (modes[a] == ArgMode::kValue) {
                for (size_t kk = k; kk < k2; ++kk) {
                  accs[a].Accumulate(cur.Get(b.AbsoluteRow(kk)));
                }
                continue;
              }
              size_t kk = k;
              while (kk < k2) {
                const size_t ri = b.AbsoluteRow(kk);
                const size_t run_end = cur.RunEnd(ri);
                size_t kk2 = kk + 1;
                while (kk2 < k2 && b.AbsoluteRow(kk2) < run_end) {
                  ++kk2;
                }
                const uint64_t n = kk2 - kk;
                if (cur.IsNull(ri)) {
                  accs[a].AccumulateNullRun(n);
                } else {
                  switch (modes[a]) {
                    case ArgMode::kCount:
                      accs[a].AccumulateCountNonNullRun(n);
                      break;
                    case ArgMode::kInt64:
                      accs[a].AccumulateInt64Run(cur.Int(ri), n);
                      break;
                    default:
                      accs[a].AccumulateDoubleRun(cur.Double(ri), n);
                  }
                }
                kk = kk2;
              }
            }
            k = k2;
          }
        });
    RecordMorselSpan(morsel_span, m, before, wk.stats);
  };
  if (pool != nullptr && morsels.size() > 1) {
    pool->ParallelForDynamic(morsels.size(), num_workers, run);
  } else {
    for (size_t mi = 0; mi < morsels.size(); ++mi) run(0, mi);
  }

  BatchScanStats total;
  std::vector<SlicePartial> partials;
  partials.reserve(workers.size());
  for (Worker& wk : workers) {
    total.Merge(wk.stats);
    partials.push_back(std::move(wk.partial));
  }
  AddScanMetrics(metrics, total);
  RecordBatchAttrs(agg_span, total);
  RecordEncodingAttrs(agg_span, table);
  return MergeAggPartialsRaw(&partials);
}

// ---------------------------------------------------------------------------
// Slice-side star join: small (dimension) tables are broadcast to the data
// slices as hash tables and the big base table is probed during its scan —
// the Netezza SPU-side join. Optionally the aggregation runs there too, so
// only per-group partials reach the coordinator.
// ---------------------------------------------------------------------------

struct BroadcastDim {
  size_t offset = 0;                       ///< combined-layout offset
  std::vector<size_t> base_key_columns;    ///< probe key: base-local columns
  std::vector<size_t> dim_key_columns;     ///< build key: dim-local columns
  std::vector<Row> rows;                   ///< materialized dimension
  std::unordered_map<std::vector<Value>, std::vector<size_t>, ValueKeyHash>
      index;
};

/// Shape test for the slice-side join: inner equi joins whose keys all
/// probe the base (first) table, no residual WHERE. Fills `dims` with key
/// metadata (rows are loaded later).
bool SliceJoinEligible(const sql::BoundSelect& plan,
                       std::vector<BroadcastDim>* dims) {
  if (plan.tables.size() < 2 || plan.where) return false;
  size_t base_width = plan.tables[0].info->schema.NumColumns();
  for (size_t t = 1; t < plan.tables.size(); ++t) {
    const sql::BoundTable& bt = plan.tables[t];
    if (bt.join_type != sql::JoinType::kInner || !bt.join_on) return false;
    std::vector<exec::EquiKey> keys;
    std::vector<const sql::BoundExpr*> residual;
    exec::ExtractEquiKeys(*bt.join_on, bt.offset,
                          bt.offset + bt.info->schema.NumColumns(), &keys,
                          &residual);
    if (keys.empty() || !residual.empty()) return false;
    BroadcastDim dim;
    dim.offset = bt.offset;
    for (const exec::EquiKey& key : keys) {
      if (key.left_index >= base_width) return false;  // chained join
      dim.base_key_columns.push_back(key.left_index);
      dim.dim_key_columns.push_back(key.right_index - bt.offset);
    }
    dims->push_back(std::move(dim));
  }
  return true;
}

/// Whether the post-join aggregation can also run at the slices.
bool JoinAggregationAtSlices(const sql::BoundSelect& plan) {
  if (!plan.has_aggregation) return false;
  for (const auto& key : plan.group_keys) {
    if (key->kind != sql::BoundExprKind::kColumn) return false;
  }
  for (const auto& agg : plan.aggregates) {
    if (agg.distinct) return false;
    if (agg.arg && agg.arg->kind != sql::BoundExprKind::kColumn) return false;
  }
  return true;
}

/// Execute the slice-side join (optionally + aggregation). Returns nullopt
/// when ineligible or when the base scan predicate cannot run column-wise
/// (caller falls back to the coordinator join).
/// `shard_partial` (sharded scatter mode): when non-null and the
/// aggregation runs at the slices, the slice partials are merged
/// UNFINALIZED into *shard_partial, *partial_done is set, and the returned
/// ResultSet stays nullopt — the sharded coordinator finalizes after
/// merging all shards.
Result<std::optional<ResultSet>> TrySliceJoin(
    const sql::BoundSelect& plan, const AccelTableResolver& resolver,
    TxnId reader, Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc = {},
    AggPartial* shard_partial = nullptr, bool* partial_done = nullptr) {
  std::vector<BroadcastDim> dims;
  if (!SliceJoinEligible(plan, &dims)) {
    return std::optional<ResultSet>();
  }

  // Broadcast phase: materialize + index every dimension.
  TraceSpan broadcast_span(tc, "accel.broadcast_dims");
  size_t broadcast_rows = 0;
  for (size_t t = 1; t < plan.tables.size(); ++t) {
    const sql::BoundTable& bt = plan.tables[t];
    IDAA_ASSIGN_OR_RETURN(const ColumnTable* table, resolver(bt));
    IDAA_ASSIGN_OR_RETURN(
        dims[t - 1].rows,
        ParallelScan(*table, bt.scan_predicate.get(), reader, snapshot, tm,
                     pool, metrics, nullptr, broadcast_span.context()));
    BroadcastDim& dim = dims[t - 1];
    broadcast_rows += dim.rows.size();
    for (size_t r = 0; r < dim.rows.size(); ++r) {
      std::vector<Value> key;
      key.reserve(dim.dim_key_columns.size());
      bool has_null = false;
      for (size_t c : dim.dim_key_columns) {
        if (dim.rows[r][c].is_null()) has_null = true;
        key.push_back(dim.rows[r][c]);
      }
      if (has_null) continue;  // NULL never equi-joins
      dim.index[std::move(key)].push_back(r);
    }
  }
  broadcast_span.Attr("dimensions", static_cast<uint64_t>(dims.size()));
  broadcast_span.Attr("rows", static_cast<uint64_t>(broadcast_rows));
  broadcast_span.End();

  IDAA_ASSIGN_OR_RETURN(const ColumnTable* base, resolver(plan.tables[0]));
  const size_t base_width = plan.tables[0].info->schema.NumColumns();
  size_t combined_width = base_width;
  for (size_t t = 1; t < plan.tables.size(); ++t) {
    combined_width += plan.tables[t].info->schema.NumColumns();
  }
  const bool aggregate_at_slices = JoinAggregationAtSlices(plan);
  const size_t num_slices = base->num_slices();

  std::vector<SlicePartial> partials(num_slices);
  std::vector<std::vector<Row>> slice_rows(num_slices);
  std::vector<Status> statuses(num_slices);

  TraceSpan join_span(tc, "accel.slice_join");
  join_span.Attr("aggregate_at_slices", aggregate_at_slices ? "true" : "false");

  auto probe_slice = [&](size_t s) {
    TraceSpan slice_span(join_span.context(), "accel.slice_scan");
    SliceScanStats scan_stats;
    std::unordered_map<std::vector<Value>, size_t, ValueKeyHash> group_index;
    SlicePartial& partial = partials[s];
    std::vector<const std::vector<size_t>*> matches(dims.size());

    statuses[s] = base->VisitVisible(
        s, plan.tables[0].scan_predicate.get(), reader, snapshot, tm, metrics,
        [&](const std::vector<std::unique_ptr<Column>>& columns, size_t i) {
          // Probe every dimension; inner join drops the row on any miss.
          for (size_t d = 0; d < dims.size(); ++d) {
            std::vector<Value> key;
            key.reserve(dims[d].base_key_columns.size());
            for (size_t c : dims[d].base_key_columns) {
              if (columns[c]->IsNull(i)) return;
              key.push_back(columns[c]->Get(i));
            }
            auto it = dims[d].index.find(key);
            if (it == dims[d].index.end()) return;
            matches[d] = &it->second;
          }
          // Cross product over the match lists (odometer).
          std::vector<size_t> pick(dims.size(), 0);
          while (true) {
            // Value of combined-layout column `idx` for this combination.
            auto value_at = [&](size_t idx) -> Value {
              if (idx < base_width) return columns[idx]->Get(i);
              for (size_t d = dims.size(); d-- > 0;) {
                if (idx >= dims[d].offset) {
                  const Row& row = dims[d].rows[(*matches[d])[pick[d]]];
                  return row[idx - dims[d].offset];
                }
              }
              return Value::Null();
            };
            if (aggregate_at_slices) {
              std::vector<Value> group_key;
              group_key.reserve(plan.group_keys.size());
              for (const auto& key : plan.group_keys) {
                group_key.push_back(value_at(key->index));
              }
              auto it = group_index.find(group_key);
              size_t group;
              if (it == group_index.end()) {
                group = partial.keys.size();
                group_index.emplace(group_key, group);
                partial.keys.push_back(std::move(group_key));
                std::vector<sql::AggregateAccumulator> accs;
                accs.reserve(plan.aggregates.size());
                for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
                partial.accumulators.push_back(std::move(accs));
              } else {
                group = it->second;
              }
              auto& accs = partial.accumulators[group];
              for (size_t a = 0; a < plan.aggregates.size(); ++a) {
                const auto& agg = plan.aggregates[a];
                if (agg.func == sql::AggFunc::kCountStar) {
                  accs[a].AccumulateRow();
                } else {
                  accs[a].Accumulate(value_at(agg.arg->index));
                }
              }
            } else {
              Row combined(combined_width);
              for (size_t c = 0; c < base_width; ++c) {
                combined[c] = columns[c]->Get(i);
              }
              for (size_t d = 0; d < dims.size(); ++d) {
                const Row& row = dims[d].rows[(*matches[d])[pick[d]]];
                for (size_t c = 0; c < row.size(); ++c) {
                  combined[dims[d].offset + c] = row[c];
                }
              }
              slice_rows[s].push_back(std::move(combined));
            }
            // Advance the odometer.
            size_t d = 0;
            for (; d < dims.size(); ++d) {
              if (++pick[d] < matches[d]->size()) break;
              pick[d] = 0;
            }
            if (d == dims.size()) break;
          }
        },
        &scan_stats);
    slice_span.Attr("slice", static_cast<uint64_t>(s));
    slice_span.Attr("rows_scanned",
                    static_cast<uint64_t>(scan_stats.rows_scanned));
    slice_span.Attr("zone_map_skipped",
                    static_cast<uint64_t>(scan_stats.rows_skipped_zone_map));
  };

  if (pool != nullptr && num_slices > 1) {
    pool->ParallelFor(num_slices, probe_slice);
  } else {
    for (size_t s = 0; s < num_slices; ++s) probe_slice(s);
  }
  join_span.End();
  for (const Status& status : statuses) {
    if (status.code() == StatusCode::kNotSupported) {
      return std::optional<ResultSet>();  // fall back to coordinator join
    }
    if (!status.ok()) return status;
  }

  TraceSpan merge_span(tc, "accel.coordinator_merge");
  if (aggregate_at_slices && shard_partial != nullptr) {
    IDAA_ASSIGN_OR_RETURN(*shard_partial, MergeAggPartialsRaw(&partials));
    if (partial_done != nullptr) *partial_done = true;
    merge_span.Attr("groups",
                    static_cast<uint64_t>(shard_partial->keys.size()));
    return std::optional<ResultSet>();
  }
  if (aggregate_at_slices) {
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> post,
                          MergeAggPartials(plan, &partials));
    merge_span.Attr("groups", static_cast<uint64_t>(post.size()));
    IDAA_ASSIGN_OR_RETURN(ResultSet out,
                          exec::FinalizeSelect(plan, std::move(post)));
    return std::optional<ResultSet>(std::move(out));
  }
  std::vector<Row> combined;
  for (auto& rows : slice_rows) {
    combined.insert(combined.end(), std::make_move_iterator(rows.begin()),
                    std::make_move_iterator(rows.end()));
  }
  merge_span.Attr("rows", static_cast<uint64_t>(combined.size()));
  IDAA_ASSIGN_OR_RETURN(ResultSet out,
                        exec::FinishSelect(plan, std::move(combined)));
  return std::optional<ResultSet>(std::move(out));
}

/// Run slice-parallel aggregation; returns one merged UNFINALIZED partial
/// (slice/morsel partials merged in deterministic order) or nullopt when
/// the plan is ineligible. Shared by the single-instance path (which
/// finalizes immediately) and the sharded scatter path (which merges the
/// per-shard partials first).
Result<std::optional<AggPartial>> TrySliceAggregationRaw(
    const sql::BoundSelect& plan, const ColumnTable& table, TxnId reader,
    Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc = {},
    const BatchOptions& batch = {}) {
  if (!EligibleForSliceAggregation(plan)) {
    return std::optional<AggPartial>();
  }
  TraceSpan agg_span(tc, "accel.slice_aggregation");
  if (batch.enabled) {
    BatchScanPlan bp;
    if (PrepareBatchScan(table, plan.tables[0].scan_predicate.get(), &bp)) {
      IDAA_ASSIGN_OR_RETURN(
          AggPartial merged,
          BatchAggregate(plan, table, bp, reader, snapshot, tm, pool, metrics,
                         batch, agg_span));
      agg_span.End();
      return std::optional<AggPartial>(std::move(merged));
    }
  }
  agg_span.Attr("batch_path", "false");
  const size_t num_slices = table.num_slices();
  std::vector<SlicePartial> partials(num_slices);
  std::vector<Status> statuses(num_slices);
  auto run_one = [&](size_t s) {
    TraceSpan slice_span(agg_span.context(), "accel.slice_scan");
    SliceScanStats stats;
    statuses[s] = AggregateSlice(table, s, plan, reader, snapshot, tm, metrics,
                                 &partials[s], &stats);
    slice_span.Attr("slice", static_cast<uint64_t>(s));
    slice_span.Attr("rows_scanned", static_cast<uint64_t>(stats.rows_scanned));
    slice_span.Attr("zone_map_skipped",
                    static_cast<uint64_t>(stats.rows_skipped_zone_map));
    slice_span.Attr("groups", static_cast<uint64_t>(partials[s].keys.size()));
  };
  if (pool != nullptr && num_slices > 1) {
    pool->ParallelFor(num_slices, run_one);
  } else {
    for (size_t s = 0; s < num_slices; ++s) run_one(s);
  }
  for (const Status& status : statuses) {
    if (status.code() == StatusCode::kNotSupported) {
      return std::optional<AggPartial>();  // fall back to row path
    }
    if (!status.ok()) return status;
  }
  agg_span.End();
  IDAA_ASSIGN_OR_RETURN(AggPartial merged, MergeAggPartialsRaw(&partials));
  return std::optional<AggPartial>(std::move(merged));
}

/// Run slice-parallel aggregation; returns post-aggregation rows
/// [keys..., aggregate results...] or nullopt when the plan is ineligible.
Result<std::optional<std::vector<Row>>> TrySliceAggregation(
    const sql::BoundSelect& plan, const ColumnTable& table, TxnId reader,
    Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc = {},
    const BatchOptions& batch = {}) {
  IDAA_ASSIGN_OR_RETURN(
      auto merged, TrySliceAggregationRaw(plan, table, reader, snapshot, tm,
                                          pool, metrics, tc, batch));
  if (!merged.has_value()) return std::optional<std::vector<Row>>();
  TraceSpan merge_span(tc, "accel.coordinator_merge");
  IDAA_ASSIGN_OR_RETURN(std::vector<Row> post_rows,
                        FinalizeAggPartial(plan, std::move(*merged)));
  merge_span.Attr("groups", static_cast<uint64_t>(post_rows.size()));
  return std::optional<std::vector<Row>>(std::move(post_rows));
}

}  // namespace

Result<std::vector<Row>> ParallelScan(
    const ColumnTable& table, const sql::BoundExpr* predicate, TxnId reader,
    Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, const std::vector<uint8_t>* projection,
    TraceContext tc, const BatchOptions& batch,
    std::optional<size_t> limit_cap) {
  if (batch.enabled) {
    BatchScanPlan bp;
    if (PrepareBatchScan(table, predicate, &bp)) {
      return BatchGather(table, bp, reader, snapshot, tm, pool, metrics,
                         projection, limit_cap, batch, tc);
    }
  }
  const size_t num_slices = table.num_slices();
  std::vector<Result<std::vector<Row>>> partials(
      num_slices, Result<std::vector<Row>>(std::vector<Row>{}));
  auto scan_one = [&](size_t s) {
    TraceSpan slice_span(tc, "accel.slice_scan");
    SliceScanStats stats;
    partials[s] = table.ScanSlice(s, predicate, reader, snapshot, tm, metrics,
                                  projection, &stats);
    slice_span.Attr("batch_path", "false");
    slice_span.Attr("slice", static_cast<uint64_t>(s));
    slice_span.Attr("rows_scanned", static_cast<uint64_t>(stats.rows_scanned));
    slice_span.Attr("zone_map_skipped",
                    static_cast<uint64_t>(stats.rows_skipped_zone_map));
  };
  if (pool != nullptr && num_slices > 1) {
    pool->ParallelFor(num_slices, scan_one);
  } else {
    for (size_t s = 0; s < num_slices; ++s) scan_one(s);
  }
  std::vector<Row> out;
  for (auto& partial : partials) {
    if (!partial.ok()) return partial.status();
    auto& rows = partial.value();
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return out;
}

Result<ResultSet> ExecuteAccelSelect(const sql::BoundSelect& plan,
                                     const AccelTableResolver& resolver,
                                     TxnId reader, Csn snapshot,
                                     const TransactionManager& tm,
                                     ThreadPool* pool,
                                     MetricsRegistry* metrics,
                                     TraceContext tc,
                                     const BatchOptions& batch) {
  // Columnar fast paths. Single table: aggregation computed at the slices.
  // Star joins: dimensions broadcast to the slices, probe during the scan.
  if (EligibleForSliceAggregation(plan) && plan.tables.size() == 1) {
    IDAA_ASSIGN_OR_RETURN(const ColumnTable* table, resolver(plan.tables[0]));
    IDAA_ASSIGN_OR_RETURN(
        auto post_rows, TrySliceAggregation(plan, *table, reader, snapshot, tm,
                                            pool, metrics, tc, batch));
    if (post_rows.has_value()) {
      return exec::FinalizeSelect(plan, std::move(*post_rows));
    }
  }
  if (plan.tables.size() >= 2) {
    // Vectorized hash join first (build over raw columns, morsel-parallel
    // probe, dictionary-code keys, sideways zone pruning); the slice-side
    // broadcast join and the coordinator JoinIterator remain as fallbacks.
    IDAA_ASSIGN_OR_RETURN(
        auto batch_joined, TryBatchJoin(plan, resolver, reader, snapshot, tm,
                                        pool, metrics, tc, batch));
    if (batch_joined.has_value()) return std::move(*batch_joined);
    IDAA_ASSIGN_OR_RETURN(
        auto joined,
        TrySliceJoin(plan, resolver, reader, snapshot, tm, pool, metrics, tc));
    if (joined.has_value()) return std::move(*joined);
  }

  // Single-table scans whose result only passes through projection + LIMIT
  // can stop early: the scan needs to produce at most `limit_cap` rows.
  const std::optional<size_t> limit_cap = exec::ScanOutputCap(plan);
  std::vector<std::vector<uint8_t>> projections = ComputeProjections(plan);
  exec::TableSource source = [&](size_t index) -> Result<std::vector<Row>> {
    const sql::BoundTable& bt = plan.tables[index];
    IDAA_ASSIGN_OR_RETURN(const ColumnTable* table, resolver(bt));
    return ParallelScan(*table, bt.scan_predicate.get(), reader, snapshot, tm,
                        pool, metrics, &projections[index], tc, batch,
                        limit_cap);
  };
  exec::ExecutorOptions options;
  options.metrics = nullptr;  // slice scans account their own rows
  options.apply_scan_predicates = false;
  return exec::ExecuteBoundSelect(plan, source, options);
}

Result<std::optional<AggPartial>> ExecuteAccelSelectPartial(
    const sql::BoundSelect& plan, const AccelTableResolver& resolver,
    TxnId reader, Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc, const BatchOptions& batch) {
  if (EligibleForSliceAggregation(plan) && plan.tables.size() == 1) {
    IDAA_ASSIGN_OR_RETURN(const ColumnTable* table, resolver(plan.tables[0]));
    return TrySliceAggregationRaw(plan, *table, reader, snapshot, tm, pool,
                                  metrics, tc, batch);
  }
  if (plan.tables.size() >= 2 && JoinAggregationAtSlices(plan)) {
    // Broadcast-dimension join with aggregation at the slices: every shard
    // holds full dimension copies, so the join builds locally and only the
    // unfinalized group partials leave the shard.
    AggPartial partial;
    bool done = false;
    IDAA_ASSIGN_OR_RETURN(
        auto finished,
        TrySliceJoin(plan, resolver, reader, snapshot, tm, pool, metrics, tc,
                     &partial, &done));
    (void)finished;  // nullopt by construction in partial mode
    if (done) return std::optional<AggPartial>(std::move(partial));
  }
  return std::optional<AggPartial>();
}

}  // namespace idaa::accel
