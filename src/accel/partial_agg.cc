#include "accel/partial_agg.h"

#include <unordered_map>

namespace idaa::accel {

Result<AggPartial> MergeAggPartialsRaw(std::vector<AggPartial>* partials) {
  std::unordered_map<std::vector<Value>, size_t, ValueKeyHash> merged_index;
  AggPartial out;
  for (AggPartial& partial : *partials) {
    for (size_t g = 0; g < partial.keys.size(); ++g) {
      auto it = merged_index.find(partial.keys[g]);
      if (it == merged_index.end()) {
        merged_index.emplace(partial.keys[g], out.keys.size());
        out.keys.push_back(std::move(partial.keys[g]));
        out.accumulators.push_back(std::move(partial.accumulators[g]));
      } else {
        auto& accs = out.accumulators[it->second];
        for (size_t a = 0; a < accs.size(); ++a) {
          IDAA_RETURN_IF_ERROR(accs[a].Merge(partial.accumulators[g][a]));
        }
      }
    }
  }
  return out;
}

Result<std::vector<Row>> FinalizeAggPartial(const sql::BoundSelect& plan,
                                            AggPartial partial) {
  // Global aggregation over empty input still yields one row.
  if (partial.keys.empty() && plan.group_keys.empty()) {
    partial.keys.push_back({});
    std::vector<sql::AggregateAccumulator> accs;
    for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
    partial.accumulators.push_back(std::move(accs));
  }
  std::vector<Row> post_rows;
  post_rows.reserve(partial.keys.size());
  for (size_t g = 0; g < partial.keys.size(); ++g) {
    Row row = std::move(partial.keys[g]);
    for (const auto& acc : partial.accumulators[g]) row.push_back(acc.Finalize());
    post_rows.push_back(std::move(row));
  }
  return post_rows;
}

Result<std::vector<Row>> MergeAggPartials(const sql::BoundSelect& plan,
                                          std::vector<AggPartial>* partials) {
  IDAA_ASSIGN_OR_RETURN(AggPartial merged, MergeAggPartialsRaw(partials));
  return FinalizeAggPartial(plan, std::move(merged));
}

}  // namespace idaa::accel
