#include "accel/partial_agg.h"

#include <unordered_map>

namespace idaa::accel {

Result<std::vector<Row>> MergeAggPartials(const sql::BoundSelect& plan,
                                          std::vector<AggPartial>* partials) {
  std::unordered_map<std::vector<Value>, size_t, ValueKeyHash> merged_index;
  std::vector<std::vector<Value>> keys;
  std::vector<std::vector<sql::AggregateAccumulator>> merged;
  for (AggPartial& partial : *partials) {
    for (size_t g = 0; g < partial.keys.size(); ++g) {
      auto it = merged_index.find(partial.keys[g]);
      if (it == merged_index.end()) {
        merged_index.emplace(partial.keys[g], keys.size());
        keys.push_back(std::move(partial.keys[g]));
        merged.push_back(std::move(partial.accumulators[g]));
      } else {
        auto& accs = merged[it->second];
        for (size_t a = 0; a < accs.size(); ++a) {
          IDAA_RETURN_IF_ERROR(accs[a].Merge(partial.accumulators[g][a]));
        }
      }
    }
  }
  // Global aggregation over empty input still yields one row.
  if (keys.empty() && plan.group_keys.empty()) {
    keys.push_back({});
    std::vector<sql::AggregateAccumulator> accs;
    for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
    merged.push_back(std::move(accs));
  }
  std::vector<Row> post_rows;
  post_rows.reserve(keys.size());
  for (size_t g = 0; g < keys.size(); ++g) {
    Row row = std::move(keys[g]);
    for (const auto& acc : merged[g]) row.push_back(acc.Finalize());
    post_rows.push_back(std::move(row));
  }
  return post_rows;
}

}  // namespace idaa::accel
