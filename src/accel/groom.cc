#include "accel/groom.h"

namespace idaa::accel {

GroomStats GroomService::RunOnce() {
  GroomStats stats = accelerator_->GroomAll();
  total_reclaimed_ += stats.rows_reclaimed;
  ++runs_;
  return stats;
}

GroomStats GroomService::MaybeGroom() {
  size_t versions = 0;
  for (const auto& name : accelerator_->ListTables()) {
    auto table = accelerator_->GetTable(name);
    if (table.ok()) versions += (*table)->NumVersions();
  }
  if (versions < trigger_versions_) return GroomStats{};
  return RunOnce();
}

}  // namespace idaa::accel
