#include "accel/groom.h"

namespace idaa::accel {

GroomStats GroomService::RunOnce() {
  GroomStats stats = accelerator_->GroomAll();
  total_reclaimed_ += stats.rows_reclaimed;
  ++runs_;
  return stats;
}

GroomStats GroomService::MaybeGroom() {
  size_t versions = 0;
  for (const auto& name : accelerator_->ListTables()) {
    auto table_versions = accelerator_->TableVersions(name);
    if (table_versions.ok()) versions += *table_versions;
  }
  if (versions < trigger_versions_) return GroomStats{};
  return RunOnce();
}

}  // namespace idaa::accel
