// Accelerator-side query execution: parallel, zone-map-pruned, vectorized
// slice scans feeding the shared coordinator runtime.

#pragma once

#include "accel/column_table.h"
#include "accel/partial_agg.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "engine/select_runtime.h"
#include "sql/binder.h"
#include "txn/transaction_manager.h"

namespace idaa::accel {

/// Runtime knobs for the vectorized batch path, resolved per statement
/// from AcceleratorOptions (the enable flag is toggleable at runtime for
/// differential testing).
struct BatchOptions {
  bool enabled = true;
  size_t morsel_size = kDefaultMorselSize;
};

/// Scan all slices of a table in parallel, applying `predicate` inside the
/// scan, and concatenate the results in slice order (deterministic). When
/// the predicate compiles to an exact batch form and `batch.enabled`, the
/// scan is morsel-driven (fixed row ranges pulled from a shared cursor)
/// with selection-vector filtering and late materialization, and honors
/// `limit_cap` (stop pulling morsels once the first `limit_cap` surviving
/// rows are known); otherwise one task per slice runs the row-at-a-time
/// path and `limit_cap` is ignored (the runtime's LIMIT still applies).
/// With a trace context, each slice/morsel records a span with its
/// scan/zone-map accounting.
Result<std::vector<Row>> ParallelScan(
    const ColumnTable& table, const sql::BoundExpr* predicate, TxnId reader,
    Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics,
    const std::vector<uint8_t>* projection = nullptr, TraceContext tc = {},
    const BatchOptions& batch = {},
    std::optional<size_t> limit_cap = std::nullopt);

/// True when the plan's aggregation can run at the data slices (one
/// table, no residual predicate, plain-column keys and arguments, no
/// DISTINCT) — exposed for EXPLAIN and tests.
bool EligibleForSliceAggregation(const sql::BoundSelect& plan);

/// Resolve plan.tables[i] to accelerator column tables.
using AccelTableResolver =
    std::function<Result<const ColumnTable*>(const sql::BoundTable&)>;

/// Execute a bound SELECT fully on the accelerator under
/// (reader, snapshot) visibility. With a trace context, the chosen fast
/// path, per-slice scans (zone-map rows skipped, rows scanned) and the
/// coordinator merge are recorded as spans.
Result<ResultSet> ExecuteAccelSelect(const sql::BoundSelect& plan,
                                     const AccelTableResolver& resolver,
                                     TxnId reader, Csn snapshot,
                                     const TransactionManager& tm,
                                     ThreadPool* pool,
                                     MetricsRegistry* metrics,
                                     TraceContext tc = {},
                                     const BatchOptions& batch = {});

/// Shard-scatter entry: run the local share of an aggregation plan and
/// return ONE unfinalized partial for this accelerator instance — its
/// slice/morsel partials merged in the same deterministic order the
/// single-instance path uses, but not finalized. The sharded coordinator
/// merges the shard partials in shard order through MergeAggPartials, so
/// group contents are identical to running the whole table on one
/// instance. Covers the single-table slice aggregation and the
/// broadcast-dimension slice join with aggregation-at-slices; nullopt
/// means the plan's shape cannot produce mergeable partials here and the
/// caller must row-gather instead.
Result<std::optional<AggPartial>> ExecuteAccelSelectPartial(
    const sql::BoundSelect& plan, const AccelTableResolver& resolver,
    TxnId reader, Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc = {},
    const BatchOptions& batch = {});

}  // namespace idaa::accel
