// Accelerator-side query execution: parallel, zone-map-pruned, vectorized
// slice scans feeding the shared coordinator runtime.

#pragma once

#include "accel/column_table.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "engine/select_runtime.h"
#include "sql/binder.h"
#include "txn/transaction_manager.h"

namespace idaa::accel {

/// Scan all slices of a table in parallel (one task per data slice),
/// applying `predicate` inside the scan, and concatenate the results in
/// slice order (deterministic). With a trace context, each slice records a
/// span with its scan/zone-map accounting.
Result<std::vector<Row>> ParallelScan(
    const ColumnTable& table, const sql::BoundExpr* predicate, TxnId reader,
    Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics,
    const std::vector<uint8_t>* projection = nullptr, TraceContext tc = {});

/// True when the plan's aggregation can run at the data slices (one
/// table, no residual predicate, plain-column keys and arguments, no
/// DISTINCT) — exposed for EXPLAIN and tests.
bool EligibleForSliceAggregation(const sql::BoundSelect& plan);

/// Resolve plan.tables[i] to accelerator column tables.
using AccelTableResolver =
    std::function<Result<const ColumnTable*>(const sql::BoundTable&)>;

/// Execute a bound SELECT fully on the accelerator under
/// (reader, snapshot) visibility. With a trace context, the chosen fast
/// path, per-slice scans (zone-map rows skipped, rows scanned) and the
/// coordinator merge are recorded as spans.
Result<ResultSet> ExecuteAccelSelect(const sql::BoundSelect& plan,
                                     const AccelTableResolver& resolver,
                                     TxnId reader, Csn snapshot,
                                     const TransactionManager& tm,
                                     ThreadPool* pool,
                                     MetricsRegistry* metrics,
                                     TraceContext tc = {});

}  // namespace idaa::accel
