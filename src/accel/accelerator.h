// Accelerator: the simulated appliance — a catalog of column tables
// (snapshot replicas of accelerated DB2 tables, and accelerator-only
// tables), a worker pool for slice parallelism, and entry points for the
// statements the federation layer delegates.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "accel/accel_executor.h"
#include "accel/column_table.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "txn/transaction_manager.h"

namespace idaa::accel {

/// Lifecycle state of an accelerator, the single source of truth read by
/// the router, the replication service, and EXPLAIN.
///   kOnline     — serving queries and replication.
///   kOffline    — outage/maintenance; all delegated work is rejected
///                 with kUnavailable.
///   kRecovering — back up but replaying the replication backlog; applies
///                 land, queries are still rejected until catch-up.
enum class AcceleratorState : uint8_t { kOnline, kOffline, kRecovering };

const char* AcceleratorStateToString(AcceleratorState state);

class Accelerator {
 public:
  Accelerator(const AcceleratorOptions& options, TransactionManager* tm,
              MetricsRegistry* metrics, std::string name = "ACCEL1");

  const AcceleratorOptions& options() const { return options_; }

  /// This accelerator's name as known to DB2 (e.g. "ACCEL1").
  const std::string& name() const { return name_; }

  /// Lifecycle state (outage simulation / maintenance / catch-up).
  /// Delegated statements against a non-Online accelerator fail with
  /// kUnavailable; replication apply is allowed while Recovering.
  void SetState(AcceleratorState state) { state_ = state; }
  AcceleratorState state() const { return state_; }

  /// Deprecated shims over SetState()/state(); kept so pre-state callers
  /// keep compiling. true <=> kOnline (false maps to kOffline).
  void SetAvailable(bool available) {
    SetState(available ? AcceleratorState::kOnline
                       : AcceleratorState::kOffline);
  }
  bool available() const { return state() == AcceleratorState::kOnline; }

  /// Inject faults at this accelerator's entry points (site
  /// "accel.<name>"; nullptr disables; default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Runtime toggle for the vectorized batch path (differential testing /
  /// benchmarking against the row-at-a-time fallback; results are
  /// identical either way).
  void SetBatchPathEnabled(bool enabled) { batch_path_enabled_ = enabled; }
  bool batch_path_enabled() const { return batch_path_enabled_; }

  /// Number of tables currently hosted (placement balancing).
  size_t NumTables() const;

  /// Create storage for a table (replica or AOT).
  Status AddTable(const TableInfo& info);

  Status RemoveTable(const std::string& name);

  bool HasTable(const std::string& name) const;

  Result<ColumnTable*> GetTable(const std::string& name);
  Result<const ColumnTable*> GetTable(const std::string& name) const;

  /// Bulk-append rows under `txn` (replication apply, loader, INSERT).
  Status LoadRows(const std::string& name, const std::vector<Row>& rows,
                  TxnId txn);

  /// Columnar bulk append from the vectorized engine; same transactional
  /// semantics and stored state as LoadRows of the equivalent rows (see
  /// ColumnTable::InsertColumnar).
  Status LoadColumnar(const std::string& name, const ColumnarRows& rows,
                      TxnId txn);

  /// Delegated SELECT under (reader, snapshot) visibility. With a trace
  /// context, slice scans and merges are recorded as spans.
  Result<ResultSet> ExecuteSelect(const sql::BoundSelect& plan, TxnId reader,
                                  Csn snapshot, TraceContext tc = {});

  /// Delegated UPDATE/DELETE on an AOT.
  Result<size_t> ExecuteUpdate(const sql::BoundUpdate& plan, TxnId txn,
                               Csn snapshot);
  Result<size_t> ExecuteDelete(const sql::BoundDelete& plan, TxnId txn,
                               Csn snapshot);

  /// Groom every table up to the transaction manager's oldest active
  /// snapshot; returns aggregate stats.
  GroomStats GroomAll();

  std::vector<std::string> ListTables() const;

  ThreadPool* thread_pool() { return &pool_; }
  TransactionManager* txn_manager() { return tm_; }
  MetricsRegistry* metrics() { return metrics_; }

 private:
  /// kUnavailable unless Online, then the injector's draw for this
  /// accelerator's site. `op` names the rejected operation in the message.
  Status CheckReady(const char* op) const;

  AcceleratorOptions options_;
  std::string name_;
  std::atomic<AcceleratorState> state_{AcceleratorState::kOnline};
  FaultInjector* injector_ = nullptr;
  std::atomic<bool> batch_path_enabled_;
  TransactionManager* tm_;
  MetricsRegistry* metrics_;
  ThreadPool pool_;
  mutable std::mutex mu_;
  // shared_ptr so maintenance passes (GroomAll) can keep a table alive
  // across their per-table work while a concurrent DROP / AOT re-create
  // removes it from the map.
  std::map<std::string, std::shared_ptr<ColumnTable>> tables_;
};

}  // namespace idaa::accel
