// Accelerator: the simulated appliance — a catalog of column tables
// (snapshot replicas of accelerated DB2 tables, and accelerator-only
// tables), a worker pool for slice parallelism, and entry points for the
// statements the federation layer delegates.
//
// The statement entry points are virtual: ShardedAccelerator presents N
// instances behind this same API (hash-partitioned + broadcast tables,
// scatter-gather with partial-aggregate merge), so the federation layer
// and replication never know whether one appliance or a shard group is
// attached.

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "accel/accel_executor.h"
#include "accel/column_table.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "txn/transaction_manager.h"

namespace idaa::accel {

/// Lifecycle state of an accelerator, the single source of truth read by
/// the router, the replication service, and EXPLAIN.
///   kOnline     — serving queries and replication.
///   kOffline    — outage/maintenance; all delegated work is rejected
///                 with kUnavailable.
///   kRecovering — back up but replaying the replication backlog; applies
///                 land, queries are still rejected until catch-up.
enum class AcceleratorState : uint8_t { kOnline, kOffline, kRecovering };

const char* AcceleratorStateToString(AcceleratorState state);

/// Where replication applies one table's changes: every shard-resident
/// storage of the table plus the partition-hash router. For a plain
/// accelerator there is exactly one target and no router. `shard_of`
/// null <=> broadcast: the change applies to every target.
struct ReplicaRoute {
  std::vector<ColumnTable*> targets;
  std::function<size_t(const Row&)> shard_of;
  /// Keeps the owning topology stable (sharded: blocks shard add /
  /// rebalance) and, on release, advances the touched shards' apply
  /// epochs. Hold until the batch is applied.
  std::shared_ptr<void> pin;
};

class Accelerator {
 public:
  Accelerator(const AcceleratorOptions& options, TransactionManager* tm,
              MetricsRegistry* metrics, std::string name = "ACCEL1");
  virtual ~Accelerator() = default;

  const AcceleratorOptions& options() const { return options_; }

  /// This accelerator's name as known to DB2 (e.g. "ACCEL1").
  const std::string& name() const { return name_; }

  /// Lifecycle state (outage simulation / maintenance / catch-up).
  /// Delegated statements against a non-Online accelerator fail with
  /// kUnavailable; replication apply is allowed while Recovering.
  void SetState(AcceleratorState state) { state_ = state; }
  AcceleratorState state() const { return state_; }

  /// Deprecated shims over SetState()/state(); kept so pre-state callers
  /// keep compiling. true <=> kOnline (false maps to kOffline).
  void SetAvailable(bool available) {
    SetState(available ? AcceleratorState::kOnline
                       : AcceleratorState::kOffline);
  }
  bool available() const { return state() == AcceleratorState::kOnline; }

  /// Inject faults at this accelerator's entry points (site
  /// "accel.<name>"; nullptr disables; default).
  virtual void set_fault_injector(FaultInjector* injector) {
    injector_ = injector;
  }

  /// Runtime toggle for the vectorized batch path (differential testing /
  /// benchmarking against the row-at-a-time fallback; results are
  /// identical either way).
  virtual void SetBatchPathEnabled(bool enabled) {
    batch_path_enabled_ = enabled;
  }
  bool batch_path_enabled() const { return batch_path_enabled_; }

  /// Runtime toggle for GROOM-time zone compaction on every hosted table
  /// (current and future). Results are identical either way — encoded
  /// zones keep decoding transparently when disabled; only future grooms
  /// stop (or resume) compacting. Sharded: fans out to every shard.
  virtual void SetEncodingEnabled(bool enabled);
  bool encoding_enabled() const { return encoding_enabled_; }

  /// Called after any GroomAll pass that compacted zones or reclaimed rows
  /// in some table, with the affected table names: the physical layout
  /// (row order / encoding) changed even though logical content did not,
  /// so layout-dependent caches must drop those tables.
  using CompactionListener = std::function<void(const std::vector<std::string>&)>;
  void set_compaction_listener(CompactionListener listener) {
    compaction_listener_ = std::move(listener);
  }

  /// Number of physical shard instances behind this logical accelerator
  /// (1 for a plain appliance).
  virtual size_t num_shards() const { return 1; }

  /// Per-shard lifecycle states, shard-index order (size num_shards()).
  virtual std::vector<AcceleratorState> ShardStates() const {
    return {state()};
  }

  /// Number of tables currently hosted (placement balancing).
  virtual size_t NumTables() const;

  /// Create storage for a table (replica or AOT).
  virtual Status AddTable(const TableInfo& info);

  virtual Status RemoveTable(const std::string& name);

  virtual bool HasTable(const std::string& name) const;

  /// Direct storage access. On a sharded accelerator this resolves only
  /// broadcast tables (every shard holds a full copy); hash-partitioned
  /// tables have no single backing ColumnTable and fail kNotSupported.
  virtual Result<ColumnTable*> GetTable(const std::string& name);
  virtual Result<const ColumnTable*> GetTable(const std::string& name) const;

  /// Bulk-append rows under `txn` (replication apply, loader, INSERT).
  virtual Status LoadRows(const std::string& name, const std::vector<Row>& rows,
                          TxnId txn);

  /// Columnar bulk append from the vectorized engine; same transactional
  /// semantics and stored state as LoadRows of the equivalent rows (see
  /// ColumnTable::InsertColumnar).
  virtual Status LoadColumnar(const std::string& name, const ColumnarRows& rows,
                              TxnId txn);

  /// Delegated SELECT under (reader, snapshot) visibility. With a trace
  /// context, slice scans and merges are recorded as spans.
  virtual Result<ResultSet> ExecuteSelect(const sql::BoundSelect& plan,
                                          TxnId reader, Csn snapshot,
                                          TraceContext tc = {});

  /// Delegated UPDATE/DELETE on an AOT.
  virtual Result<size_t> ExecuteUpdate(const sql::BoundUpdate& plan, TxnId txn,
                                       Csn snapshot);
  virtual Result<size_t> ExecuteDelete(const sql::BoundDelete& plan, TxnId txn,
                                       Csn snapshot);

  /// Groom every table up to the transaction manager's oldest active
  /// snapshot; returns aggregate stats. Sharded: per-shard groom on every
  /// Online shard.
  virtual GroomStats GroomAll();

  virtual std::vector<std::string> ListTables() const;

  /// Total stored row versions of one table (sharded: summed across
  /// shards). Maintenance/placement accounting.
  virtual Result<size_t> TableVersions(const std::string& name) const;

  /// All rows of `name` visible under (reader, snapshot), concatenated in
  /// slice order (sharded: shard-major slice order). Verification and
  /// rebalance path — not gated on lifecycle state.
  virtual Result<std::vector<Row>> SnapshotRows(const std::string& name,
                                                TxnId reader,
                                                Csn snapshot) const;

  /// Where replication applies `table`'s changes (see ReplicaRoute). A
  /// plain accelerator returns its single ColumnTable; sharded, all shard
  /// storages plus the partition-hash router. Fails kUnavailable
  /// (retryable — the batch requeues) while any required shard is Offline.
  virtual Result<ReplicaRoute> ReplicaRouteFor(const std::string& table);

  // -- scatter support (called by ShardedAccelerator on its shards) --------

  /// State/fault-gated parallel scan of one table with the scan predicate
  /// applied (the per-shard leg of a scatter-gather row read). Rows come
  /// back in deterministic slice order.
  Result<std::vector<Row>> ScanTable(const std::string& name,
                                     const sql::BoundExpr* predicate,
                                     TxnId reader, Csn snapshot,
                                     const std::vector<uint8_t>* projection,
                                     TraceContext tc = {},
                                     std::optional<size_t> limit_cap =
                                         std::nullopt);

  /// State/fault-gated local partial aggregation (the per-shard leg of a
  /// scatter-gather aggregate; see ExecuteAccelSelectPartial).
  Result<std::optional<AggPartial>> ExecuteSelectPartial(
      const sql::BoundSelect& plan, TxnId reader, Csn snapshot,
      TraceContext tc = {});

  ThreadPool* thread_pool() { return &pool_; }
  TransactionManager* txn_manager() { return tm_; }
  MetricsRegistry* metrics() { return metrics_; }

 protected:
  /// kUnavailable unless Online, then the injector's draw for this
  /// accelerator's site. `op` names the rejected operation in the message.
  Status CheckReady(const char* op) const;

  AcceleratorOptions options_;
  std::string name_;
  std::atomic<AcceleratorState> state_{AcceleratorState::kOnline};
  FaultInjector* injector_ = nullptr;
  std::atomic<bool> batch_path_enabled_;
  std::atomic<bool> encoding_enabled_;
  CompactionListener compaction_listener_;
  TransactionManager* tm_;
  MetricsRegistry* metrics_;
  ThreadPool pool_;

 private:
  mutable std::mutex mu_;
  // shared_ptr so maintenance passes (GroomAll) can keep a table alive
  // across their per-table work while a concurrent DROP / AOT re-create
  // removes it from the map.
  std::map<std::string, std::shared_ptr<ColumnTable>> tables_;
};

}  // namespace idaa::accel
