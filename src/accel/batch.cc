#include "accel/batch.h"

namespace idaa::accel {

namespace {

// Compact `sel` to the offsets whose element passes `op` against `lit`,
// skipping NULLs. `get(i)` reads the raw value at absolute row i; the
// comparison semantics mirror Value::Compare for the representation the
// caller compiled (see CompileBatchPredicate).
template <typename GetFn, typename T>
size_t FilterCompare(std::vector<uint32_t>& sel, size_t sel_base,
                     const uint8_t* nulls, sql::BinaryOp op, GetFn get,
                     T lit) {
  size_t kept = 0;
  switch (op) {
    case sql::BinaryOp::kEq:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) == lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kLt:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) < lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kLtEq:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) <= lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kGt:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) > lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kGtEq:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) >= lit) sel[kept++] = off;
      }
      break;
    default:
      // Non-range operators never reach the batch path
      // (ExtractColumnRanges only emits the five above).
      break;
  }
  return kept;
}

// Single-pass variant for a fused lower+upper range (BETWEEN): keeps the
// offsets whose element lies within [lo, hi] with per-bound strictness.
template <typename GetFn, typename T>
size_t FilterRange(std::vector<uint32_t>& sel, size_t sel_base,
                   const uint8_t* nulls, bool lo_strict, T lo, bool hi_strict,
                   T hi, GetFn get) {
  size_t kept = 0;
  for (uint32_t off : sel) {
    size_t i = sel_base + off;
    if (nulls[i]) continue;
    T v = get(i);
    if ((lo_strict ? v > lo : v >= lo) && (hi_strict ? v < hi : v <= hi)) {
      sel[kept++] = off;
    }
  }
  return kept;
}

// True when the op holds for a three-way comparison result `c`
// (c = compare(element, literal)).
bool OpHolds(sql::BinaryOp op, int c) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return c == 0;
    case sql::BinaryOp::kLt:
      return c < 0;
    case sql::BinaryOp::kLtEq:
      return c <= 0;
    case sql::BinaryOp::kGt:
      return c > 0;
    case sql::BinaryOp::kGtEq:
      return c >= 0;
    default:
      return false;
  }
}

}  // namespace

std::optional<BatchPredicate> CompileBatchPredicate(
    const std::vector<ColumnRange>& ranges,
    const std::vector<std::unique_ptr<Column>>& columns) {
  BatchPredicate out;
  for (const ColumnRange& r : ranges) {
    if (r.column >= columns.size()) return std::nullopt;
    const Column& col = *columns[r.column];
    const Value& lit = r.literal;
    if (lit.is_null()) {
      // Value::Compare errors on NULL; the row-at-a-time scan drops every
      // row for such a conjunct.
      out.never_matches = true;
      return out;
    }
    CompiledCompare cc;
    cc.column = r.column;
    cc.op = r.op;
    switch (col.type()) {
      case DataType::kBoolean:
        // Compare admits only boolean-vs-boolean here.
        if (!lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        cc.rep = CompiledCompare::Rep::kInt;
        cc.int_literal = lit.AsBoolean() ? 1 : 0;
        break;
      case DataType::kInteger:
      case DataType::kDate:
      case DataType::kTimestamp: {
        if (lit.is_varchar() || lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        if (col.type() == DataType::kInteger && lit.is_integer()) {
          // Same-kind integers take Value::Compare's exact path.
          cc.rep = CompiledCompare::Rep::kInt;
          cc.int_literal = lit.AsInteger();
        } else {
          // Numeric cross-type comparison goes through double, exactly as
          // Value::Compare does.
          auto d = lit.ToDouble();
          if (!d.ok()) {
            out.never_matches = true;
            return out;
          }
          cc.rep = CompiledCompare::Rep::kIntAsDouble;
          cc.double_literal = *d;
        }
        break;
      }
      case DataType::kDouble: {
        if (lit.is_varchar() || lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        auto d = lit.ToDouble();
        if (!d.ok()) {
          out.never_matches = true;
          return out;
        }
        cc.rep = CompiledCompare::Rep::kDouble;
        cc.double_literal = *d;
        break;
      }
      case DataType::kVarchar: {
        if (!lit.is_varchar()) {
          out.never_matches = true;
          return out;
        }
        if (r.op == sql::BinaryOp::kEq) {
          int64_t code = col.LookupCode(lit.AsVarchar());
          if (code < 0) {
            out.never_matches = true;
            return out;
          }
          cc.rep = CompiledCompare::Rep::kCode;
          cc.code_literal = static_cast<uint32_t>(code);
        } else {
          // Ordering on VARCHAR: evaluate the string comparison once per
          // dictionary entry instead of once per row.
          cc.rep = CompiledCompare::Rep::kCodeTable;
          cc.pass_table.resize(col.DictSize());
          for (uint32_t code = 0; code < cc.pass_table.size(); ++code) {
            int c = col.DictEntry(code).compare(lit.AsVarchar());
            cc.pass_table[code] = OpHolds(r.op, c < 0 ? -1 : (c > 0 ? 1 : 0));
          }
        }
        break;
      }
    }
    out.compares.push_back(std::move(cc));
  }
  // Fuse a lower and an upper bound on the same numeric column (the shape
  // BETWEEN produces) into one range compare so the scan makes a single
  // pass over the data instead of two.
  auto is_lower = [](sql::BinaryOp op) {
    return op == sql::BinaryOp::kGt || op == sql::BinaryOp::kGtEq;
  };
  auto is_upper = [](sql::BinaryOp op) {
    return op == sql::BinaryOp::kLt || op == sql::BinaryOp::kLtEq;
  };
  auto numeric = [](CompiledCompare::Rep rep) {
    return rep == CompiledCompare::Rep::kInt ||
           rep == CompiledCompare::Rep::kIntAsDouble ||
           rep == CompiledCompare::Rep::kDouble;
  };
  for (size_t i = 0; i < out.compares.size(); ++i) {
    CompiledCompare& a = out.compares[i];
    if (a.has_upper || !numeric(a.rep)) continue;
    if (!is_lower(a.op) && !is_upper(a.op)) continue;
    for (size_t j = i + 1; j < out.compares.size(); ++j) {
      CompiledCompare& b = out.compares[j];
      if (b.has_upper || b.column != a.column || b.rep != a.rep) continue;
      const bool a_lower = is_lower(a.op);
      if (a_lower ? !is_upper(b.op) : !is_lower(b.op)) continue;
      if (!a_lower) {
        // Normalize so `op` holds the lower bound.
        std::swap(a.op, b.op);
        std::swap(a.int_literal, b.int_literal);
        std::swap(a.double_literal, b.double_literal);
      }
      a.has_upper = true;
      a.upper_op = b.op;
      a.upper_int = b.int_literal;
      a.upper_double = b.double_literal;
      out.compares.erase(out.compares.begin() + j);
      break;
    }
  }
  return out;
}

void FilterVisibility(const TxnId* createxid, const TxnId* deletexid,
                      size_t range_begin, size_t range_end, size_t sel_base,
                      const TransactionManager::VisibilityChecker& visibility,
                      std::vector<uint32_t>* sel) {
  // Bulk loads leave long runs of identical (createxid, deletexid) pairs;
  // memoizing the previous pair turns the per-row hash-map probes inside
  // IsVisible into a pair of integer compares for those runs. IsVisible is
  // stable for a given pair within one checker (it caches per-xid verdicts),
  // so the memo cannot diverge from a direct call.
  const size_t old_size = sel->size();
  sel->resize(old_size + (range_end - range_begin));
  uint32_t* out = sel->data() + old_size;
  bool have_last = false;
  TxnId last_create = 0;
  TxnId last_delete = 0;
  bool last_visible = false;
  for (size_t i = range_begin; i < range_end; ++i) {
    const TxnId c = createxid[i];
    const TxnId d = deletexid[i];
    if (!have_last || c != last_create || d != last_delete) {
      last_visible = visibility.IsVisible(c, d);
      last_create = c;
      last_delete = d;
      have_last = true;
    }
    *out = static_cast<uint32_t>(i - sel_base);
    out += last_visible ? 1 : 0;
  }
  sel->resize(static_cast<size_t>(out - sel->data()));
}

void ApplyBatchPredicate(const BatchPredicate& predicate,
                         const std::vector<std::unique_ptr<Column>>& columns,
                         size_t sel_base, std::vector<uint32_t>* sel) {
  for (const CompiledCompare& cmp : predicate.compares) {
    if (sel->empty()) return;
    const Column& col = *columns[cmp.column];
    const uint8_t* nulls = col.NullsData();
    size_t kept = 0;
    switch (cmp.rep) {
      case CompiledCompare::Rep::kInt: {
        const int64_t* data = col.IntsData();
        auto get = [data](size_t i) { return data[i]; };
        kept = cmp.has_upper
                   ? FilterRange(*sel, sel_base, nulls,
                                 cmp.op == sql::BinaryOp::kGt, cmp.int_literal,
                                 cmp.upper_op == sql::BinaryOp::kLt,
                                 cmp.upper_int, get)
                   : FilterCompare(*sel, sel_base, nulls, cmp.op, get,
                                   cmp.int_literal);
        break;
      }
      case CompiledCompare::Rep::kIntAsDouble: {
        const int64_t* data = col.IntsData();
        auto get = [data](size_t i) { return static_cast<double>(data[i]); };
        kept = cmp.has_upper
                   ? FilterRange(*sel, sel_base, nulls,
                                 cmp.op == sql::BinaryOp::kGt,
                                 cmp.double_literal,
                                 cmp.upper_op == sql::BinaryOp::kLt,
                                 cmp.upper_double, get)
                   : FilterCompare(*sel, sel_base, nulls, cmp.op, get,
                                   cmp.double_literal);
        break;
      }
      case CompiledCompare::Rep::kDouble: {
        const double* data = col.DoublesData();
        auto get = [data](size_t i) { return data[i]; };
        kept = cmp.has_upper
                   ? FilterRange(*sel, sel_base, nulls,
                                 cmp.op == sql::BinaryOp::kGt,
                                 cmp.double_literal,
                                 cmp.upper_op == sql::BinaryOp::kLt,
                                 cmp.upper_double, get)
                   : FilterCompare(*sel, sel_base, nulls, cmp.op, get,
                                   cmp.double_literal);
        break;
      }
      case CompiledCompare::Rep::kCode: {
        const uint32_t* data = col.CodesData();
        for (uint32_t off : *sel) {
          size_t i = sel_base + off;
          if (!nulls[i] && data[i] == cmp.code_literal) (*sel)[kept++] = off;
        }
        break;
      }
      case CompiledCompare::Rep::kCodeTable: {
        const uint32_t* data = col.CodesData();
        const std::vector<uint8_t>& pass = cmp.pass_table;
        for (uint32_t off : *sel) {
          size_t i = sel_base + off;
          if (!nulls[i] && data[i] < pass.size() && pass[data[i]]) {
            (*sel)[kept++] = off;
          }
        }
        break;
      }
    }
    sel->resize(kept);
  }
}

}  // namespace idaa::accel
