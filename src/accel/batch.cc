#include "accel/batch.h"

#include <limits>

namespace idaa::accel {

namespace {

// Canonical [lo, hi] interval form of a numeric compare: each of the five
// operators ExtractColumnRanges emits — and the fused BETWEEN shape — is an
// interval with per-bound strictness, so one predicate object serves the
// element loops and the run-at-a-time RLE kernel alike. NULLs are rejected
// before Pass() is consulted. Semantics match the raw-array loops this
// replaced: NaN fails every bound, and an unknown operator yields an empty
// interval (the row path never produces one).
template <typename T>
struct Bounds {
  T lo;
  T hi;
  bool lo_strict = false;
  bool hi_strict = false;

  bool Pass(T v) const {
    return (lo_strict ? v > lo : v >= lo) && (hi_strict ? v < hi : v <= hi);
  }
};

template <typename T>
Bounds<T> MakeBounds(const CompiledCompare& cmp, T lit, T upper_lit, T min_v,
                     T max_v) {
  Bounds<T> b{min_v, max_v, false, false};
  auto apply = [&b](sql::BinaryOp op, T v) {
    switch (op) {
      case sql::BinaryOp::kEq:
        b.lo = v;
        b.hi = v;
        b.lo_strict = false;
        b.hi_strict = false;
        break;
      case sql::BinaryOp::kLt:
        b.hi = v;
        b.hi_strict = true;
        break;
      case sql::BinaryOp::kLtEq:
        b.hi = v;
        b.hi_strict = false;
        break;
      case sql::BinaryOp::kGt:
        b.lo = v;
        b.lo_strict = true;
        break;
      case sql::BinaryOp::kGtEq:
        b.lo = v;
        b.lo_strict = false;
        break;
      default:
        // Non-range operators never reach the batch path; make the
        // interval empty so behavior stays "drop everything".
        b.lo = v;
        b.hi = v;
        b.lo_strict = true;
        b.hi_strict = true;
        break;
    }
  };
  apply(cmp.op, lit);
  if (cmp.has_upper) apply(cmp.upper_op, upper_lit);
  return b;
}

// One adapter per CompiledCompare::Rep: how to read a value from each
// storage region (hot tail / plain zone / RLE run / FOR-packed element)
// and how to test it. kForDirect marks reps with a direct kernel on
// FOR-packed zones; the rest decode the zone into scratch (the generic
// fallback path, counted separately in BatchScanStats).
struct IntAdapter {
  static constexpr bool kForDirect = true;
  const int64_t* tail;
  Bounds<int64_t> b;
  bool Pass(int64_t v) const { return b.Pass(v); }
  int64_t Tail(size_t t) const { return tail[t]; }
  int64_t Plain(const EncodedZone& z, size_t off) const { return z.ints[off]; }
  int64_t Run(const EncodedZone& z, size_t r) const { return z.ints[r]; }
  int64_t For(const EncodedZone& z, size_t off) const {
    if (z.bit_width == 0) return z.for_base;
    return z.for_base + static_cast<int64_t>(ExtractPacked(z.packed.data(),
                                                           off, z.bit_width));
  }
  int64_t Decoded(int64_t v) const { return v; }
};

// Numeric cross-type comparison (int storage vs double literal). No direct
// kernel on FOR-packed zones: this is the deliberately-generic decode
// fallback shape, keeping that path exercised.
struct IntAsDoubleAdapter {
  static constexpr bool kForDirect = false;
  const int64_t* tail;
  Bounds<double> b;
  bool Pass(double v) const { return b.Pass(v); }
  double Tail(size_t t) const { return static_cast<double>(tail[t]); }
  double Plain(const EncodedZone& z, size_t off) const {
    return static_cast<double>(z.ints[off]);
  }
  double Run(const EncodedZone& z, size_t r) const {
    return static_cast<double>(z.ints[r]);
  }
  double For(const EncodedZone&, size_t) const { return 0; }  // fallback
  double Decoded(int64_t v) const { return static_cast<double>(v); }
};

struct DoubleAdapter {
  static constexpr bool kForDirect = true;  // doubles never FOR-pack
  const double* tail;
  Bounds<double> b;
  bool Pass(double v) const { return b.Pass(v); }
  double Tail(size_t t) const { return tail[t]; }
  double Plain(const EncodedZone& z, size_t off) const {
    return z.doubles[off];
  }
  double Run(const EncodedZone& z, size_t r) const { return z.doubles[r]; }
  double For(const EncodedZone&, size_t) const { return 0; }  // unreachable
  double Decoded(int64_t) const { return 0; }                 // unreachable
};

struct CodeEqAdapter {
  static constexpr bool kForDirect = true;
  const uint32_t* tail;
  uint32_t lit;
  bool Pass(uint32_t v) const { return v == lit; }
  uint32_t Tail(size_t t) const { return tail[t]; }
  uint32_t Plain(const EncodedZone& z, size_t off) const {
    return z.codes[off];
  }
  uint32_t Run(const EncodedZone& z, size_t r) const { return z.codes[r]; }
  uint32_t For(const EncodedZone& z, size_t off) const {
    if (z.bit_width == 0) return static_cast<uint32_t>(z.for_base);
    return static_cast<uint32_t>(
        z.for_base +
        static_cast<int64_t>(ExtractPacked(z.packed.data(), off,
                                           z.bit_width)));
  }
  uint32_t Decoded(int64_t v) const {  // unreachable
    return static_cast<uint32_t>(v);
  }
};

struct CodeTableAdapter {
  static constexpr bool kForDirect = true;
  const uint32_t* tail;
  const std::vector<uint8_t>* pass;
  bool Pass(uint32_t v) const { return v < pass->size() && (*pass)[v]; }
  uint32_t Tail(size_t t) const { return tail[t]; }
  uint32_t Plain(const EncodedZone& z, size_t off) const {
    return z.codes[off];
  }
  uint32_t Run(const EncodedZone& z, size_t r) const { return z.codes[r]; }
  uint32_t For(const EncodedZone& z, size_t off) const {
    if (z.bit_width == 0) return static_cast<uint32_t>(z.for_base);
    return static_cast<uint32_t>(
        z.for_base +
        static_cast<int64_t>(ExtractPacked(z.packed.data(), off,
                                           z.bit_width)));
  }
  uint32_t Decoded(int64_t v) const {  // unreachable
    return static_cast<uint32_t>(v);
  }
};

// Compact `sel` (ascending, morsel-relative offsets) in place to the rows
// passing one compare, dispatching per storage region: encoded zones get
// their per-encoding kernel — RLE evaluates once per run and replays the
// verdict across the run's selected rows — and the hot tail runs the flat
// loops. Returns the surviving count.
template <typename Adapter>
size_t FilterColumn(const Column& col, const Adapter& ad, size_t sel_base,
                    std::vector<uint32_t>& sel, BatchScanStats* stats,
                    std::vector<int64_t>& scratch,
                    std::vector<uint8_t>& scratch_nulls) {
  const size_t n = sel.size();
  const size_t er = col.encoded_rows();
  const size_t zsz = col.zone_size();
  const uint8_t* tail_nulls = col.TailNullsData();
  size_t kept = 0;
  size_t k = 0;
  while (k < n) {
    const size_t i0 = sel_base + sel[k];
    if (i0 >= er) {
      // Hot tail: covers the rest of the ascending selection.
      for (; k < n; ++k) {
        const uint32_t off = sel[k];
        const size_t t = sel_base + off - er;
        if (!tail_nulls[t] && ad.Pass(ad.Tail(t))) sel[kept++] = off;
      }
      break;
    }
    const size_t zi = i0 / zsz;
    const size_t zone_begin = zi * zsz;
    const size_t zone_end = zone_begin + zsz;
    size_t k2 = k;
    while (k2 < n && sel_base + sel[k2] < zone_end) ++k2;
    const EncodedZone& z = col.encoded_zone(zi);
    switch (z.encoding) {
      case ZoneEncoding::kPlain:
        if (stats) stats->rows_encoded_eval += k2 - k;
        for (; k < k2; ++k) {
          const uint32_t off = sel[k];
          const size_t zoff = sel_base + off - zone_begin;
          if (!BitmapGet(z.null_bits, zoff) && ad.Pass(ad.Plain(z, zoff))) {
            sel[kept++] = off;
          }
        }
        break;
      case ZoneEncoding::kRle: {
        if (stats) stats->rows_encoded_eval += k2 - k;
        size_t run = 0;
        size_t run_begin = 0;
        int verdict = -1;  // lazily evaluated per run
        for (; k < k2; ++k) {
          const uint32_t off = sel[k];
          const size_t zoff = sel_base + off - zone_begin;
          while (z.run_ends[run] <= zoff) {
            run_begin = z.run_ends[run];
            ++run;
            verdict = -1;
          }
          if (verdict < 0) {
            verdict = !BitmapGet(z.null_bits, run_begin) &&
                              ad.Pass(ad.Run(z, run))
                          ? 1
                          : 0;
          }
          if (verdict) sel[kept++] = off;
        }
        break;
      }
      case ZoneEncoding::kForPacked:
        if constexpr (Adapter::kForDirect) {
          if (stats) stats->rows_encoded_eval += k2 - k;
          for (; k < k2; ++k) {
            const uint32_t off = sel[k];
            const size_t zoff = sel_base + off - zone_begin;
            if (!BitmapGet(z.null_bits, zoff) && ad.Pass(ad.For(z, zoff))) {
              sel[kept++] = off;
            }
          }
        } else {
          // Decode fallback: no direct kernel for this predicate shape on
          // a FOR-packed zone; materialize the zone into scratch and run
          // the generic element loop.
          if (stats) stats->rows_decode_fallback += k2 - k;
          scratch.resize(zsz);
          scratch_nulls.resize(zsz);
          col.DecodeZoneInts(zi, scratch.data(), scratch_nulls.data());
          for (; k < k2; ++k) {
            const uint32_t off = sel[k];
            const size_t zoff = sel_base + off - zone_begin;
            if (!scratch_nulls[zoff] && ad.Pass(ad.Decoded(scratch[zoff]))) {
              sel[kept++] = off;
            }
          }
        }
        break;
    }
  }
  return kept;
}

// True when the op holds for a three-way comparison result `c`
// (c = compare(element, literal)).
bool OpHolds(sql::BinaryOp op, int c) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return c == 0;
    case sql::BinaryOp::kLt:
      return c < 0;
    case sql::BinaryOp::kLtEq:
      return c <= 0;
    case sql::BinaryOp::kGt:
      return c > 0;
    case sql::BinaryOp::kGtEq:
      return c >= 0;
    default:
      return false;
  }
}

}  // namespace

std::optional<BatchPredicate> CompileBatchPredicate(
    const std::vector<ColumnRange>& ranges,
    const std::vector<std::unique_ptr<Column>>& columns) {
  BatchPredicate out;
  for (const ColumnRange& r : ranges) {
    if (r.column >= columns.size()) return std::nullopt;
    const Column& col = *columns[r.column];
    const Value& lit = r.literal;
    if (lit.is_null()) {
      // Value::Compare errors on NULL; the row-at-a-time scan drops every
      // row for such a conjunct.
      out.never_matches = true;
      return out;
    }
    CompiledCompare cc;
    cc.column = r.column;
    cc.op = r.op;
    switch (col.type()) {
      case DataType::kBoolean:
        // Compare admits only boolean-vs-boolean here.
        if (!lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        cc.rep = CompiledCompare::Rep::kInt;
        cc.int_literal = lit.AsBoolean() ? 1 : 0;
        break;
      case DataType::kInteger:
      case DataType::kDate:
      case DataType::kTimestamp: {
        if (lit.is_varchar() || lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        if (col.type() == DataType::kInteger && lit.is_integer()) {
          // Same-kind integers take Value::Compare's exact path.
          cc.rep = CompiledCompare::Rep::kInt;
          cc.int_literal = lit.AsInteger();
        } else {
          // Numeric cross-type comparison goes through double, exactly as
          // Value::Compare does.
          auto d = lit.ToDouble();
          if (!d.ok()) {
            out.never_matches = true;
            return out;
          }
          cc.rep = CompiledCompare::Rep::kIntAsDouble;
          cc.double_literal = *d;
        }
        break;
      }
      case DataType::kDouble: {
        if (lit.is_varchar() || lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        auto d = lit.ToDouble();
        if (!d.ok()) {
          out.never_matches = true;
          return out;
        }
        cc.rep = CompiledCompare::Rep::kDouble;
        cc.double_literal = *d;
        break;
      }
      case DataType::kVarchar: {
        if (!lit.is_varchar()) {
          out.never_matches = true;
          return out;
        }
        if (r.op == sql::BinaryOp::kEq) {
          int64_t code = col.LookupCode(lit.AsVarchar());
          if (code < 0) {
            out.never_matches = true;
            return out;
          }
          cc.rep = CompiledCompare::Rep::kCode;
          cc.code_literal = static_cast<uint32_t>(code);
        } else {
          // Ordering on VARCHAR: evaluate the string comparison once per
          // dictionary entry instead of once per row.
          cc.rep = CompiledCompare::Rep::kCodeTable;
          cc.pass_table.resize(col.DictSize());
          for (uint32_t code = 0; code < cc.pass_table.size(); ++code) {
            int c = col.DictEntry(code).compare(lit.AsVarchar());
            cc.pass_table[code] = OpHolds(r.op, c < 0 ? -1 : (c > 0 ? 1 : 0));
          }
        }
        break;
      }
    }
    out.compares.push_back(std::move(cc));
  }
  // Fuse a lower and an upper bound on the same numeric column (the shape
  // BETWEEN produces) into one range compare so the scan makes a single
  // pass over the data instead of two.
  auto is_lower = [](sql::BinaryOp op) {
    return op == sql::BinaryOp::kGt || op == sql::BinaryOp::kGtEq;
  };
  auto is_upper = [](sql::BinaryOp op) {
    return op == sql::BinaryOp::kLt || op == sql::BinaryOp::kLtEq;
  };
  auto numeric = [](CompiledCompare::Rep rep) {
    return rep == CompiledCompare::Rep::kInt ||
           rep == CompiledCompare::Rep::kIntAsDouble ||
           rep == CompiledCompare::Rep::kDouble;
  };
  for (size_t i = 0; i < out.compares.size(); ++i) {
    CompiledCompare& a = out.compares[i];
    if (a.has_upper || !numeric(a.rep)) continue;
    if (!is_lower(a.op) && !is_upper(a.op)) continue;
    for (size_t j = i + 1; j < out.compares.size(); ++j) {
      CompiledCompare& b = out.compares[j];
      if (b.has_upper || b.column != a.column || b.rep != a.rep) continue;
      const bool a_lower = is_lower(a.op);
      if (a_lower ? !is_upper(b.op) : !is_lower(b.op)) continue;
      if (!a_lower) {
        // Normalize so `op` holds the lower bound.
        std::swap(a.op, b.op);
        std::swap(a.int_literal, b.int_literal);
        std::swap(a.double_literal, b.double_literal);
      }
      a.has_upper = true;
      a.upper_op = b.op;
      a.upper_int = b.int_literal;
      a.upper_double = b.double_literal;
      out.compares.erase(out.compares.begin() + j);
      break;
    }
  }
  return out;
}

void FilterVisibility(const TxnId* createxid, const TxnId* deletexid,
                      size_t range_begin, size_t range_end, size_t sel_base,
                      const TransactionManager::VisibilityChecker& visibility,
                      std::vector<uint32_t>* sel) {
  // Bulk loads leave long runs of identical (createxid, deletexid) pairs;
  // memoizing the previous pair turns the per-row hash-map probes inside
  // IsVisible into a pair of integer compares for those runs. IsVisible is
  // stable for a given pair within one checker (it caches per-xid verdicts),
  // so the memo cannot diverge from a direct call.
  const size_t old_size = sel->size();
  sel->resize(old_size + (range_end - range_begin));
  uint32_t* out = sel->data() + old_size;
  bool have_last = false;
  TxnId last_create = 0;
  TxnId last_delete = 0;
  bool last_visible = false;
  for (size_t i = range_begin; i < range_end; ++i) {
    const TxnId c = createxid[i];
    const TxnId d = deletexid[i];
    if (!have_last || c != last_create || d != last_delete) {
      last_visible = visibility.IsVisible(c, d);
      last_create = c;
      last_delete = d;
      have_last = true;
    }
    *out = static_cast<uint32_t>(i - sel_base);
    out += last_visible ? 1 : 0;
  }
  sel->resize(static_cast<size_t>(out - sel->data()));
}

void ApplyBatchPredicate(const BatchPredicate& predicate,
                         const std::vector<std::unique_ptr<Column>>& columns,
                         size_t sel_base, std::vector<uint32_t>* sel,
                         BatchScanStats* stats) {
  std::vector<int64_t> scratch;
  std::vector<uint8_t> scratch_nulls;
  for (const CompiledCompare& cmp : predicate.compares) {
    if (sel->empty()) return;
    const Column& col = *columns[cmp.column];
    size_t kept = 0;
    switch (cmp.rep) {
      case CompiledCompare::Rep::kInt: {
        IntAdapter ad{col.TailIntsData(),
                      MakeBounds<int64_t>(cmp, cmp.int_literal, cmp.upper_int,
                                          std::numeric_limits<int64_t>::min(),
                                          std::numeric_limits<int64_t>::max())};
        kept = FilterColumn(col, ad, sel_base, *sel, stats, scratch,
                            scratch_nulls);
        break;
      }
      case CompiledCompare::Rep::kIntAsDouble: {
        IntAsDoubleAdapter ad{
            col.TailIntsData(),
            MakeBounds<double>(cmp, cmp.double_literal, cmp.upper_double,
                               -std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity())};
        kept = FilterColumn(col, ad, sel_base, *sel, stats, scratch,
                            scratch_nulls);
        break;
      }
      case CompiledCompare::Rep::kDouble: {
        DoubleAdapter ad{
            col.TailDoublesData(),
            MakeBounds<double>(cmp, cmp.double_literal, cmp.upper_double,
                               -std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity())};
        kept = FilterColumn(col, ad, sel_base, *sel, stats, scratch,
                            scratch_nulls);
        break;
      }
      case CompiledCompare::Rep::kCode: {
        CodeEqAdapter ad{col.TailCodesData(), cmp.code_literal};
        kept = FilterColumn(col, ad, sel_base, *sel, stats, scratch,
                            scratch_nulls);
        break;
      }
      case CompiledCompare::Rep::kCodeTable: {
        CodeTableAdapter ad{col.TailCodesData(), &cmp.pass_table};
        kept = FilterColumn(col, ad, sel_base, *sel, stats, scratch,
                            scratch_nulls);
        break;
      }
    }
    sel->resize(kept);
  }
}

}  // namespace idaa::accel
