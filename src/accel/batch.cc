#include "accel/batch.h"

namespace idaa::accel {

namespace {

// Compact `sel` to the offsets whose element passes `op` against `lit`,
// skipping NULLs. `get(i)` reads the raw value at absolute row i; the
// comparison semantics mirror Value::Compare for the representation the
// caller compiled (see CompileBatchPredicate).
template <typename GetFn, typename T>
size_t FilterCompare(std::vector<uint32_t>& sel, size_t sel_base,
                     const uint8_t* nulls, sql::BinaryOp op, GetFn get,
                     T lit) {
  size_t kept = 0;
  switch (op) {
    case sql::BinaryOp::kEq:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) == lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kLt:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) < lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kLtEq:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) <= lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kGt:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) > lit) sel[kept++] = off;
      }
      break;
    case sql::BinaryOp::kGtEq:
      for (uint32_t off : sel) {
        size_t i = sel_base + off;
        if (!nulls[i] && get(i) >= lit) sel[kept++] = off;
      }
      break;
    default:
      // Non-range operators never reach the batch path
      // (ExtractColumnRanges only emits the five above).
      break;
  }
  return kept;
}

// True when the op holds for a three-way comparison result `c`
// (c = compare(element, literal)).
bool OpHolds(sql::BinaryOp op, int c) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return c == 0;
    case sql::BinaryOp::kLt:
      return c < 0;
    case sql::BinaryOp::kLtEq:
      return c <= 0;
    case sql::BinaryOp::kGt:
      return c > 0;
    case sql::BinaryOp::kGtEq:
      return c >= 0;
    default:
      return false;
  }
}

}  // namespace

std::optional<BatchPredicate> CompileBatchPredicate(
    const std::vector<ColumnRange>& ranges,
    const std::vector<std::unique_ptr<Column>>& columns) {
  BatchPredicate out;
  for (const ColumnRange& r : ranges) {
    if (r.column >= columns.size()) return std::nullopt;
    const Column& col = *columns[r.column];
    const Value& lit = r.literal;
    if (lit.is_null()) {
      // Value::Compare errors on NULL; the row-at-a-time scan drops every
      // row for such a conjunct.
      out.never_matches = true;
      return out;
    }
    CompiledCompare cc;
    cc.column = r.column;
    cc.op = r.op;
    switch (col.type()) {
      case DataType::kBoolean:
        // Compare admits only boolean-vs-boolean here.
        if (!lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        cc.rep = CompiledCompare::Rep::kInt;
        cc.int_literal = lit.AsBoolean() ? 1 : 0;
        break;
      case DataType::kInteger:
      case DataType::kDate:
      case DataType::kTimestamp: {
        if (lit.is_varchar() || lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        if (col.type() == DataType::kInteger && lit.is_integer()) {
          // Same-kind integers take Value::Compare's exact path.
          cc.rep = CompiledCompare::Rep::kInt;
          cc.int_literal = lit.AsInteger();
        } else {
          // Numeric cross-type comparison goes through double, exactly as
          // Value::Compare does.
          auto d = lit.ToDouble();
          if (!d.ok()) {
            out.never_matches = true;
            return out;
          }
          cc.rep = CompiledCompare::Rep::kIntAsDouble;
          cc.double_literal = *d;
        }
        break;
      }
      case DataType::kDouble: {
        if (lit.is_varchar() || lit.is_boolean()) {
          out.never_matches = true;
          return out;
        }
        auto d = lit.ToDouble();
        if (!d.ok()) {
          out.never_matches = true;
          return out;
        }
        cc.rep = CompiledCompare::Rep::kDouble;
        cc.double_literal = *d;
        break;
      }
      case DataType::kVarchar: {
        if (!lit.is_varchar()) {
          out.never_matches = true;
          return out;
        }
        if (r.op == sql::BinaryOp::kEq) {
          int64_t code = col.LookupCode(lit.AsVarchar());
          if (code < 0) {
            out.never_matches = true;
            return out;
          }
          cc.rep = CompiledCompare::Rep::kCode;
          cc.code_literal = static_cast<uint32_t>(code);
        } else {
          // Ordering on VARCHAR: evaluate the string comparison once per
          // dictionary entry instead of once per row.
          cc.rep = CompiledCompare::Rep::kCodeTable;
          cc.pass_table.resize(col.DictSize());
          for (uint32_t code = 0; code < cc.pass_table.size(); ++code) {
            int c = col.DictEntry(code).compare(lit.AsVarchar());
            cc.pass_table[code] = OpHolds(r.op, c < 0 ? -1 : (c > 0 ? 1 : 0));
          }
        }
        break;
      }
    }
    out.compares.push_back(std::move(cc));
  }
  return out;
}

void FilterVisibility(const TxnId* createxid, const TxnId* deletexid,
                      size_t range_begin, size_t range_end, size_t sel_base,
                      const TransactionManager::VisibilityChecker& visibility,
                      std::vector<uint32_t>* sel) {
  for (size_t i = range_begin; i < range_end; ++i) {
    if (visibility.IsVisible(createxid[i], deletexid[i])) {
      sel->push_back(static_cast<uint32_t>(i - sel_base));
    }
  }
}

void ApplyBatchPredicate(const BatchPredicate& predicate,
                         const std::vector<std::unique_ptr<Column>>& columns,
                         size_t sel_base, std::vector<uint32_t>* sel) {
  for (const CompiledCompare& cmp : predicate.compares) {
    if (sel->empty()) return;
    const Column& col = *columns[cmp.column];
    const uint8_t* nulls = col.NullsData();
    size_t kept = 0;
    switch (cmp.rep) {
      case CompiledCompare::Rep::kInt: {
        const int64_t* data = col.IntsData();
        kept = FilterCompare(
            *sel, sel_base, nulls, cmp.op,
            [data](size_t i) { return data[i]; }, cmp.int_literal);
        break;
      }
      case CompiledCompare::Rep::kIntAsDouble: {
        const int64_t* data = col.IntsData();
        kept = FilterCompare(
            *sel, sel_base, nulls, cmp.op,
            [data](size_t i) { return static_cast<double>(data[i]); },
            cmp.double_literal);
        break;
      }
      case CompiledCompare::Rep::kDouble: {
        const double* data = col.DoublesData();
        kept = FilterCompare(
            *sel, sel_base, nulls, cmp.op,
            [data](size_t i) { return data[i]; }, cmp.double_literal);
        break;
      }
      case CompiledCompare::Rep::kCode: {
        const uint32_t* data = col.CodesData();
        for (uint32_t off : *sel) {
          size_t i = sel_base + off;
          if (!nulls[i] && data[i] == cmp.code_literal) (*sel)[kept++] = off;
        }
        break;
      }
      case CompiledCompare::Rep::kCodeTable: {
        const uint32_t* data = col.CodesData();
        const std::vector<uint8_t>& pass = cmp.pass_table;
        for (uint32_t off : *sel) {
          size_t i = sel_base + off;
          if (!nulls[i] && data[i] < pass.size() && pass[data[i]]) {
            (*sel)[kept++] = off;
          }
        }
        break;
      }
    }
    sel->resize(kept);
  }
}

}  // namespace idaa::accel
