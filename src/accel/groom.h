// GroomService: the accelerator's space-reclamation daemon. Old row
// versions (committed deletes below every active snapshot, and rows created
// by aborted transactions) are physically removed and zone maps rebuilt —
// the equivalent of Netezza's GROOM TABLE.

#pragma once

#include <cstdint>

#include "accel/accelerator.h"

namespace idaa::accel {

class GroomService {
 public:
  /// `trigger_versions`: automatic groom fires when a sweep observes at
  /// least this many row versions (checked by MaybeGroom).
  GroomService(Accelerator* accelerator, size_t trigger_versions = 100000)
      : accelerator_(accelerator), trigger_versions_(trigger_versions) {}

  /// Unconditional sweep of all tables.
  GroomStats RunOnce();

  /// Sweep only if total stored versions exceed the trigger threshold.
  /// Returns stats (zeros when skipped).
  GroomStats MaybeGroom();

  /// Totals across the service's lifetime.
  uint64_t total_reclaimed() const { return total_reclaimed_; }
  uint64_t runs() const { return runs_; }

 private:
  Accelerator* accelerator_;
  size_t trigger_versions_;
  uint64_t total_reclaimed_ = 0;
  uint64_t runs_ = 0;
};

}  // namespace idaa::accel
