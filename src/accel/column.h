// Column: typed columnar storage for the accelerator. VARCHAR uses
// dictionary encoding (codes + dictionary), mirroring the compressed column
// format of the Netezza appliance. Numerics live in two regions:
//
//   [0, encoded_rows)        cold zones, compressed per zone (see below)
//   [encoded_rows, size)     uncompressed hot tail, flat arrays
//
// Following the hot/cold split of "Mainlining Databases" (arXiv 2004.14471),
// all writes append to the hot tail; GROOM calls CompactZones() under the
// table's exclusive groom lock to fold full zones of the tail into one of
// three encodings chosen per zone from its stats:
//
//   kPlain     raw values + packed null bitmap (when neither of the
//              compressed forms pays for itself)
//   kRle       run values + exclusive run-end offsets; runs break on value
//              or nullness change, so a run is all-NULL or a single value
//   kForPacked frame-of-reference bit-packing: int-family values and
//              VARCHAR codes stored as (value - base) in `bit_width` bits
//
// Decoding is transparent: every per-element accessor (Get / IsNull /
// RawInt / RawDouble / RawCode) works on both regions, and stored logical
// content is bit-identical to the uncompressed form — a NULL position
// decodes to exactly the 0 / 0.0 / code 0 the flat arrays hold, so even
// callers that read a value without checking IsNull() first see identical
// bytes. Batch kernels that want to exploit the encodings directly (run-at-
// a-time predicates, run-folded aggregation) read the zones via
// encoded_zone() / ColumnCursor instead of decoding.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace idaa::accel {

enum class ZoneEncoding : uint8_t { kPlain = 0, kRle = 1, kForPacked = 2 };

const char* ZoneEncodingName(ZoneEncoding e);

/// Read bit i of a packed bitmap; an empty bitmap means "no bits set"
/// (zones without NULLs don't allocate one).
inline bool BitmapGet(const std::vector<uint64_t>& bits, size_t i) {
  return !bits.empty() && ((bits[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Extract a `width`-bit value at element index `idx` from a bit-packed
/// word array (width in [1, 63]; the array carries one trailing pad word so
/// the straddling read below never runs off the end).
inline uint64_t ExtractPacked(const uint64_t* words, size_t idx,
                              uint32_t width) {
  const size_t bit = idx * width;
  const size_t w = bit >> 6;
  const size_t b = bit & 63;
  uint64_t v = words[w] >> b;
  if (b + width > 64) v |= words[w + 1] << (64 - b);
  return v & ((uint64_t{1} << width) - 1);
}

/// One compressed zone of exactly Column::zone_size() rows.
struct EncodedZone {
  ZoneEncoding encoding = ZoneEncoding::kPlain;
  // Bit i set => row i of the zone is NULL. Empty when the zone has no
  // NULLs (the common case pays zero bytes and zero checks).
  std::vector<uint64_t> null_bits;
  // kPlain: one value per row. kRle: one value per run, parallel to
  // run_ends. The array matching the column type is populated; NULL
  // positions/runs hold 0 so decode is bit-identical to the flat arrays.
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint32_t> codes;
  // kRle only: exclusive zone-relative run ends, ascending, last == rows.
  std::vector<uint32_t> run_ends;
  // kForPacked only: value = for_base + ExtractPacked(packed, i, bit_width).
  // bit_width 0 means every row decodes to for_base (packed stays empty).
  int64_t for_base = 0;
  uint32_t bit_width = 0;
  std::vector<uint64_t> packed;

  size_t ByteSize() const;
};

/// Per-column encoding summary (aggregated per table for EXPLAIN and the
/// compression bench).
struct ColumnEncodingStats {
  size_t zones_plain = 0;
  size_t zones_rle = 0;
  size_t zones_for = 0;
  size_t encoded_rows = 0;
  size_t encoded_bytes = 0;  // actual footprint of the encoded zones
  size_t raw_bytes = 0;      // what the same rows cost as flat arrays

  void Merge(const ColumnEncodingStats& o) {
    zones_plain += o.zones_plain;
    zones_rle += o.zones_rle;
    zones_for += o.zones_for;
    encoded_rows += o.encoded_rows;
    encoded_bytes += o.encoded_bytes;
    raw_bytes += o.raw_bytes;
  }
};

class ColumnCursor;

class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return encoded_rows_ + nulls_.size(); }

  /// Pre-size the backing arrays for `n` total elements (bulk ingest).
  void Reserve(size_t n);

  /// Append a value (must match the column type or be NULL).
  Status Append(const Value& v);

  /// Non-validating fast appends for the columnar bulk-insert path
  /// (ColumnTable::InsertColumnar): the table has already checked the
  /// staged column against the schema, so these skip the per-Value type
  /// dispatch. Stored state is identical to Append() of the equivalent
  /// Value. Appends always extend the uncompressed hot tail.
  void AppendRawNull();
  void AppendRawDouble(double d) {
    nulls_.push_back(0);
    doubles_.push_back(d);
  }
  void AppendRawInt(int64_t v) {
    nulls_.push_back(0);
    ints_.push_back(v);
  }
  void AppendRawVarchar(const std::string& s);

  /// Append element i of `src` (same type), re-interning VARCHAR through
  /// this column's dictionary. Decodes encoded source zones transparently;
  /// used by the GROOM rebuild path, which must observe pre-encoding raw
  /// values.
  void AppendFrom(const Column& src, size_t i);

  /// Materialize element i as a Value.
  Value Get(size_t i) const;

  bool IsNull(size_t i) const {
    return i >= encoded_rows_ ? nulls_[i - encoded_rows_] != 0
                              : EncodedIsNull(i);
  }

  /// Raw numeric view (INTEGER/DATE/TIMESTAMP/BOOLEAN as int64). NULL
  /// positions read as 0 (0.0 / code 0), in both regions.
  int64_t RawInt(size_t i) const {
    return i >= encoded_rows_ ? ints_[i - encoded_rows_] : EncodedInt(i);
  }
  double RawDouble(size_t i) const {
    return i >= encoded_rows_ ? doubles_[i - encoded_rows_] : EncodedDouble(i);
  }
  /// Dictionary code of a VARCHAR element.
  uint32_t RawCode(size_t i) const {
    return i >= encoded_rows_ ? codes_[i - encoded_rows_] : EncodedCode(i);
  }
  const std::string& DictEntry(uint32_t code) const { return dict_[code]; }
  size_t DictSize() const { return dict_.size(); }

  /// Dictionary code for `s`, or -1 if the string never occurs in the
  /// column (lets equality predicates skip the column entirely).
  int64_t LookupCode(const std::string& s) const;

  /// Raw array views of the UNCOMPRESSED HOT TAIL, i.e. rows in
  /// [encoded_rows(), size()); index them with `i - encoded_rows()`.
  /// Valid until the next Append / CompactZones; callers hold the table
  /// lock while reading them. Only the array matching type() is populated.
  const uint8_t* TailNullsData() const { return nulls_.data(); }
  const int64_t* TailIntsData() const { return ints_.data(); }
  const double* TailDoublesData() const { return doubles_.data(); }
  const uint32_t* TailCodesData() const { return codes_.data(); }

  /// Encoded (cold) region. Zones are `zone_size()` rows each and cover
  /// exactly [0, encoded_rows()); zone zi spans
  /// [zi * zone_size(), (zi + 1) * zone_size()).
  size_t encoded_rows() const { return encoded_rows_; }
  size_t zone_size() const { return zone_size_; }
  size_t encoded_zone_count() const { return zones_.size(); }
  const EncodedZone& encoded_zone(size_t zi) const { return zones_[zi]; }

  /// Fold every full `zone_size`-row prefix of the hot tail into encoded
  /// zones (encoding chosen per zone from its stats). Rows past the last
  /// full zone stay uncompressed. Logical content is unchanged. The caller
  /// must hold the owning table's groom + data locks exclusively: raw tail
  /// views and cursors are invalidated. The zone size is fixed by the
  /// first call (it must match the table's zone map granularity).
  void CompactZones(size_t zone_size);

  /// Decode the int-family values (and null flags) of encoded zone `zi`
  /// into caller buffers of zone_size() elements — the decode fallback for
  /// batch kernels without a direct path on this zone's encoding.
  void DecodeZoneInts(size_t zi, int64_t* out, uint8_t* nulls_out) const;

  ColumnEncodingStats EncodingStats() const;

  /// Approximate compressed footprint in bytes.
  size_t ByteSize() const;

 private:
  friend class ColumnCursor;

  bool EncodedIsNull(size_t i) const;
  int64_t EncodedInt(size_t i) const;
  double EncodedDouble(size_t i) const;
  uint32_t EncodedCode(size_t i) const;

  // Encode rows [0, zone_size_) of the hot tail into a new zone and drop
  // them from the tail arrays.
  void EncodeOneZone();

  DataType type_;
  // Hot tail (rows >= encoded_rows_), flat arrays indexed tail-relative.
  std::vector<uint8_t> nulls_;
  // One of the following is populated, by type:
  std::vector<int64_t> ints_;      // INTEGER / DATE / TIMESTAMP / BOOLEAN
  std::vector<double> doubles_;    // DOUBLE
  std::vector<uint32_t> codes_;    // VARCHAR dictionary codes
  std::vector<std::string> dict_;  // VARCHAR dictionary (both regions)
  std::unordered_map<std::string, uint32_t> dict_index_;
  // Cold encoded prefix.
  std::vector<EncodedZone> zones_;
  size_t encoded_rows_ = 0;  // == zones_.size() * zone_size_
  size_t zone_size_ = 0;     // fixed by the first CompactZones call
};

/// Ascending-access reader over one column: amortized O(1) per element on
/// non-decreasing indices (selection vectors are ascending), seeking runs
/// and zones incrementally instead of binary-searching per element.
/// Arbitrary (backward) indices remain correct, just slower. Same validity
/// rules as the raw accessors: hold the table lock; invalidated by
/// CompactZones.
class ColumnCursor {
 public:
  explicit ColumnCursor(const Column& col) : col_(&col) {}

  DataType type() const { return col_->type(); }
  const Column& column() const { return *col_; }

  bool IsNull(size_t i) {
    if (i >= col_->encoded_rows_) return col_->nulls_[i - col_->encoded_rows_];
    Position(i);
    return BitmapGet(zone_->null_bits, i - zone_begin_);
  }
  int64_t Int(size_t i) {
    if (i >= col_->encoded_rows_) return col_->ints_[i - col_->encoded_rows_];
    Position(i);
    return ZoneInt(i - zone_begin_);
  }
  double Double(size_t i) {
    if (i >= col_->encoded_rows_) {
      return col_->doubles_[i - col_->encoded_rows_];
    }
    Position(i);
    return ZoneDouble(i - zone_begin_);
  }
  uint32_t Code(size_t i) {
    if (i >= col_->encoded_rows_) return col_->codes_[i - col_->encoded_rows_];
    Position(i);
    return ZoneCode(i - zone_begin_);
  }
  Value Get(size_t i);

  /// Exclusive end (absolute row index) of the maximal run of identical
  /// (value, nullness) containing i, when the storage knows it (RLE runs);
  /// i + 1 otherwise. Lets aggregate consumers fold whole runs into one
  /// accumulator update.
  size_t RunEnd(size_t i) {
    if (i >= col_->encoded_rows_) return i + 1;
    Position(i);
    if (zone_->encoding != ZoneEncoding::kRle) return i + 1;
    SeekRun(i - zone_begin_);
    return zone_begin_ + zone_->run_ends[run_];
  }

 private:
  void Position(size_t i) {
    if (zone_ == nullptr || i < zone_begin_ || i >= zone_end_) {
      const size_t zi = i / col_->zone_size_;
      zone_ = &col_->zones_[zi];
      zone_begin_ = zi * col_->zone_size_;
      zone_end_ = zone_begin_ + col_->zone_size_;
      run_ = 0;
      run_begin_ = 0;
    }
  }
  void SeekRun(size_t off) {
    if (off < run_begin_) {
      run_ = 0;
      run_begin_ = 0;
    }
    while (zone_->run_ends[run_] <= off) {
      run_begin_ = zone_->run_ends[run_];
      ++run_;
    }
  }
  int64_t ZoneInt(size_t off) {
    switch (zone_->encoding) {
      case ZoneEncoding::kPlain:
        return zone_->ints[off];
      case ZoneEncoding::kRle:
        SeekRun(off);
        return zone_->ints[run_];
      case ZoneEncoding::kForPacked:
        if (zone_->bit_width == 0) return zone_->for_base;
        return zone_->for_base +
               static_cast<int64_t>(
                   ExtractPacked(zone_->packed.data(), off, zone_->bit_width));
    }
    return 0;
  }
  double ZoneDouble(size_t off) {
    if (zone_->encoding == ZoneEncoding::kRle) {
      SeekRun(off);
      return zone_->doubles[run_];
    }
    return zone_->doubles[off];
  }
  uint32_t ZoneCode(size_t off) {
    switch (zone_->encoding) {
      case ZoneEncoding::kPlain:
        return zone_->codes[off];
      case ZoneEncoding::kRle:
        SeekRun(off);
        return zone_->codes[run_];
      case ZoneEncoding::kForPacked:
        if (zone_->bit_width == 0) {
          return static_cast<uint32_t>(zone_->for_base);
        }
        return static_cast<uint32_t>(
            zone_->for_base +
            static_cast<int64_t>(
                ExtractPacked(zone_->packed.data(), off, zone_->bit_width)));
    }
    return 0;
  }

  const Column* col_;
  const EncodedZone* zone_ = nullptr;
  size_t zone_begin_ = 0;
  size_t zone_end_ = 0;
  size_t run_ = 0;
  size_t run_begin_ = 0;  // zone-relative start of run_
};

}  // namespace idaa::accel
