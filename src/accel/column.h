// Column: typed columnar storage for the accelerator. Numerics are stored
// as flat arrays; VARCHAR uses dictionary encoding (codes + dictionary),
// mirroring the compressed column format of the Netezza appliance.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace idaa::accel {

class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return nulls_.size(); }

  /// Pre-size the backing arrays for `n` total elements (bulk ingest).
  void Reserve(size_t n);

  /// Append a value (must match the column type or be NULL).
  Status Append(const Value& v);

  /// Non-validating fast appends for the columnar bulk-insert path
  /// (ColumnTable::InsertColumnar): the table has already checked the
  /// staged column against the schema, so these skip the per-Value type
  /// dispatch. Stored state is identical to Append() of the equivalent
  /// Value.
  void AppendRawNull();
  void AppendRawDouble(double d) {
    nulls_.push_back(0);
    doubles_.push_back(d);
  }
  void AppendRawInt(int64_t v) {
    nulls_.push_back(0);
    ints_.push_back(v);
  }
  void AppendRawVarchar(const std::string& s);

  /// Materialize element i as a Value.
  Value Get(size_t i) const;

  bool IsNull(size_t i) const { return nulls_[i] != 0; }

  /// Raw numeric view (INTEGER/DATE/TIMESTAMP/BOOLEAN as int64).
  int64_t RawInt(size_t i) const { return ints_[i]; }
  double RawDouble(size_t i) const { return doubles_[i]; }
  /// Dictionary code of a VARCHAR element.
  uint32_t RawCode(size_t i) const { return codes_[i]; }
  const std::string& DictEntry(uint32_t code) const { return dict_[code]; }
  size_t DictSize() const { return dict_.size(); }

  /// Dictionary code for `s`, or -1 if the string never occurs in the
  /// column (lets equality predicates skip the column entirely).
  int64_t LookupCode(const std::string& s) const;

  /// Raw array views for the batch engine (valid until the next Append /
  /// reallocation; callers hold the table lock while reading them). Only
  /// the array matching type() is populated.
  const uint8_t* NullsData() const { return nulls_.data(); }
  const int64_t* IntsData() const { return ints_.data(); }
  const double* DoublesData() const { return doubles_.data(); }
  const uint32_t* CodesData() const { return codes_.data(); }

  /// Approximate compressed footprint in bytes.
  size_t ByteSize() const;

 private:
  DataType type_;
  std::vector<uint8_t> nulls_;
  // One of the following is populated, by type:
  std::vector<int64_t> ints_;      // INTEGER / DATE / TIMESTAMP / BOOLEAN
  std::vector<double> doubles_;    // DOUBLE
  std::vector<uint32_t> codes_;    // VARCHAR dictionary codes
  std::vector<std::string> dict_;  // VARCHAR dictionary
  std::unordered_map<std::string, uint32_t> dict_index_;
};

}  // namespace idaa::accel
