// Batch-native hash join: partitioned build over the dimension tables'
// raw column arrays (no Row materialization), morsel-parallel probe that
// consumes the base scan's selection vectors, dictionary-code comparison
// for VARCHAR equi-keys, and sideways information passing (join-key
// min/max + Bloom filters pushed into the probe scan's zone-map pruning).
// The row-path JoinIterator remains the automatic fallback for anything
// this path declines.

#pragma once

#include <optional>

#include "accel/accel_executor.h"

namespace idaa::accel {

/// Execute a multi-table SELECT with the vectorized batch join. Returns
/// nullopt (fallback to the slice/coordinator join) when the plan shape is
/// ineligible: a join key does not probe the base table, key types differ
/// across a key pair, a key is DOUBLE-typed (bit-pattern equality would
/// diverge from SQL equality on -0.0/0.0), or a scan predicate does not
/// convert exactly to batch form. Inner, left-outer and cross joins with
/// residual non-equi conjuncts are handled; results are identical to the
/// row path.
Result<std::optional<ResultSet>> TryBatchJoin(
    const sql::BoundSelect& plan, const AccelTableResolver& resolver,
    TxnId reader, Csn snapshot, const TransactionManager& tm, ThreadPool* pool,
    MetricsRegistry* metrics, TraceContext tc, const BatchOptions& batch);

}  // namespace idaa::accel
