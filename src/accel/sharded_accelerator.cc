#include "accel/sharded_accelerator.h"

#include <algorithm>

#include "accel/morsel_scan.h"
#include "engine/select_runtime.h"

namespace idaa::accel {

namespace {

/// Literal value an AND-conjunction scan predicate pins onto table-local
/// column `col` via equality, or nullptr. Only top-level conjuncts count:
/// under OR/NOT the restriction is not guaranteed.
const Value* EqualityConstant(const sql::BoundExpr* pred, size_t col) {
  if (pred == nullptr || pred->kind != sql::BoundExprKind::kBinary) {
    return nullptr;
  }
  if (pred->binary_op == sql::BinaryOp::kAnd) {
    const Value* v = EqualityConstant(pred->children[0].get(), col);
    if (v != nullptr) return v;
    return EqualityConstant(pred->children[1].get(), col);
  }
  if (pred->binary_op != sql::BinaryOp::kEq || pred->children.size() != 2) {
    return nullptr;
  }
  const sql::BoundExpr* a = pred->children[0].get();
  const sql::BoundExpr* b = pred->children[1].get();
  if (a->kind == sql::BoundExprKind::kColumn && a->index == col &&
      b->kind == sql::BoundExprKind::kLiteral) {
    return &b->literal;
  }
  if (b->kind == sql::BoundExprKind::kColumn && b->index == col &&
      a->kind == sql::BoundExprKind::kLiteral) {
    return &a->literal;
  }
  return nullptr;
}

/// The partition hash is over the *stored* representation; comparison
/// semantics coerce across numeric types (5 = 5.0 matches) but their
/// hashes differ, so pruning is only sound when the literal already has
/// the column's exact type.
bool HashCompatible(const Value& v, DataType type) {
  switch (type) {
    case DataType::kBoolean:
      return v.is_boolean();
    case DataType::kInteger:
      return v.is_integer();
    case DataType::kDouble:
      return v.is_double();
    case DataType::kVarchar:
      return v.is_varchar();
    case DataType::kDate:
      return v.is_date();
    case DataType::kTimestamp:
      return v.is_timestamp();
  }
  return false;
}

}  // namespace

size_t ShardedAccelerator::ShardOfValue(const Value& v, size_t num_shards) {
  // splitmix64 finalizer over Value::Hash: the slice level inside each
  // shard uses the raw hash mod num_slices, so the shard level must remix
  // or whole shards would collapse into single slices.
  uint64_t h = static_cast<uint64_t>(v.Hash());
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<size_t>(h % num_shards);
}

ShardedAccelerator::ShardedAccelerator(const AcceleratorOptions& options,
                                       size_t num_shards,
                                       TransactionManager* tm,
                                       MetricsRegistry* metrics,
                                       std::string name)
    : Accelerator(options, tm, metrics, std::move(name)) {
  if (num_shards == 0) num_shards = 1;
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Accelerator>(
        options, tm, metrics, name_ + "#" + std::to_string(i)));
    apply_epochs_.push_back(std::make_shared<std::atomic<uint64_t>>(0));
  }
}

std::shared_ptr<void> ShardedAccelerator::AcquirePin(bool bump_epochs) const {
  std::unique_lock<std::mutex> lock(gate_mu_);
  gate_cv_.wait(lock, [&] { return !topology_locked_; });
  ++active_pins_;
  std::vector<std::shared_ptr<std::atomic<uint64_t>>> epochs;
  if (bump_epochs) epochs = apply_epochs_;
  return std::shared_ptr<void>(
      static_cast<void*>(nullptr),
      [this, epochs = std::move(epochs)](void*) {
        for (const auto& e : epochs) {
          e->fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> release(gate_mu_);
        --active_pins_;
        gate_cv_.notify_all();
      });
}

Result<std::optional<size_t>> ShardedAccelerator::DistributionOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  auto it = dist_.find(Catalog::NormalizeName(name));
  if (it == dist_.end()) {
    return Status::NotFound("accelerator table not found: " + name);
  }
  return it->second;
}

Result<size_t> ShardedAccelerator::FirstOnlineShard() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->state() == AcceleratorState::kOnline) return i;
  }
  return Status::Unavailable("no Online shard of accelerator " + name_);
}

Status ShardedAccelerator::AllShardsOnline(const char* op) const {
  for (const auto& shard : shards_) {
    AcceleratorState s = shard->state();
    if (s != AcceleratorState::kOnline) {
      return Status::Unavailable(
          std::string(op) + ": shard " + shard->name() + " is " +
          (s == AcceleratorState::kOffline ? "offline"
                                           : "recovering (replaying "
                                             "replication backlog)"));
    }
  }
  return Status::OK();
}

size_t ShardedAccelerator::num_shards() const {
  auto pin = AcquirePin();
  return shards_.size();
}

std::vector<AcceleratorState> ShardedAccelerator::ShardStates() const {
  auto pin = AcquirePin();
  std::vector<AcceleratorState> states;
  states.reserve(shards_.size());
  for (const auto& shard : shards_) states.push_back(shard->state());
  return states;
}

Accelerator& ShardedAccelerator::shard(size_t i) {
  auto pin = AcquirePin();
  return *shards_[i];
}

void ShardedAccelerator::SetShardState(size_t i, AcceleratorState state) {
  auto pin = AcquirePin();
  shards_[i]->SetState(state);
}

AcceleratorState ShardedAccelerator::shard_state(size_t i) const {
  auto pin = AcquirePin();
  return shards_[i]->state();
}

uint64_t ShardedAccelerator::apply_epoch(size_t i) const {
  std::lock_guard<std::mutex> lock(gate_mu_);
  return apply_epochs_[i]->load(std::memory_order_relaxed);
}

uint64_t ShardedAccelerator::topology_epoch() const {
  return topology_epoch_.load(std::memory_order_acquire);
}

void ShardedAccelerator::set_topology_listener(TopologyListener listener) {
  std::lock_guard<std::mutex> lock(policy_mu_);
  topology_listener_ = std::move(listener);
}

void ShardedAccelerator::set_fault_injector(FaultInjector* injector) {
  auto pin = AcquirePin();
  injector_ = injector;
  for (auto& shard : shards_) shard->set_fault_injector(injector);
}

void ShardedAccelerator::SetBatchPathEnabled(bool enabled) {
  auto pin = AcquirePin();
  batch_path_enabled_ = enabled;
  for (auto& shard : shards_) shard->SetBatchPathEnabled(enabled);
}

void ShardedAccelerator::SetEncodingEnabled(bool enabled) {
  auto pin = AcquirePin();
  encoding_enabled_ = enabled;
  options_.enable_encoding = enabled;
  for (auto& shard : shards_) shard->SetEncodingEnabled(enabled);
}

size_t ShardedAccelerator::NumTables() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  return dist_.size();
}

Status ShardedAccelerator::AddTable(const TableInfo& info) {
  auto pin = AcquirePin();
  std::lock_guard<std::mutex> lock(policy_mu_);
  std::string name = Catalog::NormalizeName(info.name);
  if (dist_.count(name)) {
    return Status::AlreadyExists("accelerator table already exists: " + name);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status st = shards_[i]->AddTable(info);
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) {
        (void)shards_[j]->RemoveTable(name);
      }
      return st;
    }
  }
  dist_[name] = info.distribution_column;
  infos_[name] = info;
  return Status::OK();
}

Status ShardedAccelerator::RemoveTable(const std::string& name) {
  auto pin = AcquirePin();
  std::lock_guard<std::mutex> lock(policy_mu_);
  std::string normalized = Catalog::NormalizeName(name);
  if (!dist_.count(normalized)) {
    return Status::NotFound("accelerator table not found: " + normalized);
  }
  for (auto& shard : shards_) (void)shard->RemoveTable(normalized);
  dist_.erase(normalized);
  infos_.erase(normalized);
  return Status::OK();
}

bool ShardedAccelerator::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  return dist_.count(Catalog::NormalizeName(name)) > 0;
}

Result<ColumnTable*> ShardedAccelerator::GetTable(const std::string& name) {
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(name));
  if (dc.has_value()) {
    return Status::NotSupported("table " + Catalog::NormalizeName(name) +
                                " is hash-partitioned across shards of " +
                                name_ + "; it has no single backing storage");
  }
  auto pin = AcquirePin();
  return shards_[0]->GetTable(name);
}

Result<const ColumnTable*> ShardedAccelerator::GetTable(
    const std::string& name) const {
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(name));
  if (dc.has_value()) {
    return Status::NotSupported("table " + Catalog::NormalizeName(name) +
                                " is hash-partitioned across shards of " +
                                name_ + "; it has no single backing storage");
  }
  auto pin = AcquirePin();
  return static_cast<const Accelerator*>(shards_[0].get())->GetTable(name);
}

Status ShardedAccelerator::LoadRows(const std::string& name,
                                    const std::vector<Row>& rows, TxnId txn) {
  IDAA_RETURN_IF_ERROR(CheckReady("LOAD"));
  auto pin = AcquirePin();
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(name));
  if (!dc.has_value()) {
    // Broadcast: every shard appends the full batch under the caller's
    // transaction; a mid-way shard failure aborts the transaction, which
    // makes the partial appends invisible on every copy.
    for (auto& shard : shards_) {
      IDAA_RETURN_IF_ERROR(shard->LoadRows(name, rows, txn));
    }
    return Status::OK();
  }
  const size_t n = shards_.size();
  std::vector<std::vector<Row>> split(n);
  for (const Row& row : rows) {
    if (row.size() <= *dc) {
      return Status::Internal("LOAD " + name +
                              ": row narrower than distribution column");
    }
    split[ShardOfValue(row[*dc], n)].push_back(row);
  }
  for (size_t i = 0; i < n; ++i) {
    if (split[i].empty()) continue;
    IDAA_RETURN_IF_ERROR(shards_[i]->LoadRows(name, split[i], txn));
  }
  return Status::OK();
}

Status ShardedAccelerator::LoadColumnar(const std::string& name,
                                        const ColumnarRows& rows, TxnId txn) {
  IDAA_RETURN_IF_ERROR(CheckReady("LOAD"));
  auto pin = AcquirePin();
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(name));
  if (!dc.has_value()) {
    for (auto& shard : shards_) {
      IDAA_RETURN_IF_ERROR(shard->LoadColumnar(name, rows, txn));
    }
    return Status::OK();
  }
  if (*dc >= rows.columns.size()) {
    return Status::Internal("LOAD " + name +
                            ": columnar batch narrower than distribution "
                            "column");
  }
  const size_t n = shards_.size();
  const ColumnarRows::Col& key = rows.columns[*dc];
  std::vector<size_t> shard_of(rows.num_rows);
  for (size_t r = 0; r < rows.num_rows; ++r) {
    Value v;
    if (key.nulls.empty() || key.nulls[r] == 0) {
      if (!key.ints.empty()) {
        v = Value::Integer(key.ints[r]);
      } else if (!key.doubles.empty()) {
        v = Value::Double(key.doubles[r]);
      } else {
        v = Value::Varchar(key.strings[r]);
      }
    }
    shard_of[r] = ShardOfValue(v, n);
  }
  std::vector<ColumnarRows> parts(n);
  for (ColumnarRows& part : parts) part.columns.resize(rows.columns.size());
  for (size_t r = 0; r < rows.num_rows; ++r) {
    ColumnarRows& part = parts[shard_of[r]];
    ++part.num_rows;
    for (size_t c = 0; c < rows.columns.size(); ++c) {
      const ColumnarRows::Col& src = rows.columns[c];
      ColumnarRows::Col& dst = part.columns[c];
      if (!src.doubles.empty()) dst.doubles.push_back(src.doubles[r]);
      if (!src.ints.empty()) dst.ints.push_back(src.ints[r]);
      if (!src.strings.empty()) dst.strings.push_back(src.strings[r]);
      if (!src.nulls.empty()) dst.nulls.push_back(src.nulls[r]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (parts[i].num_rows == 0) continue;
    IDAA_RETURN_IF_ERROR(shards_[i]->LoadColumnar(name, parts[i], txn));
  }
  return Status::OK();
}

Result<ResultSet> ShardedAccelerator::ExecuteSelect(const sql::BoundSelect& plan,
                                                    TxnId reader, Csn snapshot,
                                                    TraceContext tc) {
  IDAA_RETURN_IF_ERROR(CheckReady("SELECT"));
  auto pin = AcquirePin();
  size_t partitioned_count = 0;
  size_t partitioned_table = 0;
  size_t partitioned_col = 0;
  for (size_t t = 0; t < plan.tables.size(); ++t) {
    IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc,
                          DistributionOf(plan.tables[t].info->name));
    if (dc.has_value()) {
      ++partitioned_count;
      partitioned_table = t;
      partitioned_col = *dc;
    }
  }

  if (partitioned_count == 0) {
    // Every table is broadcast: any Online shard holds the full data.
    // Prefer shard 0, which predates every topology change and therefore
    // has the complete version history.
    IDAA_ASSIGN_OR_RETURN(size_t s, FirstOnlineShard());
    TraceSpan span(tc, "accel.shard_route");
    span.Attr("strategy", "broadcast_delegate");
    span.Attr("shard", static_cast<uint64_t>(s));
    return shards_[s]->ExecuteSelect(plan, reader, snapshot, tc);
  }

  if (partitioned_count == 1) {
    // Shard pruning: an equality on the distribution column confines the
    // partitioned table's matching rows to exactly one shard, so the whole
    // plan runs there against 1/N of the data.
    const sql::BoundTable& pbt = plan.tables[partitioned_table];
    const Value* eq = EqualityConstant(pbt.scan_predicate.get(),
                                       partitioned_col);
    if (eq != nullptr && !eq->is_null() &&
        HashCompatible(*eq, pbt.info->schema.Column(partitioned_col).type)) {
      size_t s = ShardOfValue(*eq, shards_.size());
      if (shards_[s]->state() != AcceleratorState::kOnline) {
        return Status::Unavailable("SELECT: shard " + shards_[s]->name() +
                                   " is not Online");
      }
      TraceSpan span(tc, "accel.shard_route");
      span.Attr("strategy", "shard_pruned");
      span.Attr("shard", static_cast<uint64_t>(s));
      return shards_[s]->ExecuteSelect(plan, reader, snapshot, tc);
    }
  }

  return ScatterGather(plan, reader, snapshot, tc, partitioned_count == 1
                                                       ? partitioned_table
                                                       : plan.tables.size());
}

Result<ResultSet> ShardedAccelerator::ScatterGather(
    const sql::BoundSelect& plan, TxnId reader, Csn snapshot, TraceContext tc,
    size_t partitioned_table) {
  // Scatter requires every shard: a down shard means a hole in the data.
  IDAA_RETURN_IF_ERROR(AllShardsOnline("SELECT"));
  const size_t n = shards_.size();
  TraceSpan span(tc, "accel.shard_scatter");
  span.Attr("shards", static_cast<uint64_t>(n));
  const bool single_partitioned = partitioned_table < plan.tables.size();

  // Partial-aggregate scatter: each shard merges its slice partials in the
  // single-appliance order and ships ONE unfinalized partial; the
  // coordinator merges them in shard order through the same MergeAggPartials
  // used by slice aggregation, so every group's accumulator sees the same
  // merge tree as on one appliance — results are bit-identical. Only valid
  // when the partitioned table is the base table (non-base tables feed the
  // shard-local join hash builds, which need the full copy).
  if (plan.has_aggregation && single_partitioned && partitioned_table == 0) {
    std::vector<Result<std::optional<AggPartial>>> parts;
    parts.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      parts.emplace_back(std::optional<AggPartial>{});
    }
    pool_.ParallelFor(n, [&](size_t i) {
      parts[i] = shards_[i]->ExecuteSelectPartial(plan, reader, snapshot, tc);
    });
    bool all_partial = true;
    for (const auto& p : parts) {
      IDAA_RETURN_IF_ERROR(p.status());
      if (!p->has_value()) {
        all_partial = false;
        break;
      }
    }
    if (all_partial) {
      std::vector<AggPartial> shard_partials;
      shard_partials.reserve(n);
      for (auto& p : parts) shard_partials.push_back(std::move(**p));
      span.Attr("strategy", "partial_aggregate");
      IDAA_ASSIGN_OR_RETURN(std::vector<Row> post,
                            MergeAggPartials(plan, &shard_partials));
      return exec::FinalizeSelect(plan, std::move(post));
    }
  }

  // Concat scatter: with exactly one partitioned table the plan
  // distributes over the union of its partitions (joins against broadcast
  // copies are local), so each shard runs the full local plan and the
  // results concatenate shard-major. Any global operator (aggregation,
  // ORDER BY, LIMIT, DISTINCT) disqualifies plain concatenation.
  if (!plan.has_aggregation && single_partitioned && plan.order_by.empty() &&
      !plan.limit.has_value() && !plan.distinct) {
    std::vector<Result<ResultSet>> locals;
    locals.reserve(n);
    for (size_t i = 0; i < n; ++i) locals.emplace_back(ResultSet());
    pool_.ParallelFor(n, [&](size_t i) {
      locals[i] = shards_[i]->ExecuteSelect(plan, reader, snapshot, tc);
    });
    for (const auto& l : locals) IDAA_RETURN_IF_ERROR(l.status());
    span.Attr("strategy", "concat");
    ResultSet out(locals[0]->schema());
    for (auto& l : locals) {
      for (Row& row : l->mutable_rows()) out.Append(std::move(row));
    }
    return out;
  }

  // Row-gather fallback, correct for every remaining shape (including
  // joins between partitioned tables): partitioned tables are scanned on
  // every shard with the scan predicate pushed down and concatenated
  // shard-major; broadcast tables come from shard 0; the shared
  // coordinator runtime finishes the plan.
  span.Attr("strategy", "row_gather");
  const std::optional<size_t> limit_cap = exec::ScanOutputCap(plan);
  std::vector<std::vector<uint8_t>> projections = ComputeProjections(plan);
  exec::TableSource source = [&](size_t index) -> Result<std::vector<Row>> {
    const sql::BoundTable& bt = plan.tables[index];
    IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc,
                          DistributionOf(bt.info->name));
    if (!dc.has_value()) {
      return shards_[0]->ScanTable(bt.info->name, bt.scan_predicate.get(),
                                   reader, snapshot, &projections[index], tc,
                                   limit_cap);
    }
    std::vector<Row> all;
    for (auto& shard : shards_) {
      IDAA_ASSIGN_OR_RETURN(
          std::vector<Row> rows,
          shard->ScanTable(bt.info->name, bt.scan_predicate.get(), reader,
                           snapshot, &projections[index], tc, limit_cap));
      all.insert(all.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
    }
    return all;
  };
  exec::ExecutorOptions options;
  options.metrics = nullptr;  // shard slice scans account their own rows
  options.apply_scan_predicates = false;
  return exec::ExecuteBoundSelect(plan, source, options);
}

Result<size_t> ShardedAccelerator::ExecuteUpdate(const sql::BoundUpdate& plan,
                                                 TxnId txn, Csn snapshot) {
  IDAA_RETURN_IF_ERROR(CheckReady("UPDATE"));
  auto pin = AcquirePin();
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc,
                        DistributionOf(plan.table->name));
  IDAA_RETURN_IF_ERROR(AllShardsOnline("UPDATE"));
  if (dc.has_value()) {
    // In-place updates must preserve the placement invariant (a row lives
    // on the shard its distribution value hashes to) — the invariant that
    // makes shard pruning and hashed replication routing sound.
    for (const auto& [col, expr] : plan.assignments) {
      if (col == *dc) {
        return Status::SemanticError(
            "cannot update the distribution key of hash-partitioned table " +
            plan.table->name + "; delete and re-insert instead");
      }
    }
    size_t total = 0;
    for (auto& shard : shards_) {
      IDAA_ASSIGN_OR_RETURN(size_t count,
                            shard->ExecuteUpdate(plan, txn, snapshot));
      total += count;
    }
    return total;
  }
  size_t first = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    IDAA_ASSIGN_OR_RETURN(size_t count,
                          shards_[i]->ExecuteUpdate(plan, txn, snapshot));
    if (i == 0) first = count;
  }
  return first;
}

Result<size_t> ShardedAccelerator::ExecuteDelete(const sql::BoundDelete& plan,
                                                 TxnId txn, Csn snapshot) {
  IDAA_RETURN_IF_ERROR(CheckReady("DELETE"));
  auto pin = AcquirePin();
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc,
                        DistributionOf(plan.table->name));
  IDAA_RETURN_IF_ERROR(AllShardsOnline("DELETE"));
  if (dc.has_value()) {
    size_t total = 0;
    for (auto& shard : shards_) {
      IDAA_ASSIGN_OR_RETURN(size_t count,
                            shard->ExecuteDelete(plan, txn, snapshot));
      total += count;
    }
    return total;
  }
  size_t first = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    IDAA_ASSIGN_OR_RETURN(size_t count,
                          shards_[i]->ExecuteDelete(plan, txn, snapshot));
    if (i == 0) first = count;
  }
  return first;
}

GroomStats ShardedAccelerator::GroomAll() {
  auto pin = AcquirePin();
  GroomStats total;
  for (auto& shard : shards_) {
    // Per-shard groom (and per-shard zone compaction): surviving shards
    // keep reclaiming while one is down.
    if (shard->state() == AcceleratorState::kOffline) continue;
    GroomStats stats = shard->GroomAll();
    total.rows_examined += stats.rows_examined;
    total.rows_reclaimed += stats.rows_reclaimed;
    total.zones_compacted += stats.zones_compacted;
  }
  // The shard-level compaction listeners are not wired (shards are
  // internal); fan out one notification for the logical accelerator.
  if ((total.rows_reclaimed > 0 || total.zones_compacted > 0) &&
      compaction_listener_) {
    compaction_listener_(ListTables());
  }
  return total;
}

std::vector<std::string> ShardedAccelerator::ListTables() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  std::vector<std::string> names;
  names.reserve(dist_.size());
  for (const auto& [name, dc] : dist_) names.push_back(name);
  return names;
}

Result<size_t> ShardedAccelerator::TableVersions(
    const std::string& name) const {
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(name));
  auto pin = AcquirePin();
  if (!dc.has_value()) return shards_[0]->TableVersions(name);
  size_t total = 0;
  for (const auto& shard : shards_) {
    IDAA_ASSIGN_OR_RETURN(size_t versions, shard->TableVersions(name));
    total += versions;
  }
  return total;
}

Result<std::vector<Row>> ShardedAccelerator::SnapshotRows(
    const std::string& name, TxnId reader, Csn snapshot) const {
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(name));
  auto pin = AcquirePin();
  if (!dc.has_value()) return shards_[0]->SnapshotRows(name, reader, snapshot);
  std::vector<Row> all;
  for (const auto& shard : shards_) {
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          shard->SnapshotRows(name, reader, snapshot));
    all.insert(all.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  return all;
}

Result<ReplicaRoute> ShardedAccelerator::ReplicaRouteFor(
    const std::string& table) {
  auto pin = AcquirePin(/*bump_epochs=*/true);
  IDAA_ASSIGN_OR_RETURN(std::optional<size_t> dc, DistributionOf(table));
  // Apply lands while Recovering (catch-up is exactly this), but an
  // Offline shard cannot receive its share — the batch must requeue.
  for (const auto& shard : shards_) {
    if (shard->state() == AcceleratorState::kOffline) {
      return Status::Unavailable("APPLY: shard " + shard->name() +
                                 " is offline");
    }
  }
  ReplicaRoute route;
  route.targets.reserve(shards_.size());
  for (auto& shard : shards_) {
    IDAA_ASSIGN_OR_RETURN(ColumnTable * storage, shard->GetTable(table));
    route.targets.push_back(storage);
  }
  if (dc.has_value()) {
    const size_t col = *dc;
    const size_t n = shards_.size();
    route.shard_of = [col, n](const Row& row) {
      return col < row.size() ? ShardOfValue(row[col], n) : 0;
    };
  }
  route.pin = std::move(pin);
  return route;
}

Status ShardedAccelerator::AddShard() {
  // Exclusive topology gate: wait for every in-flight statement and
  // replication route to drain, then block new pins for the duration.
  {
    std::unique_lock<std::mutex> lock(gate_mu_);
    gate_cv_.wait(lock, [&] { return !topology_locked_ && active_pins_ == 0; });
    topology_locked_ = true;
  }

  std::map<std::string, std::optional<size_t>> dist;
  std::map<std::string, TableInfo> infos;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    dist = dist_;
    infos = infos_;
  }

  const size_t n = shards_.size() + 1;
  auto fresh = std::make_unique<Accelerator>(
      options_, tm_, metrics_, name_ + "#" + std::to_string(n - 1));
  fresh->set_fault_injector(injector_);
  fresh->SetBatchPathEnabled(batch_path_enabled_.load());
  fresh->SetEncodingEnabled(encoding_enabled_.load());

  // All data movement happens inside one MVCC transaction: the new
  // placement becomes visible atomically at commit, and any failure
  // aborts — moved-away rows stay visible at the source and copies on the
  // unpublished shard never become visible.
  Status st = Status::OK();
  Transaction* txn = tm_->Begin();
  for (const auto& [name, info] : infos) {
    st = fresh->AddTable(info);
    if (!st.ok()) break;
  }
  // Broadcast tables: full copy from shard 0 (complete version history).
  if (st.ok()) {
    for (const auto& [name, dc] : dist) {
      if (dc.has_value()) continue;
      auto rows = shards_[0]->SnapshotRows(name, txn->id(), txn->snapshot_csn());
      if (!rows.ok()) {
        st = rows.status();
        break;
      }
      auto storage = fresh->GetTable(name);
      if (!storage.ok()) {
        st = storage.status();
        break;
      }
      st = (*storage)->Insert(*rows, txn->id());
      if (!st.ok()) break;
    }
  }
  // Partitioned tables: re-hash every visible row against the grown shard
  // count and move the ones whose home changed.
  if (st.ok()) {
    for (const auto& [name, dc] : dist) {
      if (!dc.has_value()) continue;
      for (size_t s = 0; s + 1 < n && st.ok(); ++s) {
        auto rows =
            shards_[s]->SnapshotRows(name, txn->id(), txn->snapshot_csn());
        if (!rows.ok()) {
          st = rows.status();
          break;
        }
        auto src = shards_[s]->GetTable(name);
        if (!src.ok()) {
          st = src.status();
          break;
        }
        std::vector<std::vector<Row>> moves(n);
        for (Row& row : *rows) {
          size_t dest = ShardOfValue(row[*dc], n);
          if (dest != s) moves[dest].push_back(std::move(row));
        }
        for (size_t dest = 0; dest < n && st.ok(); ++dest) {
          if (moves[dest].empty()) continue;
          auto dst = dest + 1 == n ? fresh->GetTable(name)
                                   : shards_[dest]->GetTable(name);
          if (!dst.ok()) {
            st = dst.status();
            break;
          }
          for (const Row& row : moves[dest]) {
            auto deleted = (*src)->DeleteOneMatching(
                row, txn->id(), txn->snapshot_csn(), *tm_);
            if (!deleted.ok()) {
              st = deleted.status();
              break;
            }
          }
          if (st.ok()) st = (*dst)->Insert(moves[dest], txn->id());
        }
      }
      if (!st.ok()) break;
    }
  }
  if (st.ok()) {
    st = tm_->Commit(txn);
  } else {
    (void)tm_->Abort(txn);
  }
  if (st.ok()) {
    // Publish the grown topology (gate_mu_ orders the growth against pin
    // acquisition for memory visibility).
    std::lock_guard<std::mutex> lock(gate_mu_);
    shards_.push_back(std::move(fresh));
    apply_epochs_.push_back(std::make_shared<std::atomic<uint64_t>>(0));
  }

  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    topology_locked_ = false;
    gate_cv_.notify_all();
  }

  if (st.ok()) {
    topology_epoch_.fetch_add(1, std::memory_order_release);
    TopologyListener listener;
    {
      std::lock_guard<std::mutex> lock(policy_mu_);
      listener = topology_listener_;
    }
    if (listener) {
      std::vector<std::string> tables;
      tables.reserve(dist.size());
      for (const auto& [name, dc] : dist) tables.push_back(name);
      listener(tables);
    }
  }
  return st;
}

}  // namespace idaa::accel
