// Vectorized batch execution for the accelerator: selection-vector views
// over raw column arrays, compiled conjunctive predicates evaluated
// column-at-a-time, and bulk MVCC visibility resolution. Batches never
// materialize per-row Values — data stays in the columnar arrays until the
// surviving tuples are projected (late materialization).

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "accel/column.h"
#include "accel/zone_map.h"
#include "txn/transaction_manager.h"

namespace idaa::accel {

/// Default number of rows a morsel covers (rounded up to a whole number of
/// zones at planning time).
inline constexpr size_t kDefaultMorselSize = 4096;

/// A fixed-size row range of one slice, pulled by scan workers from a
/// shared atomic cursor (morsel-driven scheduling).
struct Morsel {
  size_t slice = 0;
  size_t row_begin = 0;
  size_t row_end = 0;  // exclusive, snapshot at planning time
};

/// A view over the columns of one slice restricted to the rows named by a
/// selection vector. Offsets are relative to `row_begin` so they fit in
/// 32 bits regardless of slice size. Valid only while the producing scan
/// holds the table's data lock.
struct ColumnBatch {
  const std::vector<std::unique_ptr<Column>>* columns = nullptr;
  size_t row_begin = 0;   // absolute row index of offset 0
  size_t row_count = 0;   // rows covered by the morsel
  const uint32_t* sel = nullptr;  // surviving offsets, ascending
  size_t sel_count = 0;

  size_t AbsoluteRow(size_t k) const { return row_begin + sel[k]; }
};

/// One comparison of a compiled predicate, specialized to the physical
/// representation of its column so the inner loop touches raw arrays only.
struct CompiledCompare {
  enum class Rep {
    kInt,        // int64 storage vs int64 literal (exact)
    kIntAsDouble,  // int64 storage vs double literal (Value::Compare rule)
    kDouble,     // double storage vs double literal
    kCode,       // VARCHAR equality on dictionary codes
    kCodeTable,  // VARCHAR ordering via a per-code pass table
  };
  size_t column = 0;
  sql::BinaryOp op = sql::BinaryOp::kEq;
  Rep rep = Rep::kInt;
  int64_t int_literal = 0;
  double double_literal = 0.0;
  uint32_t code_literal = 0;
  // Fused range (e.g. BETWEEN): when has_upper is true, op/int_literal/
  // double_literal hold the lower bound and upper_op/upper_int/upper_double
  // the upper bound; both are applied in a single pass over the column.
  bool has_upper = false;
  sql::BinaryOp upper_op = sql::BinaryOp::kLtEq;
  int64_t upper_int = 0;
  double upper_double = 0.0;
  // kCodeTable: pass_table[code] != 0 iff the dictionary entry satisfies
  // the comparison. Codes minted after compilation (concurrent appends)
  // index past the end and fail, which is correct: their rows postdate the
  // scan snapshot and are filtered by visibility anyway.
  std::vector<uint8_t> pass_table;
};

/// A conjunction of compiled comparisons for one slice. Dictionary codes
/// are slice-local, so a predicate compiled for slice i must not be used
/// on slice j.
struct BatchPredicate {
  std::vector<CompiledCompare> compares;
  // True when some conjunct can never match on this slice (e.g. a VARCHAR
  // equality literal absent from the dictionary, or an incomparable
  // literal type, which Value::Compare-based scans also drop).
  bool never_matches = false;
};

/// Per-worker scan accounting, merged into metrics / trace attributes.
struct BatchScanStats {
  size_t morsels = 0;
  size_t batches = 0;          // non-empty batches handed to the consumer
  size_t rows_scanned = 0;     // rows visited after zone pruning
  size_t rows_skipped_zone_map = 0;
  size_t rows_selected = 0;    // rows surviving visibility + predicate
  // Predicate rows evaluated directly on an encoded zone (run-at-a-time on
  // RLE, packed extraction on FOR, bitmap-null plain) vs. rows that had to
  // decode the zone into scratch first (no direct kernel for that
  // predicate shape × encoding).
  size_t rows_encoded_eval = 0;
  size_t rows_decode_fallback = 0;

  void Merge(const BatchScanStats& o) {
    morsels += o.morsels;
    batches += o.batches;
    rows_scanned += o.rows_scanned;
    rows_skipped_zone_map += o.rows_skipped_zone_map;
    rows_selected += o.rows_selected;
    rows_encoded_eval += o.rows_encoded_eval;
    rows_decode_fallback += o.rows_decode_fallback;
  }
};

/// Compile `ranges` (an exact AND-of-comparisons predicate, see
/// ExtractColumnRanges) against one slice's columns. Returns nullopt when
/// some comparison has no vectorized form (e.g. ordering on VARCHAR with a
/// non-VARCHAR literal is representable as never_matches, but an
/// unsupported column type is not); the caller falls back to the
/// row-at-a-time path. Must be called with the slice's data lock held (it
/// reads the dictionary).
std::optional<BatchPredicate> CompileBatchPredicate(
    const std::vector<ColumnRange>& ranges,
    const std::vector<std::unique_ptr<Column>>& columns);

/// Append to `sel` the offsets (relative to `sel_base`) of rows in
/// [range_begin, range_end) visible under `visibility` — bulk MVCC
/// resolution over the raw createxid/deletexid arrays.
void FilterVisibility(const TxnId* createxid, const TxnId* deletexid,
                      size_t range_begin, size_t range_end, size_t sel_base,
                      const TransactionManager::VisibilityChecker& visibility,
                      std::vector<uint32_t>* sel);

/// Run the compiled conjunction column-at-a-time, compacting `sel` in
/// place after each comparison. NULL operands fail every comparison.
/// Encoded zones are evaluated on their encoded form where a direct kernel
/// exists (see BatchScanStats::rows_encoded_eval), decoding into scratch
/// otherwise; the hot tail runs the flat-array loops. `stats` (optional)
/// accumulates the per-path row counts.
void ApplyBatchPredicate(const BatchPredicate& predicate,
                         const std::vector<std::unique_ptr<Column>>& columns,
                         size_t sel_base, std::vector<uint32_t>* sel,
                         BatchScanStats* stats = nullptr);

/// (null_flag, bits) raw group-key encoding of column element i: doubles
/// contribute their bit pattern, VARCHARs their dictionary code (callers
/// must qualify with the slice id — codes are slice-local), everything
/// else the int64 representation.
inline void RawKeyOf(const Column& col, size_t i, uint64_t* null_flag,
                     uint64_t* bits) {
  if (col.IsNull(i)) {
    *null_flag = 1;
    *bits = 0;
    return;
  }
  *null_flag = 0;
  switch (col.type()) {
    case DataType::kDouble: {
      double d = col.RawDouble(i);
      uint64_t b;
      static_assert(sizeof(b) == sizeof(d));
      std::memcpy(&b, &d, sizeof(b));
      *bits = b;
      break;
    }
    case DataType::kVarchar:
      *bits = col.RawCode(i);
      break;
    default:
      *bits = static_cast<uint64_t>(col.RawInt(i));
  }
}

/// Cursor variant of RawKeyOf for ascending consumers (group-key and join
/// probe loops): identical key encoding, amortized O(1) reads on encoded
/// zones instead of a per-element run search.
inline void RawKeyOf(ColumnCursor& cur, size_t i, uint64_t* null_flag,
                     uint64_t* bits) {
  if (cur.IsNull(i)) {
    *null_flag = 1;
    *bits = 0;
    return;
  }
  *null_flag = 0;
  switch (cur.type()) {
    case DataType::kDouble: {
      double d = cur.Double(i);
      uint64_t b;
      static_assert(sizeof(b) == sizeof(d));
      std::memcpy(&b, &d, sizeof(b));
      *bits = b;
      break;
    }
    case DataType::kVarchar:
      *bits = cur.Code(i);
      break;
    default:
      *bits = static_cast<uint64_t>(cur.Int(i));
  }
}

}  // namespace idaa::accel
