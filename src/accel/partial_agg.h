// Partial aggregation state shared by the accelerator's parallel
// execution paths (slice aggregation, slice join, batch aggregation and
// the batch hash join): each worker accumulates into its own partial and
// the coordinator merges them into post-aggregation rows.

#pragma once

#include <cstdint>
#include <vector>

#include "common/row.h"
#include "common/value.h"
#include "sql/binder.h"
#include "sql/expression_eval.h"

namespace idaa::accel {

/// Hash for raw (word-encoded) group keys: per key column a
/// (null flag, bits) pair, optionally prefixed with a slice qualifier.
struct RawKeyHash {
  size_t operator()(const std::vector<uint64_t>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t v : key) h = h * 1315423911ULL + std::hash<uint64_t>()(v);
    return h;
  }
};

/// Hash for Value-vector group/join keys.
struct ValueKeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) h = h * 1315423911ULL + v.Hash();
    return h;
  }
};

/// Partial aggregation state of one worker (slice, morsel worker, ...).
struct AggPartial {
  std::vector<std::vector<Value>> keys;
  std::vector<std::vector<sql::AggregateAccumulator>> accumulators;
};

/// Merge per-worker partials into ONE unfinalized partial, preserving
/// first-seen group order across `partials` (the deterministic slice /
/// morsel-worker order). Used directly by the sharded scatter path: each
/// shard reduces its slice partials to one partial, the coordinator merges
/// the shard partials in shard order, and only then finalizes — so results
/// are bit-identical to the single-shard merge of the same partials.
/// Does NOT synthesize the empty-input global-aggregation row; that
/// happens at finalization.
Result<AggPartial> MergeAggPartialsRaw(std::vector<AggPartial>* partials);

/// Finalize one merged partial into post-aggregation rows
/// [keys..., finalized aggregates...]. A global aggregation over empty
/// input still yields one row.
Result<std::vector<Row>> FinalizeAggPartial(const sql::BoundSelect& plan,
                                            AggPartial partial);

/// Merge per-worker partial aggregations into post-aggregation rows
/// [keys..., finalized aggregates...]. A global aggregation over empty
/// input still yields one row. Equivalent to
/// FinalizeAggPartial(plan, MergeAggPartialsRaw(partials)).
Result<std::vector<Row>> MergeAggPartials(const sql::BoundSelect& plan,
                                          std::vector<AggPartial>* partials);

}  // namespace idaa::accel
