#include "loader/load_pipeline.h"

#include <algorithm>
#include <charconv>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace idaa::loader {

namespace {

/// One reader-produced unit of work: up to batch_size consecutive records,
/// raw (unparsed text) or typed depending on the source flavor.
struct Chunk {
  uint64_t seq = 0;
  uint64_t first_record = 0;
  bool is_raw = false;
  std::vector<std::string> raw;
  std::vector<Row> rows;

  size_t num_records() const { return is_raw ? raw.size() : rows.size(); }
};

/// Everything the stages share, under one mutex / one condition variable.
struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Chunk> chunks;                // reader -> workers (FIFO)
  std::map<uint64_t, ParsedBatch> parsed;  // workers -> commit (reorder)
  uint64_t next_commit = 0;
  bool reader_done = false;
  size_t active_workers = 0;
  Status error;  // first error wins; all stages drain once set
  size_t peak_chunks = 0;
  size_t peak_parsed = 0;

  void SetError(Status st) {
    std::lock_guard<std::mutex> lk(mu);
    if (error.ok()) error = std::move(st);
    cv.notify_all();
  }
  bool HasError() {
    std::lock_guard<std::mutex> lk(mu);
    return !error.ok();
  }
};

void StageColumnar(const Schema& schema, const Row& row,
                   accel::ColumnarRows* out) {
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    accel::ColumnarRows::Col& col = out->columns[i];
    const Value& v = row[i];
    const bool is_null = v.is_null();
    col.nulls.push_back(is_null ? 1 : 0);
    switch (schema.Column(i).type) {
      case DataType::kInteger:
        col.ints.push_back(is_null ? 0 : v.AsInteger());
        break;
      case DataType::kDouble:
        col.doubles.push_back(is_null ? 0.0 : v.AsDouble());
        break;
      case DataType::kVarchar:
        col.strings.push_back(is_null ? std::string() : v.AsVarchar());
        break;
      default:
        // Caller gates columnar staging on column types; unreachable.
        break;
    }
  }
  ++out->num_rows;
}

/// Stages CSV fields straight into a columnar batch — the fast path for
/// raw sources feeding columnar-capable schemas. Skips the Row/Value
/// boxing of the generic path (fields -> Row -> coerce -> validate ->
/// columnar) but reproduces its semantics exactly: the same records are
/// accepted/rejected with the same error texts, and accepted records
/// stage the same typed values and byte counts, so direct loads stay
/// bit-identical with via-DB2 loads of the same input.
class FieldStager {
 public:
  explicit FieldStager(const Schema& schema) : schema_(schema) {
    nulls_.resize(schema.NumColumns());
    ints_.resize(schema.NumColumns());
    doubles_.resize(schema.NumColumns());
  }

  /// Validate-then-append: the batch is only touched once the whole record
  /// parsed, so a reject never leaves partial column appends behind.
  /// Consumes the VARCHAR field texts on success.
  Status Stage(std::vector<CsvField>& fields, accel::ColumnarRows* out,
               size_t* bytes) {
    if (fields.size() != schema_.NumColumns()) {
      // Same text as QuotedCsvFieldsToRow's arity error.
      return Status::IoError(
          "CSV field count mismatch: got " + std::to_string(fields.size()) +
          ", expected " + std::to_string(schema_.NumColumns()));
    }
    size_t record_bytes = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      const CsvField& f = fields[i];
      const ColumnDef& def = schema_.Column(i);
      if (f.text.empty() && !f.quoted) {
        if (!def.nullable) {
          // Same text as Schema::ValidateRow.
          return Status::ConstraintViolation("NULL in NOT NULL column " +
                                             def.name);
        }
        nulls_[i] = 1;
        record_bytes += 1;
        continue;
      }
      nulls_[i] = 0;
      switch (def.type) {
        case DataType::kInteger: {
          int64_t v = 0;
          auto [ptr, ec] =
              std::from_chars(f.text.data(), f.text.data() + f.text.size(), v);
          if (ec != std::errc() || ptr != f.text.data() + f.text.size()) {
            // Same parse rule and text as Value::CastTo(kInteger).
            return Status::InvalidArgument("cannot cast '" + f.text +
                                           "' to INTEGER");
          }
          ints_[i] = v;
          record_bytes += 8;
          break;
        }
        case DataType::kDouble: {
          bool ok = false;
          double v = 0;
          // Common case first: from_chars handles plain decimal/scientific
          // text without locale machinery, and rounds identically to stod.
          auto [ptr, ec] =
              std::from_chars(f.text.data(), f.text.data() + f.text.size(), v);
          if (ec == std::errc() && ptr == f.text.data() + f.text.size()) {
            ok = true;
          } else {
            // Fall back to the exact CastTo(kDouble) rule for the forms
            // from_chars rejects (leading whitespace/'+', hex floats).
            try {
              size_t pos = 0;
              v = std::stod(f.text, &pos);
              ok = pos == f.text.size();
            } catch (...) {
            }
          }
          if (!ok) {
            // Same parse rule and text as Value::CastTo(kDouble).
            return Status::InvalidArgument("cannot cast '" + f.text +
                                           "' to DOUBLE");
          }
          doubles_[i] = v;
          record_bytes += 8;
          break;
        }
        case DataType::kVarchar:
          record_bytes += f.text.size() + 4;  // Value::ByteSize length prefix
          break;
        default:
          // Callers gate the fast path on ColumnarCapable schemas.
          return Status::Internal("field staging for unsupported type");
      }
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      accel::ColumnarRows::Col& col = out->columns[i];
      const bool is_null = nulls_[i] != 0;
      col.nulls.push_back(nulls_[i]);
      switch (schema_.Column(i).type) {
        case DataType::kInteger:
          col.ints.push_back(is_null ? 0 : ints_[i]);
          break;
        case DataType::kDouble:
          col.doubles.push_back(is_null ? 0.0 : doubles_[i]);
          break;
        default:
          col.strings.push_back(is_null ? std::string()
                                        : std::move(fields[i].text));
          break;
      }
    }
    ++out->num_rows;
    *bytes += record_bytes;
    return Status::OK();
  }

 private:
  const Schema& schema_;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
};

/// Parse/convert/validate one chunk. Pure function of the chunk (plus the
/// source's const ParseRawRecord), so workers run it lock-free.
ParsedBatch ParseChunk(Chunk&& chunk, const RecordSource* source,
                       const Schema& table_schema, bool build_columnar,
                       TraceContext tc) {
  TraceSpan span(tc, "load.parse");
  span.Attr("batch", chunk.seq);

  ParsedBatch batch;
  batch.seq = chunk.seq;
  batch.first_record = chunk.first_record;
  batch.num_records = chunk.num_records();
  batch.use_columnar = build_columnar;
  if (build_columnar) {
    batch.columnar.columns.resize(table_schema.NumColumns());
    for (size_t c = 0; c < table_schema.NumColumns(); ++c) {
      accel::ColumnarRows::Col& col = batch.columnar.columns[c];
      col.nulls.reserve(batch.num_records);
      switch (table_schema.Column(c).type) {
        case DataType::kInteger:
          col.ints.reserve(batch.num_records);
          break;
        case DataType::kDouble:
          col.doubles.reserve(batch.num_records);
          break;
        case DataType::kVarchar:
          col.strings.reserve(batch.num_records);
          break;
        default:
          break;
      }
    }
  } else {
    batch.rows.reserve(batch.num_records);
  }

  auto process = [&](size_t i, Result<Row> parsed, const std::string* raw) {
    Row row;
    Status st;
    if (!parsed.ok()) {
      st = parsed.status();
    } else {
      Result<Row> coerced = CoerceRowToSchema(*parsed, table_schema);
      if (!coerced.ok()) {
        st = coerced.status();
      } else {
        row = std::move(*coerced);
        st = table_schema.ValidateRow(row);
      }
    }
    if (!st.ok()) {
      RejectedRecord reject;
      reject.record_index = chunk.first_record + i;
      reject.error = st.ToString();
      if (raw != nullptr) reject.raw = *raw;
      batch.rejects.push_back(std::move(reject));
      return;
    }
    batch.bytes += RowByteSize(row);
    if (build_columnar) {
      StageColumnar(table_schema, row, &batch.columnar);
    } else {
      batch.rows.push_back(std::move(row));
    }
  };

  if (chunk.is_raw && build_columnar && source->SupportsRawFields()) {
    FieldStager stager(table_schema);
    std::vector<CsvField> fields;
    for (size_t i = 0; i < chunk.raw.size(); ++i) {
      Status st = source->ParseRawFields(chunk.raw[i], &fields);
      if (st.ok()) st = stager.Stage(fields, &batch.columnar, &batch.bytes);
      if (!st.ok()) {
        RejectedRecord reject;
        reject.record_index = chunk.first_record + i;
        reject.error = st.ToString();
        reject.raw = chunk.raw[i];
        batch.rejects.push_back(std::move(reject));
      }
    }
  } else if (chunk.is_raw) {
    for (size_t i = 0; i < chunk.raw.size(); ++i) {
      process(i, source->ParseRawRecord(chunk.raw[i]), &chunk.raw[i]);
    }
  } else {
    for (size_t i = 0; i < chunk.rows.size(); ++i) {
      process(i, std::move(chunk.rows[i]), nullptr);
    }
  }
  span.Attr("rows", batch.use_columnar ? batch.columnar.num_rows
                                       : batch.rows.size());
  if (!batch.rejects.empty()) span.Attr("rejects", batch.rejects.size());
  return batch;
}

}  // namespace

Status RunLoadPipeline(RecordSource* source, const Schema& table_schema,
                       bool build_columnar, const LoadOptions& options,
                       const BatchCommitFn& commit, PipelineStats* stats) {
  const size_t batch_size = options.batch_size == 0 ? 1024 : options.batch_size;
  const size_t queue_depth = std::max<size_t>(1, options.queue_depth);
  const size_t num_workers = std::max<size_t>(1, options.num_workers);

  Shared s;
  s.active_workers = num_workers;

  // One slot per worker plus a dedicated slot for the commit task (submitted
  // first so it can never be starved behind worker tasks).
  ThreadPool pool(num_workers + 1);
  std::vector<std::future<void>> done;
  done.reserve(num_workers + 1);

  done.push_back(pool.Submit([&] {
    while (true) {
      ParsedBatch batch;
      {
        std::unique_lock<std::mutex> lk(s.mu);
        s.cv.wait(lk, [&] {
          return !s.error.ok() || s.parsed.count(s.next_commit) > 0 ||
                 (s.reader_done && s.active_workers == 0 &&
                  s.chunks.empty() && s.parsed.empty());
        });
        if (!s.error.ok()) return;
        auto it = s.parsed.find(s.next_commit);
        if (it == s.parsed.end()) return;  // fully drained
        batch = std::move(it->second);
        s.parsed.erase(it);
        ++s.next_commit;
        s.cv.notify_all();  // admission window moved: wake waiting workers
      }
      Status st = commit(std::move(batch));
      if (!st.ok()) {
        s.SetError(std::move(st));
        return;
      }
    }
  }));

  for (size_t w = 0; w < num_workers; ++w) {
    done.push_back(pool.Submit([&] {
      while (true) {
        Chunk chunk;
        {
          std::unique_lock<std::mutex> lk(s.mu);
          s.cv.wait(lk, [&] {
            return !s.error.ok() || !s.chunks.empty() || s.reader_done;
          });
          if (!s.error.ok() || s.chunks.empty()) break;
          chunk = std::move(s.chunks.front());
          s.chunks.pop_front();
          s.cv.notify_all();  // reader may refill
        }
        ParsedBatch batch = ParseChunk(std::move(chunk), source, table_schema,
                                       build_columnar, options.trace);
        {
          std::unique_lock<std::mutex> lk(s.mu);
          // Reorder-buffer admission: keep at most queue_depth batches
          // ahead of the commit cursor.
          s.cv.wait(lk, [&] {
            return !s.error.ok() ||
                   batch.seq < s.next_commit + queue_depth;
          });
          if (!s.error.ok()) break;
          s.peak_parsed = std::max(s.peak_parsed, s.parsed.size() + 1);
          s.parsed.emplace(batch.seq, std::move(batch));
          s.cv.notify_all();
        }
      }
      std::lock_guard<std::mutex> lk(s.mu);
      --s.active_workers;
      s.cv.notify_all();
    }));
  }

  // Reader stage on the calling thread. Typed sources (e.g. generators with
  // stateful closures) are only ever pulled from here, serially.
  const bool raw = source->SupportsRawRecords();
  uint64_t seq = 0;
  uint64_t ordinal = 0;
  while (true) {
    Chunk chunk;
    chunk.seq = seq;
    chunk.first_record = ordinal;
    chunk.is_raw = raw;
    if (raw) {
      chunk.raw.reserve(batch_size);
    } else {
      chunk.rows.reserve(batch_size);
    }
    bool end = false;
    Status read_status;
    for (size_t i = 0; i < batch_size; ++i) {
      if (raw) {
        Result<std::optional<std::string>> rec = source->NextRawRecord();
        if (!rec.ok()) {
          read_status = rec.status();
          break;
        }
        if (!rec->has_value()) {
          end = true;
          break;
        }
        chunk.raw.push_back(std::move(**rec));
      } else {
        Result<std::optional<Row>> row = source->Next();
        if (!row.ok()) {
          read_status = row.status();
          break;
        }
        if (!row->has_value()) {
          end = true;
          break;
        }
        chunk.rows.push_back(std::move(**row));
      }
    }
    if (!read_status.ok()) {
      s.SetError(std::move(read_status));
      break;
    }
    if (chunk.num_records() > 0) {
      ordinal += chunk.num_records();
      ++seq;
      std::unique_lock<std::mutex> lk(s.mu);
      s.cv.wait(lk, [&] {
        return !s.error.ok() || s.chunks.size() < queue_depth;
      });
      if (!s.error.ok()) break;
      s.peak_chunks = std::max(s.peak_chunks, s.chunks.size() + 1);
      s.chunks.push_back(std::move(chunk));
      s.cv.notify_all();
    }
    if (end) break;
    if (s.HasError()) break;
  }
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.reader_done = true;
    s.cv.notify_all();
  }

  for (std::future<void>& f : done) f.wait();

  if (stats != nullptr) {
    stats->peak_queued_batches = std::max(s.peak_chunks, s.peak_parsed);
    stats->records_read = ordinal;
  }
  return s.error;
}

}  // namespace idaa::loader
