// The loader's parallel pipeline machinery: a reader stage (caller thread)
// splits the source into record chunks, N pool workers parse/convert/
// validate them into typed or columnar batches, and a single commit task
// consumes the batches strictly in input order. Both hand-off queues are
// bounded by LoadOptions::queue_depth, so the pipeline holds O(queue depth)
// batches in memory regardless of input size and the reader backpressures
// against a slow commit stage.
//
// Ordering & determinism contract: chunk boundaries are fixed by record
// count alone (records that later get rejected still occupy their slot), a
// worker's output depends only on its chunk, and the commit callback runs
// on one thread in strictly ascending `seq`. Loaded table state is
// therefore bit-identical for any worker count >= 1.
//
// Deadlock freedom: the chunk queue is FIFO, so the worker holding the
// lowest outstanding seq was admitted before any higher seq and the commit
// stage can always make progress; the reorder-buffer admission rule
// (seq < next_commit + queue_depth) can only delay workers holding
// higher seqs.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "accel/column_table.h"
#include "loader/loader.h"
#include "loader/record_source.h"

namespace idaa::loader {

/// Worker output: one input-order batch ready for the commit stage.
/// Exactly one of `rows` / `columnar` is populated (per `use_columnar`);
/// records that failed parse/convert/validation are diverted to `rejects`
/// instead and do not appear in the payload.
struct ParsedBatch {
  uint64_t seq = 0;           ///< 0-based batch ordinal in input order
  uint64_t first_record = 0;  ///< stream ordinal of the chunk's first record
  size_t num_records = 0;     ///< accepted + rejected
  bool use_columnar = false;
  std::vector<Row> rows;
  accel::ColumnarRows columnar;
  size_t bytes = 0;  ///< payload bytes of the accepted rows
  std::vector<RejectedRecord> rejects;  ///< in record order within the chunk
};

/// Pipeline-level accounting surfaced into the LoadReport.
struct PipelineStats {
  /// High-water mark across the bounded queues (chunk queue and reorder
  /// buffer, each bounded by queue_depth) — the backpressure proof.
  size_t peak_queued_batches = 0;
  uint64_t records_read = 0;
};

/// Applies one batch. Invoked from the single commit thread, strictly in
/// ascending seq order with no gaps. A non-OK return aborts the pipeline
/// (all stages drain and RunLoadPipeline returns that status).
using BatchCommitFn = std::function<Status(ParsedBatch&&)>;

/// Run the full pipeline over `source` with options.num_workers parse
/// workers (must be >= 1). The calling thread acts as the reader stage and
/// blocks until the load finishes or fails. `table_schema` is the target
/// table's schema (rows are coerced and validated against it, not the
/// source schema); `build_columnar` selects columnar staging (caller
/// guarantees every column type is columnar-capable).
Status RunLoadPipeline(RecordSource* source, const Schema& table_schema,
                       bool build_columnar, const LoadOptions& options,
                       const BatchCommitFn& commit, PipelineStats* stats);

}  // namespace idaa::loader
