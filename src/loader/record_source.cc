#include "loader/record_source.h"

#include <fstream>

namespace idaa::loader {

Result<std::optional<Row>> CsvStringSource::Next() {
  std::string line;
  while (std::getline(stream_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    IDAA_ASSIGN_OR_RETURN(auto fields, ParseCsvLine(line, delim_));
    IDAA_ASSIGN_OR_RETURN(Row row, CsvFieldsToRow(fields, schema_));
    return std::optional<Row>(std::move(row));
  }
  return std::optional<Row>();
}

Result<std::optional<Row>> CsvFileSource::Next() {
  if (!opened_) {
    std::ifstream file(path_);
    if (!file) {
      return Status::IoError("cannot open file: " + path_);
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    stream_ = std::make_unique<std::istringstream>(buffer.str());
    opened_ = true;
  }
  std::string line;
  while (std::getline(*stream_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    IDAA_ASSIGN_OR_RETURN(auto fields, ParseCsvLine(line, delim_));
    IDAA_ASSIGN_OR_RETURN(Row row, CsvFieldsToRow(fields, schema_));
    return std::optional<Row>(std::move(row));
  }
  return std::optional<Row>();
}

Result<std::optional<Row>> GeneratorSource::Next() {
  if (produced_ >= count_) return std::optional<Row>();
  Row row = fn_(produced_++);
  IDAA_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, schema_));
  return std::optional<Row>(std::move(coerced));
}

}  // namespace idaa::loader
