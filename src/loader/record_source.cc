#include "loader/record_source.h"

#include <fstream>
#include <sstream>

namespace idaa::loader {

Result<std::optional<Row>> CsvStringSource::Next() {
  IDAA_ASSIGN_OR_RETURN(std::optional<std::string> record, scanner_.Next());
  if (!record.has_value()) return std::optional<Row>();
  IDAA_ASSIGN_OR_RETURN(Row row, ParseRawRecord(*record));
  return std::optional<Row>(std::move(row));
}

Result<Row> CsvStringSource::ParseRawRecord(const std::string& record) const {
  IDAA_ASSIGN_OR_RETURN(auto fields, ParseCsvFields(record, delim_));
  return QuotedCsvFieldsToRow(fields, schema_);
}

Status CsvFileSource::EnsureOpen() {
  if (opened_) return Status::OK();
  std::ifstream file(path_);
  if (!file) {
    return Status::IoError("cannot open file: " + path_);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  body_ = buffer.str();
  scanner_ = std::make_unique<CsvRecordScanner>(&body_, delim_);
  opened_ = true;
  return Status::OK();
}

Result<std::optional<std::string>> CsvFileSource::NextRawRecord() {
  IDAA_RETURN_IF_ERROR(EnsureOpen());
  return scanner_->Next();
}

Result<std::optional<Row>> CsvFileSource::Next() {
  IDAA_ASSIGN_OR_RETURN(std::optional<std::string> record, NextRawRecord());
  if (!record.has_value()) return std::optional<Row>();
  IDAA_ASSIGN_OR_RETURN(Row row, ParseRawRecord(*record));
  return std::optional<Row>(std::move(row));
}

Result<Row> CsvFileSource::ParseRawRecord(const std::string& record) const {
  IDAA_ASSIGN_OR_RETURN(auto fields, ParseCsvFields(record, delim_));
  return QuotedCsvFieldsToRow(fields, schema_);
}

Result<std::optional<Row>> GeneratorSource::Next() {
  if (produced_ >= count_) return std::optional<Row>();
  Row row = fn_(produced_++);
  IDAA_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, schema_));
  return std::optional<Row>(std::move(coerced));
}

}  // namespace idaa::loader
