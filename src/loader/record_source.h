// RecordSource: pluggable producers for the IDAA Loader. The paper: "The
// data to be loaded can originate from a variety of sources, even from
// applications not running on System z" — e.g. CSV extracts or streaming
// feeds such as social-media data.
//
// Sources come in two flavors for the parallel load pipeline:
//   * raw-record sources (CSV text/file) — the reader stage splits the
//     input into cheap unparsed records and N workers parse them in
//     parallel via ParseRawRecord (const + thread-safe);
//   * typed sources (generator) — rows are produced serially by Next()
//     and workers only validate/stage them.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/csv.h"
#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"

namespace idaa::loader {

/// Pull-based record stream.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual const Schema& schema() const = 0;

  /// Next typed row, or nullopt at end of stream.
  virtual Result<std::optional<Row>> Next() = 0;

  /// Whether this source can hand out unparsed records (NextRawRecord /
  /// ParseRawRecord), letting the load pipeline parallelize parsing.
  virtual bool SupportsRawRecords() const { return false; }

  /// Next raw (unparsed) record, or nullopt at end of stream. Called from
  /// the single reader stage only.
  virtual Result<std::optional<std::string>> NextRawRecord() {
    return Status::Internal("source does not support raw records");
  }

  /// Parse one raw record into a typed row against schema(). MUST be
  /// const and thread-safe: the pipeline calls it from parallel workers.
  virtual Result<Row> ParseRawRecord(const std::string& record) const {
    (void)record;
    return Status::Internal("source does not support raw records");
  }

  /// Whether ParseRawFields is available: records split into quote-aware
  /// CSV fields, letting the pipeline stage columnar batches straight from
  /// field text without boxing a typed Row per record.
  virtual bool SupportsRawFields() const { return false; }

  /// Split one raw record into CSV fields, reusing `*out`'s capacity.
  /// MUST be const and thread-safe, like ParseRawRecord.
  virtual Status ParseRawFields(const std::string& record,
                                std::vector<CsvField>* out) const {
    (void)record;
    (void)out;
    return Status::Internal("source does not support raw fields");
  }
};

/// CSV records (no header) parsed against a schema. Quoted fields may
/// contain the delimiter, doubled quotes and embedded newlines.
class CsvStringSource : public RecordSource {
 public:
  CsvStringSource(std::string body, Schema schema, char delim = ',')
      : schema_(std::move(schema)),
        body_(std::move(body)),
        delim_(delim),
        scanner_(&body_, delim) {}

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Row>> Next() override;

  bool SupportsRawRecords() const override { return true; }
  Result<std::optional<std::string>> NextRawRecord() override {
    return scanner_.Next();
  }
  Result<Row> ParseRawRecord(const std::string& record) const override;

  bool SupportsRawFields() const override { return true; }
  Status ParseRawFields(const std::string& record,
                        std::vector<CsvField>* out) const override {
    return ParseCsvFieldsInto(record, delim_, out);
  }

 private:
  Schema schema_;
  std::string body_;
  char delim_;
  CsvRecordScanner scanner_;
};

/// CSV file on disk (no header).
class CsvFileSource : public RecordSource {
 public:
  /// Opens lazily on first read.
  CsvFileSource(std::string path, Schema schema, char delim = ',')
      : schema_(std::move(schema)), path_(std::move(path)), delim_(delim) {}

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Row>> Next() override;

  bool SupportsRawRecords() const override { return true; }
  Result<std::optional<std::string>> NextRawRecord() override;
  Result<Row> ParseRawRecord(const std::string& record) const override;

  bool SupportsRawFields() const override { return true; }
  Status ParseRawFields(const std::string& record,
                        std::vector<CsvField>* out) const override {
    return ParseCsvFieldsInto(record, delim_, out);
  }

 private:
  Status EnsureOpen();

  Schema schema_;
  std::string path_;
  char delim_;
  std::string body_;  // whole-file buffer
  std::unique_ptr<CsvRecordScanner> scanner_;
  bool opened_ = false;
};

/// Synthetic generator: fn(i) for i in [0, count). Typed-only: fn may
/// capture stateful helpers (e.g. an Rng), so rows are produced serially.
class GeneratorSource : public RecordSource {
 public:
  GeneratorSource(Schema schema, size_t count, std::function<Row(size_t)> fn)
      : schema_(std::move(schema)), count_(count), fn_(std::move(fn)) {}

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Row>> Next() override;

 private:
  Schema schema_;
  size_t count_;
  std::function<Row(size_t)> fn_;
  size_t produced_ = 0;
};

}  // namespace idaa::loader
