// RecordSource: pluggable producers for the IDAA Loader. The paper: "The
// data to be loaded can originate from a variety of sources, even from
// applications not running on System z" — e.g. CSV extracts or streaming
// feeds such as social-media data.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "common/csv.h"
#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"

namespace idaa::loader {

/// Pull-based record stream.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual const Schema& schema() const = 0;
  /// Next row, or nullopt at end of stream.
  virtual Result<std::optional<Row>> Next() = 0;
};

/// CSV text (no header) parsed against a schema.
class CsvStringSource : public RecordSource {
 public:
  CsvStringSource(std::string body, Schema schema, char delim = ',')
      : schema_(std::move(schema)), stream_(std::move(body)), delim_(delim) {}

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Row>> Next() override;

 private:
  Schema schema_;
  std::istringstream stream_;
  char delim_;
};

/// CSV file on disk (no header).
class CsvFileSource : public RecordSource {
 public:
  /// Opens lazily on first Next().
  CsvFileSource(std::string path, Schema schema, char delim = ',')
      : schema_(std::move(schema)), path_(std::move(path)), delim_(delim) {}

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Row>> Next() override;

 private:
  Schema schema_;
  std::string path_;
  char delim_;
  std::unique_ptr<std::istringstream> stream_;  // whole-file buffer
  bool opened_ = false;
};

/// Synthetic generator: fn(i) for i in [0, count).
class GeneratorSource : public RecordSource {
 public:
  GeneratorSource(Schema schema, size_t count, std::function<Row(size_t)> fn)
      : schema_(std::move(schema)), count_(count), fn_(std::move(fn)) {}

  const Schema& schema() const override { return schema_; }
  Result<std::optional<Row>> Next() override;

 private:
  Schema schema_;
  size_t count_;
  std::function<Row(size_t)> fn_;
  size_t produced_ = 0;
};

}  // namespace idaa::loader
