// IdaaLoader: the standalone high-speed ingestion tool ("IDAA Loader").
// Loads external data in batches either into regular DB2 tables (which then
// re-replicate to the accelerator) or *directly* into accelerator tables —
// including AOTs — bypassing DB2 data movement entirely.

#pragma once

#include <functional>

#include "accel/accelerator.h"
#include "catalog/catalog.h"
#include "common/metrics.h"
#include "db2/db2_engine.h"
#include "federation/transfer_channel.h"
#include "loader/record_source.h"
#include "txn/transaction_manager.h"

namespace idaa::loader {

/// Resolves the accelerator hosting a table's accelerator-side data.
using AcceleratorResolver =
    std::function<Result<accel::Accelerator*>(const TableInfo&)>;

struct LoadOptions {
  size_t batch_size = 1024;
  /// Commit after every batch (the loader's normal restartable mode);
  /// false = one transaction for the whole load.
  bool commit_per_batch = true;
};

struct LoadReport {
  size_t rows_loaded = 0;
  size_t batches = 0;
  size_t bytes = 0;
};

class IdaaLoader {
 public:
  IdaaLoader(Catalog* catalog, db2::Db2Engine* db2,
             AcceleratorResolver resolver,
             federation::TransferChannel* channel, TransactionManager* tm,
             MetricsRegistry* metrics)
      : catalog_(catalog), db2_(db2), resolver_(std::move(resolver)),
        channel_(channel), tm_(tm), metrics_(metrics) {}

  /// Load the full source into `table_name`. AOTs and accelerated tables
  /// take the direct-to-accelerator path; DB2-only tables go through the
  /// DB2 engine. Loading into an *accelerated* table writes DB2 first and
  /// lets replication carry the rows over (the expensive legacy path the
  /// benchmarks compare against).
  Result<LoadReport> Load(const std::string& table_name, RecordSource* source,
                          const LoadOptions& options = {});

 private:
  Result<size_t> LoadBatch(const TableInfo& info, std::vector<Row> batch,
                           Transaction* txn);

  Catalog* catalog_;
  db2::Db2Engine* db2_;
  AcceleratorResolver resolver_;
  federation::TransferChannel* channel_;
  TransactionManager* tm_;
  MetricsRegistry* metrics_;
};

}  // namespace idaa::loader
