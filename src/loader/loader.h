// IdaaLoader: the standalone high-speed ingestion tool ("IDAA Loader").
// Loads external data in batches either into regular DB2 tables (which then
// re-replicate to the accelerator) or *directly* into accelerator tables —
// including AOTs — bypassing DB2 data movement entirely.
//
// The load runs as a multi-stage parallel pipeline under bounded queues:
//
//   reader (caller thread)          1 thread   splits the source into
//                                              record chunks of batch_size
//   parse/convert workers           N threads  raw record -> typed row ->
//                                              columnar staging, per-field
//                                              validation, reject capture
//   commit                          1 thread   applies batches strictly in
//                                              input order: columnar wire +
//                                              ColumnTable::InsertColumnar
//                                              for direct loads, Db2Engine
//                                              (+ replication) otherwise
//
// Both queues are bounded by queue_depth, so memory stays O(queue depth)
// regardless of input size. num_workers = 0 selects the legacy serial
// row-at-a-time path (the benchmarks' baseline).

#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"
#include "db2/db2_engine.h"
#include "federation/transfer_channel.h"
#include "loader/record_source.h"
#include "txn/transaction_manager.h"

namespace idaa::loader {

/// Resolves the accelerator hosting a table's accelerator-side data.
using AcceleratorResolver =
    std::function<Result<accel::Accelerator*>(const TableInfo&)>;

/// max_rejects value meaning "never abort on bad records".
inline constexpr size_t kUnlimitedRejects = static_cast<size_t>(-1);

/// Live commit progress, updated by the commit stage after every durable
/// commit. Pass one via LoadOptions::progress to observe how far a load
/// got even when it ultimately fails — `batches_committed` is the resume
/// token for the re-run. Must outlive the Load() call.
struct LoadProgress {
  std::atomic<uint64_t> batches_committed{0};
  std::atomic<uint64_t> rows_committed{0};
};

struct LoadOptions {
  /// Records per batch (chunking is by record count, including records
  /// that end up rejected, so batch boundaries are stable across re-runs).
  size_t batch_size = 1024;
  /// Commit after every batch (the loader's normal restartable mode);
  /// false = one all-or-nothing transaction for the whole load.
  bool commit_per_batch = true;
  /// Parse/convert workers. 0 = legacy serial row-at-a-time path.
  size_t num_workers = 4;
  /// Bound on queued record chunks and on parsed batches awaiting commit.
  size_t queue_depth = 8;
  /// Bad-record budget: malformed records (parse/convert/constraint
  /// errors) are diverted to the reject report instead of aborting, until
  /// more than max_rejects have accumulated. 0 = abort on the first bad
  /// record; kUnlimitedRejects = never abort.
  size_t max_rejects = 0;
  /// When non-empty, every rejected raw record is appended to this file as
  /// "<record-index>,<error>,<raw record>" CSV lines.
  std::string reject_file;
  /// Number of batches a previous (failed) restartable run already
  /// committed: the commit stage skips them, so the re-run loads each
  /// record exactly once. Take it from LoadProgress::batches_committed or
  /// LoadReport::resume_token. Only valid with commit_per_batch.
  size_t resume_token = 0;
  /// Backoff schedule for retryable failures on channel / accelerator
  /// crossings (fault-injector integration; terminal errors still abort).
  RetryPolicy retry;
  /// Optional live progress sink (see LoadProgress).
  LoadProgress* progress = nullptr;
  /// When set, the load records trace spans (read/parse/commit stages,
  /// per-batch applies, retries) under this context.
  TraceContext trace;
};

/// One diverted bad record.
struct RejectedRecord {
  uint64_t record_index = 0;  ///< 0-based ordinal in the input stream
  std::string error;
  std::string raw;  ///< raw record text (empty for typed sources)
};

struct LoadReport {
  size_t rows_loaded = 0;
  size_t batches = 0;  ///< batches applied by this run
  size_t bytes = 0;
  size_t rows_rejected = 0;
  size_t batches_skipped = 0;  ///< already committed before resume_token
  /// Resume token after this run: total batches durably committed in
  /// input order (pass as LoadOptions::resume_token to continue).
  size_t resume_token = 0;
  /// High-water mark of batches queued in the pipeline (backpressure
  /// bound: never exceeds LoadOptions::queue_depth).
  size_t peak_queued_batches = 0;
  size_t workers = 0;
  uint64_t retries = 0;
  uint64_t duration_us = 0;
  bool direct = false;    ///< direct-to-accelerator vs via-DB2
  bool columnar = false;  ///< committed via the columnar fast path
  /// First few rejected records (full reject stream goes to reject_file).
  std::vector<RejectedRecord> reject_samples;

  double RowsPerSec() const {
    return duration_us > 0 ? rows_loaded / (duration_us / 1e6) : 0.0;
  }

  /// EXPLAIN-style load report: mode, stage configuration, throughput,
  /// queue high-water mark, reject and retry accounting.
  std::string Render() const;
};

class IdaaLoader {
 public:
  IdaaLoader(Catalog* catalog, db2::Db2Engine* db2,
             AcceleratorResolver resolver,
             federation::TransferChannel* channel, TransactionManager* tm,
             MetricsRegistry* metrics)
      : catalog_(catalog), db2_(db2), resolver_(std::move(resolver)),
        channel_(channel), tm_(tm), metrics_(metrics) {}

  /// Load the full source into `table_name`. AOTs take the direct
  /// to-accelerator path; DB2-resident tables go through the DB2 engine
  /// (accelerated tables additionally re-replicate — the expensive legacy
  /// route the benchmarks compare against). Thread-safe: concurrent loads
  /// into distinct tables run independent pipelines.
  Result<LoadReport> Load(const std::string& table_name, RecordSource* source,
                          const LoadOptions& options = {});

 private:
  Result<LoadReport> LoadSerial(const TableInfo& info, RecordSource* source,
                                const LoadOptions& options);
  Result<LoadReport> LoadPipelined(const TableInfo& info, RecordSource* source,
                                   const LoadOptions& options);
  Result<size_t> LoadBatch(const TableInfo& info, std::vector<Row> batch,
                           Transaction* txn);

  Catalog* catalog_;
  db2::Db2Engine* db2_;
  AcceleratorResolver resolver_;
  federation::TransferChannel* channel_;
  TransactionManager* tm_;
  MetricsRegistry* metrics_;
};

}  // namespace idaa::loader
