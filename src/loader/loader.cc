#include "loader/loader.h"

namespace idaa::loader {

Result<size_t> IdaaLoader::LoadBatch(const TableInfo& info,
                                     std::vector<Row> batch,
                                     Transaction* txn) {
  if (batch.empty()) return size_t{0};
  if (info.kind == TableKind::kAcceleratorOnly) {
    // Direct ingestion: external source -> accelerator, no DB2 involvement.
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * accelerator, resolver_(info));
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> shipped,
                          channel_->SendRowsToAccelerator(batch));
    IDAA_RETURN_IF_ERROR(
        accelerator->LoadRows(info.name, shipped, txn->id()));
    return shipped.size();
  }
  // Regular or accelerated DB2 table: DB2 is the system of record; change
  // capture re-replicates to the accelerator when the table is accelerated.
  return db2_->InsertRows(info, std::move(batch), txn);
}

Result<LoadReport> IdaaLoader::Load(const std::string& table_name,
                                    RecordSource* source,
                                    const LoadOptions& options) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(table_name));
  LoadReport report;
  size_t batch_size = options.batch_size == 0 ? 1024 : options.batch_size;

  Transaction* txn = tm_->Begin();
  std::vector<Row> batch;
  batch.reserve(batch_size);

  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    for (const Row& row : batch) report.bytes += RowByteSize(row);
    auto loaded = LoadBatch(*info, std::move(batch), txn);
    batch.clear();
    if (!loaded.ok()) {
      (void)tm_->Abort(txn);
      db2_->lock_manager().ReleaseAll(txn->id());
      return loaded.status();
    }
    report.rows_loaded += *loaded;
    ++report.batches;
    metrics_->Add(metric::kLoaderRowsIngested, *loaded);
    if (options.commit_per_batch) {
      IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
      db2_->lock_manager().ReleaseAll(txn->id());
      txn = tm_->Begin();
    }
    return Status::OK();
  };

  while (true) {
    auto next = source->Next();
    if (!next.ok()) {
      (void)tm_->Abort(txn);
      db2_->lock_manager().ReleaseAll(txn->id());
      return next.status();
    }
    if (!next->has_value()) break;
    batch.push_back(std::move(**next));
    if (batch.size() >= batch_size) {
      IDAA_RETURN_IF_ERROR(flush());
    }
  }
  IDAA_RETURN_IF_ERROR(flush());
  IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
  db2_->lock_manager().ReleaseAll(txn->id());
  metrics_->Add(metric::kLoaderBytesIngested, report.bytes);
  return report;
}

}  // namespace idaa::loader
