#include "loader/loader.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "loader/load_pipeline.h"

namespace idaa::loader {

namespace {

constexpr size_t kMaxRejectSamples = 16;

bool ColumnarCapable(const Schema& schema) {
  for (const ColumnDef& col : schema.columns()) {
    if (col.type != DataType::kInteger && col.type != DataType::kDouble &&
        col.type != DataType::kVarchar) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string LoadReport::Render() const {
  std::ostringstream os;
  os << "LOAD REPORT\n";
  os << "  mode: "
     << (direct ? (columnar ? "direct-to-accelerator (columnar)"
                            : "direct-to-accelerator (row)")
                : "via-DB2")
     << "\n";
  os << "  pipeline: "
     << (workers == 0 ? std::string("serial")
                      : std::to_string(workers) + " workers")
     << "\n";
  os << "  rows: " << rows_loaded << " loaded, " << rows_rejected
     << " rejected, " << bytes << " bytes\n";
  os << "  batches: " << batches << " applied";
  if (batches_skipped > 0) {
    os << ", " << batches_skipped << " skipped (resume)";
  }
  os << ", resume_token=" << resume_token << "\n";
  os << "  peak queued batches: " << peak_queued_batches << "\n";
  os << "  retries: " << retries << "\n";
  os << "  duration: " << duration_us << "us ("
     << static_cast<uint64_t>(RowsPerSec()) << " rows/s)\n";
  for (const RejectedRecord& r : reject_samples) {
    os << "  reject record " << r.record_index << ": " << r.error << "\n";
  }
  return os.str();
}

Result<size_t> IdaaLoader::LoadBatch(const TableInfo& info,
                                     std::vector<Row> batch,
                                     Transaction* txn) {
  if (batch.empty()) return size_t{0};
  if (info.kind == TableKind::kAcceleratorOnly) {
    // Direct ingestion: external source -> accelerator, no DB2 involvement.
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * accelerator, resolver_(info));
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> shipped,
                          channel_->SendRowsToAccelerator(batch));
    IDAA_RETURN_IF_ERROR(
        accelerator->LoadRows(info.name, shipped, txn->id()));
    return shipped.size();
  }
  // Regular or accelerated DB2 table: DB2 is the system of record; change
  // capture re-replicates to the accelerator when the table is accelerated.
  return db2_->InsertRows(info, std::move(batch), txn);
}

// Legacy serial path (num_workers == 0): one thread pulls typed rows and
// applies row batches as it goes. Kept verbatim as the benchmarks'
// baseline; aborts on the first bad record (no reject policy, no resume).
Result<LoadReport> IdaaLoader::LoadSerial(const TableInfo& info,
                                          RecordSource* source,
                                          const LoadOptions& options) {
  LoadReport report;
  report.workers = 0;
  report.direct = info.kind == TableKind::kAcceleratorOnly;
  size_t batch_size = options.batch_size == 0 ? 1024 : options.batch_size;

  Transaction* txn = tm_->Begin();
  std::vector<Row> batch;
  batch.reserve(batch_size);

  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    for (const Row& row : batch) report.bytes += RowByteSize(row);
    auto loaded = LoadBatch(info, std::move(batch), txn);
    batch.clear();
    if (!loaded.ok()) {
      (void)tm_->Abort(txn);
      db2_->lock_manager().ReleaseAll(txn->id());
      return loaded.status();
    }
    report.rows_loaded += *loaded;
    ++report.batches;
    metrics_->Add(metric::kLoaderRowsIngested, *loaded);
    if (options.commit_per_batch) {
      IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
      db2_->lock_manager().ReleaseAll(txn->id());
      metrics_->Increment(metric::kLoaderBatchesCommitted);
      txn = tm_->Begin();
    }
    return Status::OK();
  };

  while (true) {
    auto next = source->Next();
    if (!next.ok()) {
      (void)tm_->Abort(txn);
      db2_->lock_manager().ReleaseAll(txn->id());
      return next.status();
    }
    if (!next->has_value()) break;
    batch.push_back(std::move(**next));
    if (batch.size() >= batch_size) {
      IDAA_RETURN_IF_ERROR(flush());
    }
  }
  IDAA_RETURN_IF_ERROR(flush());
  IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
  db2_->lock_manager().ReleaseAll(txn->id());
  metrics_->Add(metric::kLoaderBytesIngested, report.bytes);
  report.resume_token = options.commit_per_batch ? report.batches : 0;
  return report;
}

Result<LoadReport> IdaaLoader::LoadPipelined(const TableInfo& info,
                                             RecordSource* source,
                                             const LoadOptions& options) {
  LoadReport report;
  report.workers = options.num_workers;
  report.direct = info.kind == TableKind::kAcceleratorOnly;
  report.resume_token = options.resume_token;

  accel::Accelerator* accelerator = nullptr;
  if (report.direct) {
    IDAA_ASSIGN_OR_RETURN(accelerator, resolver_(info));
  }
  // The columnar wire + InsertColumnar fast path covers exactly the types
  // ColumnarRows can stage; anything else ships as rows.
  report.columnar = report.direct && ColumnarCapable(info.schema);

  std::ofstream reject_out;
  if (!options.reject_file.empty()) {
    reject_out.open(options.reject_file, std::ios::trunc);
    if (!reject_out.is_open()) {
      return Status::IoError("cannot open reject file: " +
                             options.reject_file);
    }
  }

  Transaction* txn = tm_->Begin();
  size_t rejects_total = 0;
  std::string first_reject_error;

  auto commit = [&](ParsedBatch&& batch) -> Status {
    TraceSpan span(options.trace, "load.batch");
    span.Attr("seq", batch.seq);

    // Reject accounting runs before the resume-skip check and strictly in
    // batch order, so the reject budget trips at the same record for every
    // worker count and on every re-run.
    for (RejectedRecord& reject : batch.rejects) {
      ++rejects_total;
      if (first_reject_error.empty()) first_reject_error = reject.error;
      if (reject_out.is_open()) {
        reject_out << FormatCsvLine({std::to_string(reject.record_index),
                                     reject.error, reject.raw})
                   << "\n";
      }
      if (report.reject_samples.size() < kMaxRejectSamples) {
        report.reject_samples.push_back(std::move(reject));
      }
    }
    if (!batch.rejects.empty()) {
      metrics_->Add(metric::kLoaderRowsRejected, batch.rejects.size());
    }
    if (options.max_rejects != kUnlimitedRejects &&
        rejects_total > options.max_rejects) {
      return Status::InvalidArgument(
          "load aborted: " + std::to_string(rejects_total) +
          " records rejected (max_rejects=" +
          std::to_string(options.max_rejects) +
          "); first error: " + first_reject_error);
    }

    if (batch.seq < options.resume_token) {
      // A previous restartable run already committed this batch.
      ++report.batches_skipped;
      span.Attr("skipped", std::string("resume"));
      return Status::OK();
    }

    const size_t num_rows =
        batch.use_columnar ? batch.columnar.num_rows : batch.rows.size();
    if (num_rows > 0) {
      if (report.direct) {
        RetryOutcome outcome = RetryWithBackoff(
            options.retry, span.context(), [&]() -> Status {
              // Accelerator entry points validate readiness before any
              // apply, so a failed attempt left no partial state and the
              // whole ship+load is safe to retry.
              if (batch.use_columnar) {
                auto shipped = channel_->SendColumnarToAccelerator(
                    batch.columnar, info.schema, span.context());
                if (!shipped.ok()) return shipped.status();
                return accelerator->LoadColumnar(info.name, *shipped,
                                                 txn->id());
              }
              auto shipped = channel_->SendRowsToAccelerator(batch.rows,
                                                             span.context());
              if (!shipped.ok()) return shipped.status();
              return accelerator->LoadRows(info.name, *shipped, txn->id());
            });
        if (outcome.retries > 0) {
          report.retries += outcome.retries;
          metrics_->Add(metric::kLoaderRetries, outcome.retries);
        }
        IDAA_RETURN_IF_ERROR(outcome.status);
      } else {
        IDAA_ASSIGN_OR_RETURN(size_t inserted,
                              db2_->InsertRows(info, std::move(batch.rows),
                                               txn));
        (void)inserted;
      }
    }

    report.rows_loaded += num_rows;
    report.bytes += batch.bytes;
    ++report.batches;
    span.Attr("rows", num_rows);
    metrics_->Add(metric::kLoaderRowsIngested, num_rows);
    if (options.commit_per_batch) {
      IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
      db2_->lock_manager().ReleaseAll(txn->id());
      metrics_->Increment(metric::kLoaderBatchesCommitted);
      txn = tm_->Begin();
      report.resume_token = batch.seq + 1;
      if (options.progress != nullptr) {
        options.progress->batches_committed.store(report.resume_token,
                                                  std::memory_order_relaxed);
        options.progress->rows_committed.fetch_add(num_rows,
                                                   std::memory_order_relaxed);
      }
    }
    return Status::OK();
  };

  PipelineStats stats;
  Status pipeline_status = RunLoadPipeline(
      source, info.schema, report.columnar, options, commit, &stats);
  report.peak_queued_batches = stats.peak_queued_batches;
  report.rows_rejected = rejects_total;

  if (!pipeline_status.ok()) {
    (void)tm_->Abort(txn);
    db2_->lock_manager().ReleaseAll(txn->id());
    return pipeline_status;
  }
  IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
  db2_->lock_manager().ReleaseAll(txn->id());
  if (!options.commit_per_batch) {
    metrics_->Increment(metric::kLoaderBatchesCommitted);
    if (options.progress != nullptr) {
      options.progress->rows_committed.fetch_add(report.rows_loaded,
                                                 std::memory_order_relaxed);
    }
  }
  metrics_->Add(metric::kLoaderBytesIngested, report.bytes);
  return report;
}

Result<LoadReport> IdaaLoader::Load(const std::string& table_name,
                                    RecordSource* source,
                                    const LoadOptions& options) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(table_name));
  if (options.resume_token > 0 && !options.commit_per_batch) {
    return Status::InvalidArgument(
        "resume_token requires commit_per_batch (atomic loads are "
        "all-or-nothing)");
  }
  if (options.resume_token > 0 && options.num_workers == 0) {
    return Status::InvalidArgument(
        "resume_token requires the pipelined loader (num_workers >= 1)");
  }

  TraceSpan load_span(options.trace, "load");
  load_span.Attr("table", info->name);
  LoadOptions opts = options;
  opts.trace = load_span.context();

  const uint64_t start_ns = TraceNowNs();
  Result<LoadReport> result = opts.num_workers == 0
                                  ? LoadSerial(*info, source, opts)
                                  : LoadPipelined(*info, source, opts);
  if (!result.ok()) return result.status();
  result->duration_us = (TraceNowNs() - start_ns) / 1000;
  load_span.Attr("rows", result->rows_loaded);
  load_span.Attr("batches", result->batches);
  if (result->rows_rejected > 0) {
    load_span.Attr("rejects", result->rows_rejected);
  }
  return result;
}

}  // namespace idaa::loader
