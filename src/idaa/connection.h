// Connection: one client session against an IdaaSystem — its own user,
// acceleration mode (the CURRENT QUERY ACCELERATION special register) and
// transaction state. Multiple connections against one system model
// concurrent applications, which is how the concurrency semantics of the
// paper (snapshot isolation vs. cursor stability) become observable
// through plain SQL.

#pragma once

#include <memory>
#include <string>

#include "analytics/pipeline.h"
#include "common/result.h"
#include "common/trace.h"
#include "federation/federation.h"

namespace idaa {

class IdaaSystem;

class Connection {
 public:
  /// Created via IdaaSystem::NewConnection().
  Connection(IdaaSystem* system, federation::Session session);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Parse and execute one SQL statement. Handles BEGIN/COMMIT/ROLLBACK and
  /// SET CURRENT QUERY ACCELERATION here; everything else goes through the
  /// federation engine under this connection's transaction. Every regular
  /// statement is traced (parse/route/execute spans), its latency recorded
  /// in the system's per-statement-kind histogram, and — past the slow-query
  /// threshold — logged with its rendered trace.
  Result<federation::ExecResult> ExecuteSql(const std::string& sql);

  /// The redesigned execution API: per-statement options (acceleration
  /// override, retry deadline) in, a StatementResult out that surfaces
  /// routing, boundary bytes, retry count and failback. ExecuteSql remains
  /// as a shim over the same path.
  Result<federation::StatementResult> Execute(
      const std::string& sql, const federation::ExecOptions& opts = {});

  /// Convenience: execute and return the result set.
  Result<ResultSet> Query(const std::string& sql);

  Status Begin();
  Status Commit();
  Status Rollback();
  bool InTransaction() const { return explicit_txn_; }
  Transaction* current_transaction() { return txn_; }

  void SetUser(const std::string& user) { session_.user = user; }
  const std::string& user() const { return session_.user; }

  void SetAccelerationMode(federation::AccelerationMode mode) {
    session_.acceleration = mode;
  }
  federation::AccelerationMode acceleration_mode() const {
    return session_.acceleration;
  }

  /// SQL executor adapter for analytics::Pipeline.
  analytics::SqlExecutor MakeSqlExecutor();

 private:
  Result<federation::ExecResult> ExecuteParsed(
      const sql::Statement& stmt, const federation::Session& session,
      TraceContext tc = {});
  /// Shared path behind ExecuteSql and Execute: control-statement
  /// interception, per-statement session overrides, tracing, histograms.
  Result<federation::ExecResult> ExecuteCore(const std::string& sql,
                                             const federation::ExecOptions& opts,
                                             uint64_t* boundary_bytes);
  void EndAutoTxn(Transaction* txn, bool success);
  /// Intercepts transaction control and SET statements; returns nullopt if
  /// the text is a regular statement.
  std::optional<Result<federation::ExecResult>> TryControlStatement(
      const std::string& sql);

  IdaaSystem* system_;
  federation::Session session_;
  Transaction* txn_ = nullptr;
  bool explicit_txn_ = false;
};

}  // namespace idaa
