// Connection: one client session against an IdaaSystem — its own user,
// acceleration mode (the CURRENT QUERY ACCELERATION special register),
// tenant and transaction state. Multiple connections against one system
// model concurrent applications, which is how the concurrency semantics of
// the paper (snapshot isolation vs. cursor stability) become observable
// through plain SQL.
//
// Statement execution runs through the workload-management layer:
//   * a plan cache keyed on normalized SQL (ad-hoc literals are
//     parameterized, so repeated statement shapes skip the parser);
//   * a replication-aware result cache for auto-commit SELECTs;
//   * WLM admission (slots / queue / priority / deadline shedding).
// Prepare() returns a PreparedStatement handle that skips normalization on
// every Execute; ExecuteSql remains as a compatibility shim over Execute.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analytics/pipeline.h"
#include "common/result.h"
#include "common/trace.h"
#include "federation/federation.h"
#include "sql/plan_cache.h"

namespace idaa {

class IdaaSystem;
class Connection;

/// A prepared statement handle: parse once, Bind/Execute many times.
/// Obtained from Connection::Prepare; tied to that connection's session.
/// Not thread-safe (like the owning Connection).
class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Number of `?` parameter markers in the statement.
  size_t num_params() const { return plan_ ? plan_->num_params : 0; }

  /// Original statement text.
  const std::string& sql() const { return sql_; }

  /// Normalized plan-cache key ("" when the statement kind is not cached).
  const std::string& normalized_sql() const {
    static const std::string kEmpty;
    return plan_ ? plan_->key : kEmpty;
  }

  /// Bind positional values for every `?` marker (replaces prior bindings).
  Status Bind(std::vector<Value> params);

  /// Execute with the current bindings.
  Result<federation::StatementResult> Execute(
      const federation::ExecOptions& opts = {});

  /// Bind + Execute in one call.
  Result<federation::StatementResult> Execute(
      std::vector<Value> params, const federation::ExecOptions& opts = {});

 private:
  friend class Connection;

  Connection* conn_ = nullptr;
  std::string sql_;
  /// Shared parsed template. Null for statement kinds outside the plan
  /// cache (DDL, CALL, EXPLAIN, control) — those re-execute from text.
  std::shared_ptr<const sql::CachedPlan> plan_;
  std::vector<Value> params_;
  bool bound_ = false;
};

class Connection {
 public:
  /// Created via IdaaSystem::NewConnection().
  Connection(IdaaSystem* system, federation::Session session);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Parse (or fetch from the plan cache) and execute one SQL statement.
  /// Handles BEGIN/COMMIT/ROLLBACK and SET CURRENT QUERY ACCELERATION here;
  /// everything else goes through WLM admission and the federation engine
  /// under this connection's transaction. Every regular statement is traced
  /// (plan/parse/execute spans), its latency recorded in the system's
  /// per-statement-kind histogram, and — past the slow-query threshold —
  /// logged with its rendered trace.
  ///
  /// DEPRECATED shim: prefer Execute() (richer result) or Prepare() (skips
  /// re-normalization per call). Kept for source compatibility.
  Result<federation::ExecResult> ExecuteSql(const std::string& sql);

  /// The statement API: per-statement options (acceleration override, retry
  /// + queue deadline, tenant, priority, cache controls) in, a
  /// StatementResult out that surfaces routing, boundary bytes, retries,
  /// failback and the WLM decisions (plan_cache/result_cache/queued_us/
  /// tenant/slot).
  Result<federation::StatementResult> Execute(
      const std::string& sql, const federation::ExecOptions& opts = {});

  /// Parse and cache the statement once, returning a handle for repeated
  /// Bind/Execute. `?` parameter markers are supported in expression
  /// positions of SELECT/INSERT/UPDATE/DELETE. Statement kinds outside the
  /// plan cache still prepare, but re-parse per Execute.
  Result<PreparedStatement> Prepare(const std::string& sql);

  /// Convenience: execute and return the result set.
  Result<ResultSet> Query(const std::string& sql);

  Status Begin();
  Status Commit();
  Status Rollback();
  bool InTransaction() const { return explicit_txn_; }
  Transaction* current_transaction() { return txn_; }

  void SetUser(const std::string& user) { session_.user = user; }
  const std::string& user() const { return session_.user; }

  void SetAccelerationMode(federation::AccelerationMode mode) {
    session_.acceleration = mode;
  }
  federation::AccelerationMode acceleration_mode() const {
    return session_.acceleration;
  }

  /// WLM tenant this session's statements are accounted against.
  void SetTenant(const std::string& tenant) { session_.tenant_id = tenant; }
  const std::string& tenant() const { return session_.tenant_id; }

  /// SQL executor adapter for analytics::Pipeline.
  analytics::SqlExecutor MakeSqlExecutor();

 private:
  friend class PreparedStatement;

  /// A statement resolved to a concrete (parameter-free) AST, plus how it
  /// got there and the keys the caches need.
  struct ResolvedStatement {
    sql::StatementPtr stmt;
    std::shared_ptr<const sql::CachedPlan> plan;  ///< null when bypassed
    const char* plan_state = "bypass";            ///< "hit" | "miss" | "bypass"
    std::string result_key;   ///< "" = not result-cacheable
    std::vector<Value> params;  ///< values behind the normalized key
  };

  Result<federation::ExecResult> ExecuteParsed(
      const sql::Statement& stmt, const federation::Session& session,
      TraceContext tc = {});
  /// Shared path behind ExecuteSql / Execute / PreparedStatement::Execute:
  /// control-statement interception, per-statement session overrides, plan
  /// cache, result cache, WLM admission, tracing, histograms, invalidation.
  Result<federation::ExecResult> ExecuteCore(const std::string& sql,
                                             const federation::ExecOptions& opts,
                                             uint64_t* boundary_bytes);
  /// Prepared fast path: instantiate the cached template with `params`.
  Result<federation::ExecResult> ExecutePrepared(
      const PreparedStatement& prepared, const federation::ExecOptions& opts,
      uint64_t* boundary_bytes);
  /// Everything after a concrete statement exists (admission, execution,
  /// result cache, invalidation, observability). `sql_text` is for the
  /// slow-query log.
  Result<federation::ExecResult> ExecuteResolved(
      ResolvedStatement resolved, const std::string& sql_text,
      const federation::Session& session, const federation::ExecOptions& opts,
      uint64_t* boundary_bytes);
  void EndAutoTxn(Transaction* txn, bool success);
  /// Intercepts transaction control and SET statements; returns nullopt if
  /// the text is a regular statement.
  std::optional<Result<federation::ExecResult>> TryControlStatement(
      const std::string& sql);
  /// Serve a SELECT from the result cache if present (re-authorizing every
  /// referenced table for the session user).
  std::optional<Result<federation::ExecResult>> TryServeFromResultCache(
      const ResolvedStatement& resolved, const federation::Session& session);
  /// Tables a successful statement wrote (normalized), for cache eviction.
  static std::vector<std::string> WrittenTables(const sql::Statement& stmt);
  federation::Priority ClassifyPriority(const sql::Statement& stmt,
                                        const federation::ExecOptions& opts) const;
  static federation::StatementResult ToStatementResult(
      federation::ExecResult result, uint64_t boundary_bytes);

  IdaaSystem* system_;
  federation::Session session_;
  Transaction* txn_ = nullptr;
  bool explicit_txn_ = false;
  /// Tables written inside the open explicit transaction; the result cache
  /// is evicted for them when Commit succeeds.
  std::vector<std::string> pending_invalidations_;
};

}  // namespace idaa
