// IdaaSystem: the public entry point wiring all subsystems together —
// DB2 engine, accelerator, federation, replication, loader, governance and
// the analytics framework. This is the API the examples and benchmarks use:
//
//   idaa::IdaaSystem system;
//   system.ExecuteSql("CREATE TABLE t (a INT, b DOUBLE)");
//   system.ExecuteSql("CALL SYSPROC.ACCEL_ADD_TABLES('t')");
//   system.ExecuteSql("CREATE TABLE stage1 (a INT, s DOUBLE) IN ACCELERATOR");
//   system.ExecuteSql("INSERT INTO stage1 SELECT a, SUM(b) FROM t GROUP BY a");
//   auto rs = system.Query("SELECT * FROM stage1 ORDER BY a");

#pragma once

#include <memory>
#include <string>

#include "accel/accelerator.h"
#include "analytics/pipeline.h"
#include "analytics/registry.h"
#include "catalog/catalog.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "db2/db2_engine.h"
#include "federation/federation.h"
#include "governance/audit_log.h"
#include "governance/authorization.h"
#include "federation/wlm.h"
#include "idaa/connection.h"
#include "loader/loader.h"
#include "replication/replication_service.h"
#include "sql/plan_cache.h"
#include "txn/transaction_manager.h"

namespace idaa {

struct SystemOptions {
  accel::AcceleratorOptions accelerator;
  /// Number of attached accelerators (named ACCEL1..ACCELn).
  size_t num_accelerators = 1;
  /// Physical shard instances behind each logical accelerator. 1 = plain
  /// appliance; >1 builds a ShardedAccelerator (hash-partitioned +
  /// broadcast tables, scatter-gather, per-shard failure handling) behind
  /// the same API — routing, replication and WLM are unaware.
  size_t accelerator_shards = 1;
  /// Replication apply batch size (0 = manual Flush only).
  size_t replication_batch_size = 256;
  /// Default acceleration mode for new sessions.
  federation::AccelerationMode acceleration_mode =
      federation::AccelerationMode::kEligible;
  /// Seed for the deterministic fault injector (disarmed by default; tests
  /// and benchmarks arm sites through fault_injector()).
  uint64_t fault_seed = 42;
  /// Workload management: admission slots, queue depth, result cache sizing.
  federation::WlmOptions wlm;
  /// Plan-cache capacity (entries; normalized statement templates).
  size_t plan_cache_capacity = 512;
};

/// One embedded IDAA deployment: DB2 + accelerator + glue.
/// Statement execution is auto-commit unless Begin() opened an explicit
/// transaction. Not safe for concurrent ExecuteSql from multiple threads on
/// the *same* IdaaSystem session; use NewSession()-style separate
/// transactions via the component APIs for concurrency tests.
class IdaaSystem {
 public:
  explicit IdaaSystem(const SystemOptions& options = {});
  ~IdaaSystem();

  IdaaSystem(const IdaaSystem&) = delete;
  IdaaSystem& operator=(const IdaaSystem&) = delete;

  /// Open an additional client session (own user, acceleration mode and
  /// transaction state). The IdaaSystem itself embeds a default connection
  /// that the convenience methods below forward to.
  std::unique_ptr<Connection> NewConnection();

  // -- statement interface ---------------------------------------------------

  /// Parse and execute one SQL statement on the default connection.
  /// "BEGIN"/"COMMIT"/"ROLLBACK" and SET CURRENT QUERY ACCELERATION are
  /// handled as session control.
  Result<federation::ExecResult> ExecuteSql(const std::string& sql) {
    return default_connection_->ExecuteSql(sql);
  }

  /// Redesigned execution API on the default connection: per-statement
  /// options in, a StatementResult (routing, boundary bytes, retries,
  /// failback) out.
  Result<federation::StatementResult> Execute(
      const std::string& sql, const federation::ExecOptions& opts = {}) {
    return default_connection_->Execute(sql, opts);
  }

  /// Prepare a statement on the default connection (parse + plan-cache once;
  /// Bind/Execute many times — see PreparedStatement).
  Result<PreparedStatement> Prepare(const std::string& sql) {
    return default_connection_->Prepare(sql);
  }

  /// Convenience: execute and return the result set (for SELECT/CALL).
  Result<ResultSet> Query(const std::string& sql) {
    return default_connection_->Query(sql);
  }

  // -- transaction control (default connection) -------------------------------

  Status Begin() { return default_connection_->Begin(); }
  Status Commit() { return default_connection_->Commit(); }
  Status Rollback() { return default_connection_->Rollback(); }
  bool InTransaction() const { return default_connection_->InTransaction(); }

  /// The transaction a delegated operation would run under right now
  /// (only valid between Begin/Commit).
  Transaction* current_transaction() {
    return default_connection_->current_transaction();
  }

  // -- session (default connection) --------------------------------------------

  /// Switch the active user (governance checks apply to this user).
  void SetUser(const std::string& user) { default_connection_->SetUser(user); }
  const std::string& user() const { return default_connection_->user(); }

  void SetAccelerationMode(federation::AccelerationMode mode) {
    default_connection_->SetAccelerationMode(mode);
  }
  federation::AccelerationMode acceleration_mode() const {
    return default_connection_->acceleration_mode();
  }

  // -- components ---------------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  MetricsRegistry& metrics() { return metrics_; }
  /// Per-statement-kind and subsystem latency histograms (exportable next
  /// to MetricsRegistry::Snapshot()).
  HistogramRegistry& histograms() { return histograms_; }
  /// Statements slower than the configured threshold are recorded here with
  /// their rendered trace (see SlowQueryLog::set_threshold_us).
  SlowQueryLog& slow_query_log() { return slow_query_log_; }
  TransactionManager& txn_manager() { return tm_; }
  db2::Db2Engine& db2() { return *db2_; }
  /// The i-th attached accelerator (0 = ACCEL1).
  accel::Accelerator& accelerator(size_t i = 0) { return *accelerators_[i]; }
  size_t num_accelerators() const { return accelerators_.size(); }
  /// Accelerator hosting a table's data (federation placement lookup).
  Result<accel::Accelerator*> AcceleratorForTable(const TableInfo& info) {
    return federation_->AcceleratorForTable(info);
  }
  federation::FederationEngine& federation() { return *federation_; }
  federation::TransferChannel& channel() { return *channel_; }
  replication::ReplicationService& replication() { return *replication_; }
  loader::IdaaLoader& loader() { return *loader_; }
  governance::AuthorizationManager& authorization() { return auth_; }
  governance::AuditLog& audit() { return audit_; }
  /// Deterministic fault injector wired into the transfer channel and every
  /// accelerator entry point (disarmed unless a site is armed).
  FaultInjector& fault_injector() { return fault_injector_; }
  analytics::OperatorRegistry& analytics_registry() { return *registry_; }
  /// Normalized-SQL statement cache shared by every connection.
  sql::PlanCache& plan_cache() { return plan_cache_; }
  /// Workload manager: admission control + replication-aware result cache.
  federation::WorkloadManager& wlm() { return *wlm_; }

  /// SQL executor adapter for analytics::Pipeline (default connection).
  analytics::SqlExecutor MakeSqlExecutor() {
    return default_connection_->MakeSqlExecutor();
  }

 private:
  SystemOptions options_;
  FaultInjector fault_injector_;
  MetricsRegistry metrics_;
  HistogramRegistry histograms_;
  SlowQueryLog slow_query_log_;
  TransactionManager tm_;
  Catalog catalog_;
  std::unique_ptr<db2::Db2Engine> db2_;
  std::vector<std::unique_ptr<accel::Accelerator>> accelerators_;
  std::unique_ptr<federation::TransferChannel> channel_;
  std::unique_ptr<replication::ReplicationService> replication_;
  governance::AuthorizationManager auth_;
  governance::AuditLog audit_;
  std::unique_ptr<federation::FederationEngine> federation_;
  std::unique_ptr<loader::IdaaLoader> loader_;
  std::unique_ptr<analytics::OperatorRegistry> registry_;
  sql::PlanCache plan_cache_;
  std::unique_ptr<federation::WorkloadManager> wlm_;
  std::unique_ptr<Connection> default_connection_;
};

}  // namespace idaa
