#include "idaa/system.h"

#include <algorithm>

#include "accel/sharded_accelerator.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace idaa {

IdaaSystem::IdaaSystem(const SystemOptions& options)
    : options_(options), fault_injector_(options.fault_seed),
      plan_cache_(options.plan_cache_capacity) {
  db2_ = std::make_unique<db2::Db2Engine>(&catalog_, &tm_, &metrics_);
  size_t num_accelerators = std::max<size_t>(1, options_.num_accelerators);
  std::vector<accel::Accelerator*> accel_ptrs;
  for (size_t i = 0; i < num_accelerators; ++i) {
    std::string name = "ACCEL" + std::to_string(i + 1);
    if (options_.accelerator_shards > 1) {
      accelerators_.push_back(std::make_unique<accel::ShardedAccelerator>(
          options_.accelerator, options_.accelerator_shards, &tm_, &metrics_,
          name));
    } else {
      accelerators_.push_back(std::make_unique<accel::Accelerator>(
          options_.accelerator, &tm_, &metrics_, name));
    }
    accelerators_.back()->set_fault_injector(&fault_injector_);
    accel_ptrs.push_back(accelerators_.back().get());
  }
  channel_ = std::make_unique<federation::TransferChannel>(&metrics_);
  channel_->set_fault_injector(&fault_injector_);

  // Replication and the loader find a table's accelerator through the
  // catalog's placement record.
  auto accel_for_info =
      [this](const TableInfo& info) -> Result<accel::Accelerator*> {
    return federation_->AcceleratorForTable(info, "LOAD");
  };
  replication_ = std::make_unique<replication::ReplicationService>(
      &tm_,
      [this](const std::string& table_name) -> Result<accel::ReplicaRoute> {
        IDAA_ASSIGN_OR_RETURN(const TableInfo* info,
                              catalog_.GetTable(table_name));
        // Catch-up applies must land while the accelerator is Recovering
        // (queries still rejected), so this resolver is laxer than the
        // query path's AcceleratorForTable.
        IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a,
                              federation_->AcceleratorForReplication(*info));
        return a->ReplicaRouteFor(table_name);
      },
      channel_.get(), &metrics_,
      &histograms_.GetOrCreate(histo::kReplicationBatchApplyUs));
  replication_->set_batch_size(options_.replication_batch_size);
  replication_->Attach();
  federation_ = std::make_unique<federation::FederationEngine>(
      &catalog_, db2_.get(), std::move(accel_ptrs), &tm_, replication_.get(),
      channel_.get(), &auth_, &audit_, &metrics_);
  loader_ = std::make_unique<loader::IdaaLoader>(&catalog_, db2_.get(),
                                                 accel_for_info,
                                                 channel_.get(), &tm_,
                                                 &metrics_);
  registry_ = analytics::MakeBuiltinRegistry();
  // Cardinality feed for the ENABLE routing heuristic.
  federation_->mutable_router().set_row_count_fn(
      [this](const TableInfo& info) -> size_t {
        auto table = db2_->row_store().GetTable(info.table_id);
        return table.ok() ? (*table)->NumLiveRows() : 0;
      });
  // Health feed for ENABLE WITH FAILBACK pre-execution routing: an
  // accelerator is worth sending work to only when Online with a breaker
  // that would let a request through (non-mutating probe check).
  federation_->mutable_router().set_accel_health_fn(
      [this](const std::string& name) -> bool {
        auto a = federation_->AcceleratorByName(name);
        if (!a.ok()) return false;
        return (*a)->state() == accel::AcceleratorState::kOnline &&
               federation_->health().Probeable(name);
      });

  // Wire the analytics framework into CALL dispatch: EXECUTE privilege was
  // already checked by the federation layer; here we enforce SELECT on the
  // operator's inputs, run it, and grant the caller privileges on the
  // produced AOTs.
  federation_->set_procedure_handler(
      [this](const std::string& name, const std::vector<Value>& args,
             Transaction* txn, const federation::Session& session,
             TraceContext tc) -> Result<ResultSet> {
        std::string op_name = name;
        if (StartsWith(op_name, "IDAA.")) op_name = op_name.substr(5);
        IDAA_ASSIGN_OR_RETURN(analytics::AnalyticsOperator * op,
                              registry_->Get(op_name));
        IDAA_ASSIGN_OR_RETURN(analytics::ParamMap params,
                              analytics::ParseParams(args));
        IDAA_ASSIGN_OR_RETURN(std::vector<std::string> inputs,
                              op->InputTables(params));
        for (const std::string& input : inputs) {
          Status check = auth_.Check(session.user, input,
                                     governance::Privilege::kSelect);
          audit_.Record(session.user, "ANALYTICS " + op_name, input,
                        check.ok(), check.ok() ? "" : check.message());
          IDAA_RETURN_IF_ERROR(check);
        }
        // The operator runs on the accelerator hosting its (first) input;
        // output AOTs are created alongside.
        accel::Accelerator* host = accelerators_.front().get();
        if (!inputs.empty()) {
          auto info = catalog_.GetTable(inputs.front());
          if (info.ok() && !(*info)->accelerator_name.empty()) {
            IDAA_ASSIGN_OR_RETURN(host,
                                  federation_->AcceleratorForTable(**info));
          }
        }
        analytics::AnalyticsContext ctx(&catalog_, host, &tm_, txn,
                                        &metrics_);
        TraceSpan op_span(tc, "analytics." + ToLower(op_name));
        op_span.Attr("operator", op_name);
        ctx.set_trace(op_span.context());
        IDAA_ASSIGN_OR_RETURN(ResultSet result, op->Run(ctx, params));
        for (const std::string& created : ctx.created_tables()) {
          for (governance::Privilege p :
               {governance::Privilege::kSelect, governance::Privilege::kInsert,
                governance::Privilege::kUpdate,
                governance::Privilege::kDelete}) {
            (void)auth_.Grant(session.user, created, p);
          }
        }
        return result;
      });

  wlm_ = std::make_unique<federation::WorkloadManager>(options_.wlm, &metrics_,
                                                       &histograms_);
  // Result-cache invalidation rides the same change streams replication
  // uses: (a) every committed transaction with captured changes (covers
  // component-API writes that bypass the Connection front door), (b) every
  // replication batch applied to a replica (covers the accelerator-visible
  // side of ENABLE-mode routing).
  tm_.AddCommitListener([this](const Transaction& txn) {
    if (txn.captured_changes().empty()) return;
    std::vector<std::string> tables;
    for (const auto& change : txn.captured_changes()) {
      if (std::find(tables.begin(), tables.end(), change.table_name) ==
          tables.end()) {
        tables.push_back(change.table_name);
      }
    }
    wlm_->result_cache().InvalidateTables(tables);
  });
  replication_->set_invalidation_listener(
      [this](const std::vector<std::string>& tables) {
        wlm_->result_cache().InvalidateTables(tables);
      });
  // A shard rebalance changes placement without a data change; cached
  // results spanning the old topology must not outlive it.
  for (auto& a : accelerators_) {
    if (auto* sharded = dynamic_cast<accel::ShardedAccelerator*>(a.get())) {
      sharded->set_topology_listener(
          [this](const std::vector<std::string>& tables) {
            wlm_->result_cache().InvalidateTables(tables);
          });
    }
    // GROOM compaction bumps the affected tables' compaction epochs: the
    // physical layout (row order, zone encodings) changed without a
    // logical data change, so cached results computed on the old layout
    // are dropped the same way.
    a->set_compaction_listener([this](const std::vector<std::string>& tables) {
      wlm_->result_cache().InvalidateTables(tables);
    });
  }
  default_connection_ = NewConnection();
}

IdaaSystem::~IdaaSystem() = default;

std::unique_ptr<Connection> IdaaSystem::NewConnection() {
  federation::Session session;
  session.acceleration = options_.acceleration_mode;
  return std::make_unique<Connection>(this, session);
}

}  // namespace idaa
