#include "idaa/connection.h"

#include "common/string_util.h"
#include "idaa/system.h"
#include "sql/parser.h"

namespace idaa {

Connection::Connection(IdaaSystem* system, federation::Session session)
    : system_(system), session_(std::move(session)) {}

Connection::~Connection() {
  if (txn_ != nullptr && txn_->IsActive()) {
    (void)system_->txn_manager().Abort(txn_);
    system_->db2().lock_manager().ReleaseAll(txn_->id());
  }
}

Status Connection::Begin() {
  if (explicit_txn_) {
    return Status::InvalidArgument("transaction already open");
  }
  txn_ = system_->txn_manager().Begin();
  explicit_txn_ = true;
  return Status::OK();
}

Status Connection::Commit() {
  if (!explicit_txn_) {
    return Status::InvalidArgument("no open transaction");
  }
  Transaction* txn = txn_;
  txn_ = nullptr;
  explicit_txn_ = false;
  Status status = system_->txn_manager().Commit(txn);
  system_->db2().lock_manager().ReleaseAll(txn->id());
  return status;
}

Status Connection::Rollback() {
  if (!explicit_txn_) {
    return Status::InvalidArgument("no open transaction");
  }
  Transaction* txn = txn_;
  txn_ = nullptr;
  explicit_txn_ = false;
  Status status = system_->txn_manager().Abort(txn);
  system_->db2().lock_manager().ReleaseAll(txn->id());
  return status;
}

void Connection::EndAutoTxn(Transaction* txn, bool success) {
  if (success) {
    (void)system_->txn_manager().Commit(txn);
  } else {
    (void)system_->txn_manager().Abort(txn);
  }
  system_->db2().lock_manager().ReleaseAll(txn->id());
}

Result<federation::ExecResult> Connection::ExecuteParsed(
    const sql::Statement& stmt, const federation::Session& session,
    TraceContext tc) {
  if (explicit_txn_) {
    return system_->federation().Execute(stmt, session, txn_, tc);
  }
  Transaction* txn = system_->txn_manager().Begin();
  auto result = system_->federation().Execute(stmt, session, txn, tc);
  EndAutoTxn(txn, result.ok());
  return result;
}

std::optional<Result<federation::ExecResult>> Connection::TryControlStatement(
    const std::string& sql) {
  std::string trimmed = ToUpper(Trim(sql));
  if (!trimmed.empty() && trimmed.back() == ';') {
    trimmed = Trim(trimmed.substr(0, trimmed.size() - 1));
  }
  auto done = [](std::string detail) {
    federation::ExecResult out;
    out.detail = std::move(detail);
    return Result<federation::ExecResult>(std::move(out));
  };
  if (trimmed == "BEGIN" || trimmed == "BEGIN TRANSACTION") {
    Status st = Begin();
    if (!st.ok()) return Result<federation::ExecResult>(st);
    return done("transaction started");
  }
  if (trimmed == "COMMIT") {
    Status st = Commit();
    if (!st.ok()) return Result<federation::ExecResult>(st);
    return done("committed");
  }
  if (trimmed == "ROLLBACK") {
    Status st = Rollback();
    if (!st.ok()) return Result<federation::ExecResult>(st);
    return done("rolled back");
  }
  // SET CURRENT QUERY ACCELERATION =
  //   NONE | ENABLE | ENABLE WITH FAILBACK | ELIGIBLE | ALL
  // (DB2's special register; session-local, so handled here).
  const std::string kPrefix = "SET CURRENT QUERY ACCELERATION";
  if (StartsWith(trimmed, kPrefix)) {
    std::string rest = Trim(trimmed.substr(kPrefix.size()));
    if (!rest.empty() && rest[0] == '=') rest = Trim(rest.substr(1));
    federation::AccelerationMode mode;
    if (rest == "NONE") {
      mode = federation::AccelerationMode::kNone;
    } else if (rest == "ENABLE WITH FAILBACK") {
      mode = federation::AccelerationMode::kEnableWithFailback;
    } else if (rest == "ENABLE") {
      mode = federation::AccelerationMode::kEnable;
    } else if (rest == "ELIGIBLE") {
      mode = federation::AccelerationMode::kEligible;
    } else if (rest == "ALL") {
      mode = federation::AccelerationMode::kAll;
    } else {
      return Result<federation::ExecResult>(Status::SyntaxError(
          "expected NONE, ENABLE, ENABLE WITH FAILBACK, ELIGIBLE or ALL, "
          "got: '" + rest + "'"));
    }
    session_.acceleration = mode;
    return done(std::string("CURRENT QUERY ACCELERATION = ") + rest);
  }
  return std::nullopt;
}

Result<federation::ExecResult> Connection::ExecuteCore(
    const std::string& sql, const federation::ExecOptions& opts,
    uint64_t* boundary_bytes) {
  if (auto control = TryControlStatement(sql)) {
    return std::move(*control);
  }
  federation::Session session = session_;
  if (opts.acceleration) session.acceleration = *opts.acceleration;
  if (opts.deadline_us != 0) session.deadline_us = opts.deadline_us;
  QueryTrace trace;
  TraceSpan root(&trace, "statement");
  const uint64_t start_ns = TraceNowNs();
  sql::StatementPtr stmt;
  {
    TraceSpan parse_span(root.context(), "parse");
    IDAA_ASSIGN_OR_RETURN(stmt, sql::ParseStatement(sql));
  }
  auto result = ExecuteParsed(*stmt, session, root.context());
  if (result.ok()) {
    root.Attr("rows", static_cast<uint64_t>(result->result_set.NumRows()));
    root.Attr("affected", static_cast<uint64_t>(result->affected_rows));
  }
  root.End();
  if (boundary_bytes != nullptr) *boundary_bytes = trace.boundary_bytes();
  const uint64_t duration_us = (TraceNowNs() - start_ns) / 1000;
  system_->histograms()
      .GetOrCreate(std::string(histo::kSqlLatencyPrefix) +
                   sql::StatementKindToString(stmt->kind()))
      .Record(duration_us);
  if (system_->slow_query_log().enabled()) {
    system_->slow_query_log().MaybeRecord(sql, duration_us,
                                          trace.boundary_bytes(),
                                          trace.Render());
  }
  return result;
}

Result<federation::ExecResult> Connection::ExecuteSql(const std::string& sql) {
  return ExecuteCore(sql, {}, nullptr);
}

Result<federation::StatementResult> Connection::Execute(
    const std::string& sql, const federation::ExecOptions& opts) {
  uint64_t boundary_bytes = 0;
  IDAA_ASSIGN_OR_RETURN(federation::ExecResult result,
                        ExecuteCore(sql, opts, &boundary_bytes));
  federation::StatementResult out;
  out.rows = std::move(result.result_set);
  out.rows_affected = result.affected_rows;
  out.routed_to = result.executed_on;
  out.boundary_bytes = boundary_bytes;
  out.retries = result.retries;
  out.failed_back = result.failed_back;
  out.detail = std::move(result.detail);
  return out;
}

Result<ResultSet> Connection::Query(const std::string& sql) {
  IDAA_ASSIGN_OR_RETURN(federation::ExecResult result, ExecuteSql(sql));
  return result.result_set;
}

analytics::SqlExecutor Connection::MakeSqlExecutor() {
  return [this](const std::string& sql) -> Result<analytics::StageResult> {
    IDAA_ASSIGN_OR_RETURN(federation::ExecResult result, ExecuteSql(sql));
    analytics::StageResult stage;
    stage.affected_rows = result.affected_rows != 0
                              ? result.affected_rows
                              : result.result_set.NumRows();
    stage.on_accelerator =
        result.executed_on == federation::Target::kAccelerator;
    stage.detail = result.detail;
    return stage;
  };
}

}  // namespace idaa
