#include "idaa/connection.h"

#include <algorithm>
#include <cctype>
#include <string_view>

#include "common/string_util.h"
#include "federation/router.h"
#include "idaa/system.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace idaa {

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

Status PreparedStatement::Bind(std::vector<Value> params) {
  if (conn_ == nullptr) {
    return Status::InvalidArgument("prepared statement is not initialized");
  }
  size_t expected = num_params();
  if (params.size() != expected) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(expected) +
        " parameter markers but " + std::to_string(params.size()) +
        " values were bound");
  }
  params_ = std::move(params);
  bound_ = true;
  return Status::OK();
}

Result<federation::StatementResult> PreparedStatement::Execute(
    const federation::ExecOptions& opts) {
  if (conn_ == nullptr) {
    return Status::InvalidArgument("prepared statement is not initialized");
  }
  if (num_params() > 0 && !bound_) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(num_params()) +
        " parameter markers; call Bind() before Execute()");
  }
  uint64_t boundary_bytes = 0;
  IDAA_ASSIGN_OR_RETURN(federation::ExecResult result,
                        conn_->ExecutePrepared(*this, opts, &boundary_bytes));
  return Connection::ToStatementResult(std::move(result), boundary_bytes);
}

Result<federation::StatementResult> PreparedStatement::Execute(
    std::vector<Value> params, const federation::ExecOptions& opts) {
  IDAA_RETURN_IF_ERROR(Bind(std::move(params)));
  return Execute(opts);
}

// ---------------------------------------------------------------------------
// Connection: lifecycle + transaction control
// ---------------------------------------------------------------------------

Connection::Connection(IdaaSystem* system, federation::Session session)
    : system_(system), session_(std::move(session)) {}

Connection::~Connection() {
  if (txn_ != nullptr && txn_->IsActive()) {
    (void)system_->txn_manager().Abort(txn_);
    system_->db2().lock_manager().ReleaseAll(txn_->id());
  }
}

Status Connection::Begin() {
  if (explicit_txn_) {
    return Status::InvalidArgument("transaction already open");
  }
  txn_ = system_->txn_manager().Begin();
  explicit_txn_ = true;
  pending_invalidations_.clear();
  return Status::OK();
}

Status Connection::Commit() {
  if (!explicit_txn_) {
    return Status::InvalidArgument("no open transaction");
  }
  Transaction* txn = txn_;
  txn_ = nullptr;
  explicit_txn_ = false;
  Status status = system_->txn_manager().Commit(txn);
  system_->db2().lock_manager().ReleaseAll(txn->id());
  if (status.ok() && !pending_invalidations_.empty()) {
    system_->wlm().result_cache().InvalidateTables(pending_invalidations_);
  }
  pending_invalidations_.clear();
  return status;
}

Status Connection::Rollback() {
  if (!explicit_txn_) {
    return Status::InvalidArgument("no open transaction");
  }
  Transaction* txn = txn_;
  txn_ = nullptr;
  explicit_txn_ = false;
  pending_invalidations_.clear();
  Status status = system_->txn_manager().Abort(txn);
  system_->db2().lock_manager().ReleaseAll(txn->id());
  return status;
}

void Connection::EndAutoTxn(Transaction* txn, bool success) {
  if (success) {
    (void)system_->txn_manager().Commit(txn);
  } else {
    (void)system_->txn_manager().Abort(txn);
  }
  system_->db2().lock_manager().ReleaseAll(txn->id());
}

Result<federation::ExecResult> Connection::ExecuteParsed(
    const sql::Statement& stmt, const federation::Session& session,
    TraceContext tc) {
  if (explicit_txn_) {
    return system_->federation().Execute(stmt, session, txn_, tc);
  }
  Transaction* txn = system_->txn_manager().Begin();
  auto result = system_->federation().Execute(stmt, session, txn, tc);
  EndAutoTxn(txn, result.ok());
  return result;
}

std::optional<Result<federation::ExecResult>> Connection::TryControlStatement(
    const std::string& sql) {
  std::string trimmed = ToUpper(Trim(sql));
  if (!trimmed.empty() && trimmed.back() == ';') {
    trimmed = Trim(trimmed.substr(0, trimmed.size() - 1));
  }
  auto done = [](std::string detail) {
    federation::ExecResult out;
    out.detail = std::move(detail);
    return Result<federation::ExecResult>(std::move(out));
  };
  if (trimmed == "BEGIN" || trimmed == "BEGIN TRANSACTION") {
    Status st = Begin();
    if (!st.ok()) return Result<federation::ExecResult>(st);
    return done("transaction started");
  }
  if (trimmed == "COMMIT") {
    Status st = Commit();
    if (!st.ok()) return Result<federation::ExecResult>(st);
    return done("committed");
  }
  if (trimmed == "ROLLBACK") {
    Status st = Rollback();
    if (!st.ok()) return Result<federation::ExecResult>(st);
    return done("rolled back");
  }
  // SET CURRENT QUERY ACCELERATION =
  //   NONE | ENABLE | ENABLE WITH FAILBACK | ELIGIBLE | ALL
  // (DB2's special register; session-local, so handled here).
  const std::string kPrefix = "SET CURRENT QUERY ACCELERATION";
  if (StartsWith(trimmed, kPrefix)) {
    std::string rest = Trim(trimmed.substr(kPrefix.size()));
    if (!rest.empty() && rest[0] == '=') rest = Trim(rest.substr(1));
    federation::AccelerationMode mode;
    if (rest == "NONE") {
      mode = federation::AccelerationMode::kNone;
    } else if (rest == "ENABLE WITH FAILBACK") {
      mode = federation::AccelerationMode::kEnableWithFailback;
    } else if (rest == "ENABLE") {
      mode = federation::AccelerationMode::kEnable;
    } else if (rest == "ELIGIBLE") {
      mode = federation::AccelerationMode::kEligible;
    } else if (rest == "ALL") {
      mode = federation::AccelerationMode::kAll;
    } else {
      return Result<federation::ExecResult>(Status::SyntaxError(
          "expected NONE, ENABLE, ENABLE WITH FAILBACK, ELIGIBLE or ALL, "
          "got: '" + rest + "'"));
    }
    session_.acceleration = mode;
    return done(std::string("CURRENT QUERY ACCELERATION = ") + rest);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Workload-management helpers
// ---------------------------------------------------------------------------

std::vector<std::string> Connection::WrittenTables(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kInsert:
      return {Catalog::NormalizeName(
          static_cast<const sql::InsertStatement&>(stmt).table_name)};
    case sql::StatementKind::kUpdate:
      return {Catalog::NormalizeName(
          static_cast<const sql::UpdateStatement&>(stmt).table_name)};
    case sql::StatementKind::kDelete:
      return {Catalog::NormalizeName(
          static_cast<const sql::DeleteStatement&>(stmt).table_name)};
    case sql::StatementKind::kCreateTable:
      return {Catalog::NormalizeName(
          static_cast<const sql::CreateTableStatement&>(stmt).table_name)};
    case sql::StatementKind::kDropTable:
      return {Catalog::NormalizeName(
          static_cast<const sql::DropTableStatement&>(stmt).table_name)};
    default:
      return {};
  }
}

federation::Priority Connection::ClassifyPriority(
    const sql::Statement& stmt, const federation::ExecOptions& opts) const {
  if (opts.priority) return *opts.priority;
  // Two classes: long analytics behind short OLTP. SELECT shapes reuse the
  // router's offload heuristic; CALL (analytics operators, admin
  // procedures) is batch; DML and everything else is interactive.
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return federation::Router::LooksAnalytical(
                 static_cast<const sql::SelectStatement&>(stmt))
                 ? federation::Priority::kBatch
                 : federation::Priority::kInteractive;
    case sql::StatementKind::kExplain: {
      const auto& explain = static_cast<const sql::ExplainStatement&>(stmt);
      return explain.select && federation::Router::LooksAnalytical(
                                   *explain.select)
                 ? federation::Priority::kBatch
                 : federation::Priority::kInteractive;
    }
    case sql::StatementKind::kCall:
      return federation::Priority::kBatch;
    default:
      return federation::Priority::kInteractive;
  }
}

std::optional<Result<federation::ExecResult>>
Connection::TryServeFromResultCache(const ResolvedStatement& resolved,
                                    const federation::Session& session) {
  if (resolved.result_key.empty()) return std::nullopt;
  auto& cache = system_->wlm().result_cache();
  auto served = cache.Lookup(resolved.result_key);
  if (!served) return std::nullopt;
  // Governance is evaluated at serve time (not captured at store time):
  // a REVOKE between store and hit must still deny, and every access is
  // audited like an executed statement.
  const std::vector<std::string>& tables =
      resolved.plan ? resolved.plan->tables
                    : sql::ReferencedTables(*resolved.stmt);
  for (const std::string& table : tables) {
    Status check = system_->authorization().Check(
        session.user, table, governance::Privilege::kSelect);
    system_->audit().Record(session.user, "SELECT (result cache)", table,
                            check.ok(), check.ok() ? "" : check.message());
    if (!check.ok()) return Result<federation::ExecResult>(check);
  }
  federation::ExecResult out;
  out.result_set = std::move(served->rows);
  out.executed_on = served->routed_to;
  out.detail = "result cache hit";
  return Result<federation::ExecResult>(std::move(out));
}

federation::StatementResult Connection::ToStatementResult(
    federation::ExecResult result, uint64_t boundary_bytes) {
  federation::StatementResult out;
  out.rows = std::move(result.result_set);
  out.rows_affected = result.affected_rows;
  out.routed_to = result.executed_on;
  out.boundary_bytes = boundary_bytes;
  out.retries = result.retries;
  out.failed_back = result.failed_back;
  out.detail = std::move(result.detail);
  out.plan_cache = std::move(result.plan_cache);
  out.result_cache = std::move(result.result_cache);
  out.queued_us = result.queued_us;
  out.tenant = std::move(result.tenant);
  out.slot = result.slot;
  return out;
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

namespace {

// Statement text following the EXPLAIN ANALYZE prefix. Normalizing this
// yields the exact cache key a bare execution of the inner SELECT uses;
// re-rendering the AST via ToSql() would not (it adds grouping parentheses,
// which are tokens and therefore change the normalized key).
std::string_view ExplainedStatementText(std::string_view sql) {
  auto skip_ws = [](std::string_view& s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
  };
  auto skip_word = [](std::string_view& s, std::string_view word) {
    if (s.size() < word.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(s[i])) != word[i]) {
        return false;
      }
    }
    s.remove_prefix(word.size());
    return true;
  };
  std::string_view rest = sql;
  skip_ws(rest);
  if (!skip_word(rest, "EXPLAIN")) return sql;
  skip_ws(rest);
  if (!skip_word(rest, "ANALYZE")) return sql;
  skip_ws(rest);
  return rest;
}

}  // namespace

Result<federation::ExecResult> Connection::ExecuteResolved(
    ResolvedStatement resolved, const std::string& sql_text,
    const federation::Session& session, const federation::ExecOptions& opts,
    uint64_t* boundary_bytes) {
  auto& wlm = system_->wlm();
  const sql::Statement& stmt = *resolved.stmt;
  const bool is_select = stmt.kind() == sql::StatementKind::kSelect;

  // Result-cache key: only for auto-commit SELECTs that went through the
  // normalizer (the key carries the acceleration mode — it changes routing,
  // errors, and therefore observable results).
  if (is_select && resolved.plan && !explicit_txn_ && wlm.enabled() &&
      opts.use_result_cache) {
    resolved.result_key = federation::ResultCache::MakeKey(
        resolved.plan->key, resolved.params, session.acceleration);
  }

  const uint64_t start_ns = TraceNowNs();
  if (auto cached = TryServeFromResultCache(resolved, session)) {
    if (cached->ok()) {
      federation::ExecResult& out = **cached;
      out.plan_cache = resolved.plan_state;
      out.result_cache = "hit";
      out.tenant = session.tenant_id;
      system_->histograms()
          .GetOrCreate(std::string(histo::kSqlLatencyPrefix) +
                       sql::StatementKindToString(stmt.kind()))
          .Record((TraceNowNs() - start_ns) / 1000);
    }
    return std::move(*cached);
  }

  // Admission: statements inside an explicit transaction bypass the queue —
  // they may already hold row locks, and parking them behind a slot held by
  // a lock-waiter would deadlock the pool.
  federation::AdmissionController::Ticket ticket;
  bool admitted = false;
  if (wlm.enabled() && !explicit_txn_) {
    auto grant = wlm.admission().Admit(session.tenant_id,
                                       ClassifyPriority(stmt, opts),
                                       session.deadline_us);
    if (!grant.ok()) return grant.status();
    ticket = std::move(*grant);
    admitted = true;
  }

  // Generation snapshot must precede execution (the statement's MVCC
  // snapshot is taken inside): a commit that lands in between bumps the
  // generation and the store is dropped instead of caching stale rows.
  std::vector<uint64_t> generations;
  if (!resolved.result_key.empty()) {
    generations = wlm.result_cache().SnapshotGenerations(resolved.plan->tables);
  }

  QueryTrace trace;
  TraceSpan root(&trace, "statement");
  root.Attr("plan_cache", resolved.plan_state);
  root.Attr("tenant", session.tenant_id);
  if (admitted) {
    root.Attr("queued_us", ticket.queued_us);
    root.Attr("slot", ticket.slot);
  }
  auto result = ExecuteParsed(stmt, session, root.context());
  if (admitted) wlm.admission().Release(ticket);

  const char* result_cache_state =
      resolved.result_key.empty() ? "bypass" : "miss";
  if (result.ok()) {
    root.Attr("rows", static_cast<uint64_t>(result->result_set.NumRows()));
    root.Attr("affected", static_cast<uint64_t>(result->affected_rows));
    if (!resolved.result_key.empty()) {
      if (wlm.result_cache().Store(resolved.result_key, resolved.plan->tables,
                                   generations, result->result_set,
                                   result->executed_on, result->detail)) {
        result_cache_state = "store";
      }
    }
    // Precise eviction for front-door writes: auto-commit statements evict
    // now (EndAutoTxn already committed); statements inside an explicit
    // transaction defer to Commit(). CALL procedures (GROOM, ADD/LOAD
    // tables, analytics operators) mutate state outside the statement's
    // AST, so they clear conservatively.
    if (stmt.kind() == sql::StatementKind::kCall) {
      if (wlm.enabled()) wlm.result_cache().Clear();
    } else {
      std::vector<std::string> written = WrittenTables(stmt);
      if (!written.empty()) {
        if (explicit_txn_) {
          for (auto& t : written) {
            if (std::find(pending_invalidations_.begin(),
                          pending_invalidations_.end(),
                          t) == pending_invalidations_.end()) {
              pending_invalidations_.push_back(std::move(t));
            }
          }
        } else {
          wlm.result_cache().InvalidateTables(written);
        }
      }
    }
  }
  root.Attr("result_cache", result_cache_state);
  root.End();
  if (boundary_bytes != nullptr) *boundary_bytes = trace.boundary_bytes();
  const uint64_t duration_us = (TraceNowNs() - start_ns) / 1000;
  system_->histograms()
      .GetOrCreate(std::string(histo::kSqlLatencyPrefix) +
                   sql::StatementKindToString(stmt.kind()))
      .Record(duration_us);
  if (system_->slow_query_log().enabled()) {
    system_->slow_query_log().MaybeRecord(sql_text, duration_us,
                                          trace.boundary_bytes(),
                                          trace.Render());
  }
  if (result.ok()) {
    result->plan_cache = resolved.plan_state;
    result->result_cache = result_cache_state;
    result->tenant = session.tenant_id;
    if (admitted) {
      result->queued_us = ticket.queued_us;
      result->slot = ticket.slot;
    }
    // EXPLAIN ANALYZE renders its stage report from a fresh inner trace;
    // append the WLM decisions as an extra report row so they are visible
    // exactly where the ISSUE wants them.
    if (stmt.kind() == sql::StatementKind::kExplain &&
        static_cast<const sql::ExplainStatement&>(stmt).analyze &&
        result->result_set.schema().columns().size() == 3) {
      // EXPLAIN statements never take a result key themselves, so probe the
      // cache with the key a bare run of the inner SELECT would use — the
      // report shows the statement's real cache fate, not the EXPLAIN's.
      // Peek keeps hit/miss counters and LRU order untouched.
      std::string inner_cache_state = "bypass";
      if (wlm.enabled() && !explicit_txn_ && opts.use_result_cache) {
        auto norm = sql::NormalizeForCache(
            std::string(ExplainedStatementText(sql_text)),
            /*parameterize_literals=*/true);
        if (norm.ok() && norm->cacheable && !norm->has_explicit_params) {
          inner_cache_state =
              wlm.result_cache().Peek(federation::ResultCache::MakeKey(
                  norm->key, norm->params, session.acceleration))
                  ? "hit"
                  : "miss";
        }
      }
      result->result_set.Append(
          {Value::Varchar("wlm"), Value::Integer(result->queued_us),
           Value::Varchar("plan_cache=" + std::string(resolved.plan_state) +
                          " result_cache=" + inner_cache_state +
                          " tenant=" + session.tenant_id +
                          " slot=" + std::to_string(result->slot) +
                          " queued_us=" +
                          std::to_string(result->queued_us))});
    }
  }
  return result;
}

Result<federation::ExecResult> Connection::ExecuteCore(
    const std::string& sql, const federation::ExecOptions& opts,
    uint64_t* boundary_bytes) {
  if (auto control = TryControlStatement(sql)) {
    return std::move(*control);
  }
  federation::Session session = session_;
  if (opts.acceleration) session.acceleration = *opts.acceleration;
  if (opts.deadline_us != 0) session.deadline_us = opts.deadline_us;
  if (!opts.tenant_id.empty()) session.tenant_id = opts.tenant_id;

  ResolvedStatement resolved;
  sql::NormalizedStatement norm;
  if (opts.use_plan_cache) {
    auto normalized = sql::NormalizeForCache(sql, /*parameterize_literals=*/true);
    // Tokenizer errors fall through: ParseStatement reports them properly.
    if (normalized.ok()) norm = std::move(*normalized);
    if (norm.has_explicit_params) {
      return Status::InvalidArgument(
          "statement contains '?' parameter markers; use Connection::Prepare "
          "and Bind to execute it");
    }
  }
  if (norm.cacheable) {
    auto& plan_cache = system_->plan_cache();
    if (auto plan = plan_cache.Get(norm.key)) {
      auto instantiated = plan->Instantiate(norm.params);
      if (instantiated.ok()) {
        resolved.stmt = std::move(*instantiated);
        resolved.plan = std::move(plan);
        resolved.plan_state = "hit";
        system_->metrics().Increment(metric::kPlanCacheHits);
      }
    }
    if (!resolved.stmt) {
      IDAA_ASSIGN_OR_RETURN(resolved.stmt, sql::ParseStatement(sql));
      system_->metrics().Increment(metric::kPlanCacheMisses);
      resolved.plan_state = "bypass";
      // Build the shared template: parameterize a clone, then cross-check
      // the AST-collected values against the token-collected ones. Any
      // mismatch means the two walks disagree on this shape — don't cache.
      if (sql::StatementPtr tmpl = sql::CloneStatement(*resolved.stmt)) {
        std::vector<Value> ast_params;
        size_t n = sql::ParameterizeStatement(*tmpl, &ast_params);
        bool match =
            n == norm.params.size() && ast_params.size() == norm.params.size();
        for (size_t i = 0; match && i < ast_params.size(); ++i) {
          match = ast_params[i] == norm.params[i];
        }
        if (match) {
          auto plan = std::make_shared<sql::CachedPlan>();
          plan->key = norm.key;
          plan->template_stmt = std::move(tmpl);
          plan->num_params = n;
          plan->stmt_kind = resolved.stmt->kind();
          plan->tables = sql::ReferencedTables(*resolved.stmt);
          plan_cache.Put(plan);
          resolved.plan = std::move(plan);
          resolved.plan_state = "miss";
        }
      }
    }
    resolved.params = std::move(norm.params);
  } else {
    IDAA_ASSIGN_OR_RETURN(resolved.stmt, sql::ParseStatement(sql));
  }
  return ExecuteResolved(std::move(resolved), sql, session, opts,
                         boundary_bytes);
}

Result<federation::ExecResult> Connection::ExecutePrepared(
    const PreparedStatement& prepared, const federation::ExecOptions& opts,
    uint64_t* boundary_bytes) {
  if (!prepared.plan_) {
    // Statement kind outside the plan cache: re-execute from text.
    return ExecuteCore(prepared.sql_, opts, boundary_bytes);
  }
  federation::Session session = session_;
  if (opts.acceleration) session.acceleration = *opts.acceleration;
  if (opts.deadline_us != 0) session.deadline_us = opts.deadline_us;
  if (!opts.tenant_id.empty()) session.tenant_id = opts.tenant_id;

  ResolvedStatement resolved;
  IDAA_ASSIGN_OR_RETURN(resolved.stmt,
                        prepared.plan_->Instantiate(prepared.params_));
  resolved.plan = prepared.plan_;
  resolved.plan_state = "hit";
  resolved.params = prepared.params_;
  system_->metrics().Increment(metric::kPlanCacheHits);
  return ExecuteResolved(std::move(resolved), prepared.sql_, session, opts,
                         boundary_bytes);
}

Result<PreparedStatement> Connection::Prepare(const std::string& sql) {
  PreparedStatement prepared;
  prepared.conn_ = this;
  prepared.sql_ = sql;
  IDAA_ASSIGN_OR_RETURN(
      sql::NormalizedStatement norm,
      sql::NormalizeForCache(sql, /*parameterize_literals=*/false));
  if (!norm.cacheable) {
    // DDL / CALL / EXPLAIN / control statements: valid to prepare, but they
    // re-parse per Execute (no template path for those kinds).
    return prepared;
  }
  auto& plan_cache = system_->plan_cache();
  std::shared_ptr<const sql::CachedPlan> plan = plan_cache.Get(norm.key);
  if (plan == nullptr) {
    IDAA_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
    system_->metrics().Increment(metric::kPlanCacheMisses);
    auto built = std::make_shared<sql::CachedPlan>();
    built->key = norm.key;
    built->num_params = sql::CountParams(*stmt);
    built->stmt_kind = stmt->kind();
    built->tables = sql::ReferencedTables(*stmt);
    built->template_stmt = std::move(stmt);
    plan_cache.Put(built);
    plan = std::move(built);
  } else {
    system_->metrics().Increment(metric::kPlanCacheHits);
  }
  prepared.plan_ = std::move(plan);
  prepared.bound_ = prepared.plan_->num_params == 0;
  return prepared;
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

Result<federation::ExecResult> Connection::ExecuteSql(const std::string& sql) {
  return ExecuteCore(sql, {}, nullptr);
}

Result<federation::StatementResult> Connection::Execute(
    const std::string& sql, const federation::ExecOptions& opts) {
  uint64_t boundary_bytes = 0;
  IDAA_ASSIGN_OR_RETURN(federation::ExecResult result,
                        ExecuteCore(sql, opts, &boundary_bytes));
  return ToStatementResult(std::move(result), boundary_bytes);
}

Result<ResultSet> Connection::Query(const std::string& sql) {
  IDAA_ASSIGN_OR_RETURN(federation::ExecResult result, ExecuteSql(sql));
  return result.result_set;
}

analytics::SqlExecutor Connection::MakeSqlExecutor() {
  return [this](const std::string& sql) -> Result<analytics::StageResult> {
    IDAA_ASSIGN_OR_RETURN(federation::ExecResult result, ExecuteSql(sql));
    analytics::StageResult stage;
    stage.affected_rows = result.affected_rows != 0
                              ? result.affected_rows
                              : result.result_set.NumRows();
    stage.on_accelerator =
        result.executed_on == federation::Target::kAccelerator;
    stage.detail = result.detail;
    return stage;
  };
}

}  // namespace idaa
