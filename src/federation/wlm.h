// Workload management: admission control and a replication-aware result
// cache for the many-session deployments the paper's IDAA installations
// serve.
//
//   * AdmissionController — a fixed pool of execution slots with optional
//     per-tenant caps, a bounded wait queue, two priority classes
//     (interactive OLTP ahead of batch analytics) and deadline-based
//     shedding. Shed statements fail fast with a *retryable* Status
//     (kUnavailable on queue overflow, kTimeout on queue deadline), the same
//     taxonomy boundary faults use, so clients re-drive them exactly like a
//     transient accelerator outage.
//   * ResultCache — caches SELECT result sets keyed on (normalized SQL,
//     parameter values, acceleration mode) and invalidates them precisely by
//     table: every commit's captured change set, every replication apply
//     batch and every front-door DML/DDL statement evicts the written
//     tables' entries. Per-table generation counters close the
//     snapshot-vs-store race: a store whose tables changed since the
//     statement began is dropped instead of inserted.
//
// WorkloadManager bundles both with their shared options and is owned by
// IdaaSystem; Connection consults it around every statement.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/row.h"
#include "common/status.h"
#include "common/trace.h"
#include "federation/router.h"

namespace idaa::federation {

/// Two-class statement priority. Interactive statements (OLTP point lookups,
/// DML) are granted slots ahead of any waiting batch statement (long
/// analytics); within a class, FIFO wakeup order applies.
enum class Priority : uint8_t { kInteractive = 0, kBatch = 1 };

const char* PriorityToString(Priority p);

struct WlmOptions {
  /// Master switch; disabled means Admit() always grants immediately and the
  /// result cache neither serves nor stores.
  bool enabled = true;
  /// Statements executing concurrently across all sessions.
  size_t total_slots = 8;
  /// Per-tenant concurrent-statement cap (0 = no per-tenant cap).
  size_t per_tenant_slots = 0;
  /// Waiting statements (both classes) before new arrivals are shed.
  size_t max_queue_depth = 64;
  /// Queue-wait budget when neither the statement nor the session sets
  /// deadline_us.
  uint64_t default_queue_deadline_us = 2'000'000;
  /// Result-cache entry count cap (LRU beyond it).
  size_t result_cache_entries = 256;
  /// Results with more rows than this are not cached.
  size_t result_cache_max_rows = 4096;
};

/// Grants concurrency slots. Thread-safe; waiters block on a condition
/// variable and are shed on queue overflow or deadline expiry.
class AdmissionController {
 public:
  AdmissionController(const WlmOptions& options, MetricsRegistry* metrics,
                      HistogramRegistry* histograms);
  ~AdmissionController();

  /// A granted slot. Release() (or destruction of the owning Ticket) must be
  /// called exactly once per successful Admit.
  struct Ticket {
    uint64_t slot = 0;        ///< monotonically increasing grant id
    uint64_t queued_us = 0;   ///< wall time spent waiting for the grant
    std::string tenant;
    Priority priority = Priority::kInteractive;
  };

  /// Blocks until a slot is granted or the statement is shed.
  /// `deadline_us` bounds the queue wait (0 = options default). Shedding
  /// returns kUnavailable (queue full — never waited) or kTimeout (deadline
  /// expired while queued); both are Status::retryable().
  Result<Ticket> Admit(const std::string& tenant, Priority priority,
                       uint64_t deadline_us);

  /// Return the slot. Safe to call from any thread.
  void Release(const Ticket& ticket);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t queued = 0;        ///< grants that had to wait
    uint64_t shed_queue_full = 0;
    uint64_t shed_deadline = 0;
    size_t in_use = 0;
    size_t waiting = 0;
  };
  Stats stats() const;

 private:
  bool CanGrantLocked(const std::string& tenant, Priority priority) const;

  const WlmOptions options_;
  MetricsRegistry* metrics_;
  HistogramRegistry* histograms_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_use_ = 0;
  std::unordered_map<std::string, size_t> tenant_in_use_;
  size_t waiting_[2] = {0, 0};  ///< per Priority class
  uint64_t next_slot_ = 1;
  uint64_t admitted_ = 0;
  uint64_t queued_grants_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_deadline_ = 0;
};

/// SELECT result cache with per-table precise invalidation.
class ResultCache {
 public:
  ResultCache(const WlmOptions& options, MetricsRegistry* metrics);

  /// Cache key for a statement: normalized SQL key + parameter fingerprint +
  /// acceleration mode (mode changes routing, errors and therefore results).
  static std::string MakeKey(const std::string& normalized_sql,
                             const std::vector<Value>& params,
                             AccelerationMode mode);

  struct Served {
    ResultSet rows;
    Target routed_to = Target::kDb2;
    std::string detail;
  };

  /// Returns a copy of the entry for `key`, or nullopt.
  std::optional<Served> Lookup(const std::string& key);

  /// True when an entry for `key` exists. Unlike Lookup this neither counts
  /// a hit/miss nor touches LRU order — diagnostics only (EXPLAIN ANALYZE
  /// reports what a bare execution of the statement would see).
  bool Peek(const std::string& key) const;

  /// Snapshot of the generation counters for `tables` (normalized names),
  /// taken *before* the statement executes. The returned vector carries one
  /// extra trailing element (a global epoch bumped by Clear()).
  std::vector<uint64_t> SnapshotGenerations(
      const std::vector<std::string>& tables);

  /// Insert the result unless any of `tables` changed since `generations`
  /// was snapshotted (the entry would be stale on arrival) or the result is
  /// larger than the configured row cap. Returns true when stored.
  bool Store(const std::string& key, const std::vector<std::string>& tables,
             const std::vector<uint64_t>& generations, const ResultSet& rows,
             Target routed_to, const std::string& detail);

  /// Evict every entry referencing any of `tables` (normalized names) and
  /// bump their generations. The replication apply path, the commit
  /// listener and the DML statement path all funnel here.
  void InvalidateTables(const std::vector<std::string>& tables);

  /// Drop everything (DDL on unknown scope, CALL procedures, tests).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t invalidated_entries = 0;
    size_t size = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    ResultSet rows;
    Target routed_to = Target::kDb2;
    std::string detail;
    std::vector<std::string> tables;
    std::list<std::string>::iterator lru_it;
  };

  void EraseLocked(const std::string& key);

  const WlmOptions options_;
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< front = most recently used
  /// table -> keys of entries referencing it.
  std::unordered_map<std::string, std::vector<std::string>> by_table_;
  /// table -> generation, bumped on every invalidation.
  std::unordered_map<std::string, uint64_t> generations_;
  /// Bumped by Clear() so in-flight stores that began before a full clear
  /// are dropped even for tables with no per-table generation yet.
  uint64_t epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t stores_ = 0;
  uint64_t invalidated_entries_ = 0;
};

/// Owner facade: one per IdaaSystem.
class WorkloadManager {
 public:
  WorkloadManager(const WlmOptions& options, MetricsRegistry* metrics,
                  HistogramRegistry* histograms);

  bool enabled() const { return options_.enabled; }
  const WlmOptions& options() const { return options_; }
  AdmissionController& admission() { return admission_; }
  ResultCache& result_cache() { return result_cache_; }

 private:
  const WlmOptions options_;
  AdmissionController admission_;
  ResultCache result_cache_;
};

}  // namespace idaa::federation
