// TransferChannel: the metered data path between DB2 and the accelerator
// (the DRDA/network link in the real product). Rows crossing the boundary
// are serialized to a binary wire format and deserialized on the other
// side, so every transfer has a real CPU cost and an exact byte count —
// the quantity the paper's AOT design minimizes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/column_table.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/trace.h"

namespace idaa::federation {

/// Serialize one row (length-prefixed, type-tagged values).
void EncodeRow(const Row& row, std::vector<uint8_t>* out);

/// Deserialize one row; advances *offset. Errors on malformed input.
Result<Row> DecodeRow(const std::vector<uint8_t>& buffer, size_t* offset);

/// Serialize a columnar batch (the loader's bulk wire format): the schema
/// fixes each column's type, so values travel as packed typed vectors with
/// a null bitmap instead of per-value tags — no Value boxing on either
/// side. Only DOUBLE/INTEGER/VARCHAR columns are supported (matching
/// ColumnarRows).
Status EncodeColumnar(const accel::ColumnarRows& rows, const Schema& schema,
                      std::vector<uint8_t>* out);

/// Deserialize a columnar batch; advances *offset. Errors on malformed
/// input or a schema mismatch.
Result<accel::ColumnarRows> DecodeColumnar(const std::vector<uint8_t>& buffer,
                                           const Schema& schema,
                                           size_t* offset);

class TransferChannel {
 public:
  explicit TransferChannel(MetricsRegistry* metrics) : metrics_(metrics) {}

  /// Ship rows DB2 -> accelerator. Returns the decoded rows as they arrive
  /// on the accelerator side (a genuine encode/decode round). With a trace
  /// context, records an `xfer.to_accel` span (encode/decode children,
  /// rows + bytes) and accumulates the trace's boundary byte count.
  Result<std::vector<Row>> SendRowsToAccelerator(const std::vector<Row>& rows,
                                                 TraceContext tc = {});

  /// Ship a columnar batch DB2/loader -> accelerator over the packed
  /// columnar wire format (`xfer.columnar_to_accel` span). Same metering
  /// and fault site as SendRowsToAccelerator, a fraction of the CPU cost.
  Result<accel::ColumnarRows> SendColumnarToAccelerator(
      const accel::ColumnarRows& rows, const Schema& schema,
      TraceContext tc = {});

  /// Ship a result set accelerator -> DB2 (`xfer.from_accel` span).
  Result<ResultSet> FetchResultFromAccelerator(const ResultSet& result,
                                               TraceContext tc = {});

  /// Ship a statement string DB2 -> accelerator (metered, tiny). Fails
  /// only when the fault injector is armed on the statement site.
  Status SendStatement(const std::string& sql, TraceContext tc = {});

  /// Inject faults on this channel's sites (nullptr disables; default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  uint64_t bytes_to_accelerator() const {
    return metrics_->Get(metric::kFederationBytesToAccel);
  }
  uint64_t bytes_from_accelerator() const {
    return metrics_->Get(metric::kFederationBytesFromAccel);
  }

 private:
  /// OK when no injector is wired or the site draw passes; otherwise the
  /// injected fault, metered and trace-visible.
  Status MaybeInject(const char* site, TraceContext tc);

  MetricsRegistry* metrics_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace idaa::federation
