// Router: decides for every statement whether it runs in DB2 or on the
// accelerator, driven by table kinds (regular / accelerated / AOT) and the
// session's acceleration mode — the behaviour DB2 exposes through the
// CURRENT QUERY ACCELERATION special register.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace idaa::federation {

/// Session-level acceleration preference (models DB2's special register).
enum class AccelerationMode : uint8_t {
  kNone = 0,  ///< never offload; AOT access fails
  kEnable,    ///< offload when the heuristic says the query is analytical
  kEligible,  ///< offload whenever all referenced tables are on the accelerator
  kAll,       ///< like kEligible, but fail instead of running on DB2
  /// Like kEnable, but reads on *accelerated* tables transparently
  /// re-execute on DB2 when the accelerator fails with a retryable error
  /// (DB2's ENABLE WITH FAILBACK). AOTs have no DB2 copy and still fail.
  kEnableWithFailback,
};

/// Typed name the redesigned execution API (ExecOptions) uses for the
/// register value; same domain as the session register.
using QueryAcceleration = AccelerationMode;

const char* AccelerationModeToString(AccelerationMode mode);

/// True for modes under which an accelerated-table read may fail back.
inline bool AccelerationAllowsFailback(AccelerationMode mode) {
  return mode == AccelerationMode::kEnableWithFailback;
}

enum class Target : uint8_t { kDb2, kAccelerator };

struct RoutingDecision {
  Target target = Target::kDb2;
  std::string reason;
  /// True when the decision routed to DB2 only because the accelerator is
  /// unhealthy and the mode allows failback (pre-execution failback).
  bool failed_back = false;
};

/// Classification of the tables a statement touches.
struct TableClassification {
  bool any_aot = false;
  bool any_accelerated = false;
  bool any_db2_only = false;
  size_t num_tables = 0;
  /// Distinct accelerators hosting the touched accelerator-side tables.
  std::vector<std::string> accelerator_names;
};

class Router {
 public:
  explicit Router(const Catalog* catalog) : catalog_(catalog) {}

  /// Optional cardinality source (live row count of a table). With it, the
  /// ENABLE heuristic also offloads large non-aggregating scans: even a
  /// plain filter over millions of rows belongs on the accelerator.
  using RowCountFn = std::function<size_t(const TableInfo&)>;
  void set_row_count_fn(RowCountFn fn) { row_count_fn_ = std::move(fn); }

  /// Scan-size threshold above which ENABLE offloads non-analytical
  /// queries (default 50'000 rows).
  void set_enable_row_threshold(size_t rows) { enable_row_threshold_ = rows; }

  /// Optional health source: "is this accelerator worth sending work to?"
  /// (Online state + circuit breaker). Under ENABLE WITH FAILBACK the
  /// router pre-fails-back to DB2 when the hosting accelerator is
  /// unhealthy instead of letting the statement fail first.
  using AccelHealthFn = std::function<bool(const std::string&)>;
  void set_accel_health_fn(AccelHealthFn fn) {
    accel_health_fn_ = std::move(fn);
  }

  /// Classify the referenced tables of any statement.
  Result<TableClassification> Classify(
      const std::vector<std::string>& tables) const;

  /// Route a SELECT. Errors when an AOT is referenced together with a
  /// DB2-only table, or with acceleration NONE.
  Result<RoutingDecision> RouteSelect(const sql::SelectStatement& stmt,
                                      AccelerationMode mode) const;

  /// True when the SELECT looks analytical (joins, grouping, aggregation,
  /// DISTINCT) — the offload heuristic for AccelerationMode::kEnable.
  static bool LooksAnalytical(const sql::SelectStatement& stmt);

  /// True when the predicate has a top-level AND conjunct `column = literal`
  /// (either operand order) on the named column — the index-awareness probe
  /// of the ENABLE heuristic.
  static bool HasEqualityOn(const sql::Expr& predicate,
                            const std::string& column);

 private:
  const Catalog* catalog_;
  RowCountFn row_count_fn_;
  AccelHealthFn accel_health_fn_;
  size_t enable_row_threshold_ = 50000;
};

}  // namespace idaa::federation
