#include "federation/router.h"

#include <algorithm>

#include "common/string_util.h"

#include "sql/binder.h"

namespace idaa::federation {

const char* AccelerationModeToString(AccelerationMode mode) {
  switch (mode) {
    case AccelerationMode::kNone: return "NONE";
    case AccelerationMode::kEnable: return "ENABLE";
    case AccelerationMode::kEligible: return "ELIGIBLE";
    case AccelerationMode::kAll: return "ALL";
    case AccelerationMode::kEnableWithFailback: return "ENABLE WITH FAILBACK";
  }
  return "?";
}

Result<TableClassification> Router::Classify(
    const std::vector<std::string>& tables) const {
  TableClassification out;
  for (const std::string& name : tables) {
    IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(name));
    ++out.num_tables;
    switch (info->kind) {
      case TableKind::kAcceleratorOnly:
        out.any_aot = true;
        break;
      case TableKind::kAccelerated:
        out.any_accelerated = true;
        break;
      case TableKind::kDb2Only:
        out.any_db2_only = true;
        break;
    }
    if (info->kind != TableKind::kDb2Only && !info->accelerator_name.empty()) {
      auto& names = out.accelerator_names;
      if (std::find(names.begin(), names.end(), info->accelerator_name) ==
          names.end()) {
        names.push_back(info->accelerator_name);
      }
    }
  }
  return out;
}

namespace {

/// True when the predicate has a top-level AND conjunct of the form
/// `<column> = <literal>` (either side) on the named column.
bool HasEqualityOnImpl(const sql::Expr& e, const std::string& column) {
  if (e.kind == sql::ExprKind::kBinary &&
      e.binary_op == sql::BinaryOp::kAnd) {
    return HasEqualityOnImpl(*e.children[0], column) ||
           HasEqualityOnImpl(*e.children[1], column);
  }
  if (e.kind == sql::ExprKind::kBinary && e.binary_op == sql::BinaryOp::kEq) {
    const sql::Expr& lhs = *e.children[0];
    const sql::Expr& rhs = *e.children[1];
    auto is_col = [&column](const sql::Expr& x) {
      return x.kind == sql::ExprKind::kColumnRef &&
             EqualsIgnoreCase(x.column_name, column);
    };
    auto is_lit = [](const sql::Expr& x) {
      return x.kind == sql::ExprKind::kLiteral;
    };
    return (is_col(lhs) && is_lit(rhs)) || (is_col(rhs) && is_lit(lhs));
  }
  return false;
}

}  // namespace

bool Router::HasEqualityOn(const sql::Expr& predicate,
                           const std::string& column) {
  return HasEqualityOnImpl(predicate, column);
}

bool Router::LooksAnalytical(const sql::SelectStatement& stmt) {
  if (!stmt.joins.empty()) return true;
  if (!stmt.group_by.empty()) return true;
  if (stmt.distinct) return true;
  auto contains_aggregate = [](const sql::Expr& e) {
    // Recursive lambda via explicit stack.
    std::vector<const sql::Expr*> stack = {&e};
    while (!stack.empty()) {
      const sql::Expr* cur = stack.back();
      stack.pop_back();
      if (cur->kind == sql::ExprKind::kFunctionCall &&
          sql::IsAggregateFunction(cur->function_name)) {
        return true;
      }
      for (const auto& child : cur->children) stack.push_back(child.get());
    }
    return false;
  };
  for (const auto& item : stmt.items) {
    if (contains_aggregate(*item.expr)) return true;
  }
  return false;
}

Result<RoutingDecision> Router::RouteSelect(const sql::SelectStatement& stmt,
                                            AccelerationMode mode) const {
  std::vector<std::string> tables = sql::ReferencedTables(stmt);
  IDAA_ASSIGN_OR_RETURN(TableClassification cls, Classify(tables));

  if (cls.num_tables == 0) {
    return RoutingDecision{Target::kDb2, "table-less SELECT runs locally"};
  }
  if (cls.any_aot) {
    if (mode == AccelerationMode::kNone) {
      return Status::SemanticError(
          "statement references an accelerator-only table but CURRENT QUERY "
          "ACCELERATION is NONE");
    }
    if (cls.any_db2_only) {
      return Status::SemanticError(
          "cannot join accelerator-only tables with tables that exist only "
          "in DB2");
    }
    return RoutingDecision{Target::kAccelerator,
                           "references accelerator-only table(s)"};
  }
  if (cls.any_db2_only || mode == AccelerationMode::kNone) {
    if (mode == AccelerationMode::kAll && cls.any_db2_only &&
        cls.any_accelerated) {
      return Status::SemanticError(
          "acceleration ALL but statement references non-accelerated tables");
    }
    return RoutingDecision{
        Target::kDb2, cls.any_db2_only ? "references non-accelerated tables"
                                       : "acceleration disabled"};
  }
  // All tables are accelerated.
  // Pre-execution failback: when the mode allows falling back to the DB2
  // copies and the hosting accelerator is known-unhealthy (offline or
  // breaker open), do not even try — route straight to DB2.
  if (AccelerationAllowsFailback(mode) && accel_health_fn_) {
    for (const std::string& accel : cls.accelerator_names) {
      if (!accel_health_fn_(accel)) {
        return RoutingDecision{
            Target::kDb2,
            "failback: accelerator " + accel + " is unhealthy", true};
      }
    }
  }
  switch (mode) {
    case AccelerationMode::kEligible:
    case AccelerationMode::kAll:
      return RoutingDecision{Target::kAccelerator,
                             "all tables accelerated, mode " +
                                 std::string(AccelerationModeToString(mode))};
    case AccelerationMode::kEnable:
    case AccelerationMode::kEnableWithFailback: {
      if (LooksAnalytical(stmt)) {
        return RoutingDecision{Target::kAccelerator,
                               "heuristic: analytical query shape"};
      }
      // Indexable point queries belong in DB2 regardless of table size.
      if (stmt.joins.empty() && stmt.from && stmt.where) {
        auto info = catalog_->GetTable(stmt.from->table_name);
        if (info.ok() && (*info)->schema.NumColumns() > 0 &&
            HasEqualityOn(*stmt.where, (*info)->schema.Column(0).name)) {
          return RoutingDecision{Target::kDb2,
                                 "heuristic: indexable point query"};
        }
      }
      if (row_count_fn_) {
        size_t total = 0;
        for (const std::string& name : tables) {
          auto info = catalog_->GetTable(name);
          if (info.ok()) total += row_count_fn_(**info);
        }
        if (total >= enable_row_threshold_) {
          return RoutingDecision{
              Target::kAccelerator,
              "heuristic: large scan (" + std::to_string(total) + " rows)"};
        }
      }
      return RoutingDecision{Target::kDb2,
                             "heuristic: short transactional query shape"};
    }
    case AccelerationMode::kNone:
      break;  // handled above
  }
  return RoutingDecision{Target::kDb2, "default"};
}

}  // namespace idaa::federation
