#include "federation/health_monitor.h"

namespace idaa {
namespace federation {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "CLOSED";
    case BreakerState::kOpen:
      return "OPEN";
    case BreakerState::kHalfOpen:
      return "HALF_OPEN";
  }
  return "UNKNOWN";
}

void HealthMonitor::set_trip_threshold(uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  trip_threshold_ = n == 0 ? 1 : n;
}

void HealthMonitor::set_cooldown_us(uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  cooldown_us_ = us;
}

void HealthMonitor::RecordSuccess(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[site];
  b.consecutive_failures = 0;
  b.probe_outstanding = false;
  b.state = BreakerState::kClosed;
}

void HealthMonitor::RecordFailure(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[site];
  ++b.consecutive_failures;
  if (b.state == BreakerState::kHalfOpen) {
    // Probe failed: straight back to Open, restart the cooldown.
    b.state = BreakerState::kOpen;
    b.opened_at_ns = TraceNowNs();
    b.probe_outstanding = false;
    ++b.trips;
    if (metrics_) metrics_->Increment(metric::kBreakerTrips);
  } else if (b.state == BreakerState::kClosed &&
             b.consecutive_failures >= trip_threshold_) {
    b.state = BreakerState::kOpen;
    b.opened_at_ns = TraceNowNs();
    ++b.trips;
    if (metrics_) metrics_->Increment(metric::kBreakerTrips);
  }
}

bool HealthMonitor::CooldownElapsed(const Breaker& b) const {
  return TraceNowNs() - b.opened_at_ns >= cooldown_us_ * 1000;
}

bool HealthMonitor::AllowRequest(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(site);
  if (it == breakers_.end()) return true;
  Breaker& b = it->second;
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (CooldownElapsed(b)) {
        b.state = BreakerState::kHalfOpen;
        b.probe_outstanding = true;
        if (metrics_) metrics_->Increment(metric::kBreakerProbes);
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      if (!b.probe_outstanding) {
        b.probe_outstanding = true;
        if (metrics_) metrics_->Increment(metric::kBreakerProbes);
        return true;
      }
      return false;
  }
  return true;
}

bool HealthMonitor::Probeable(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(site);
  if (it == breakers_.end()) return true;
  const Breaker& b = it->second;
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return CooldownElapsed(b);
    case BreakerState::kHalfOpen:
      // While the single probe is outstanding AllowRequest would reject,
      // so routing there would only fail — mirror the gate.
      return !b.probe_outstanding;
  }
  return true;
}

BreakerState HealthMonitor::state(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(site);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

uint32_t HealthMonitor::consecutive_failures(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(site);
  return it == breakers_.end() ? 0 : it->second.consecutive_failures;
}

uint64_t HealthMonitor::trips(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(site);
  return it == breakers_.end() ? 0 : it->second.trips;
}

void HealthMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_.clear();
}

}  // namespace federation
}  // namespace idaa
