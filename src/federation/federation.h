// FederationEngine: the IDAA integration layer — the paper's primary
// contribution. It owns statement orchestration across DB2 and the
// accelerator:
//   * DDL: CREATE TABLE ... IN ACCELERATOR creates the AOT on the
//     accelerator and only a proxy (nickname) entry in the DB2 catalog;
//   * routing: queries on AOTs are always delegated; queries on accelerated
//     tables are offloaded per the acceleration mode; INSERT ... SELECT
//     between AOTs runs entirely on the accelerator with zero DB2
//     materialization (the ELT optimization);
//   * transaction context propagation: every delegated statement carries
//     the DB2 transaction id and snapshot so the accelerator's MVCC shows
//     own uncommitted changes and a consistent snapshot of everything else;
//   * governance: privileges are checked and audited at the DB2 front door
//     before anything is delegated.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/trace.h"
#include "db2/db2_engine.h"
#include "federation/health_monitor.h"
#include "federation/router.h"
#include "federation/transfer_channel.h"
#include "federation/wlm.h"
#include "governance/audit_log.h"
#include "governance/authorization.h"
#include "replication/replication_service.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "txn/transaction_manager.h"

namespace idaa::federation {

/// Per-connection state.
struct Session {
  std::string user = governance::AuthorizationManager::kAdmin;
  AccelerationMode acceleration = AccelerationMode::kEligible;
  /// Wall-clock budget for boundary retries and WLM queue waits
  /// (0 = engine default only).
  uint64_t deadline_us = 0;
  /// WLM tenant this session's statements are accounted against.
  std::string tenant_id = "default";
};

/// Outcome of one statement.
struct ExecResult {
  ResultSet result_set;        ///< SELECT / CALL output
  size_t affected_rows = 0;    ///< DML row count
  Target executed_on = Target::kDb2;
  std::string detail;          ///< routing reason etc.
  uint32_t retries = 0;        ///< boundary retries this statement needed
  bool failed_back = false;    ///< re-executed on DB2 after accelerator error
  // --- workload management observability (filled by Connection) ---
  std::string plan_cache;      ///< "hit" | "miss" | "bypass"
  std::string result_cache;    ///< "hit" | "miss" | "store" | "bypass"
  uint64_t queued_us = 0;      ///< WLM admission queue wait
  std::string tenant;          ///< tenant the statement was accounted to
  uint64_t slot = 0;           ///< admission slot grant id (0 = not gated)
};

/// Per-statement options for the redesigned Connection::Execute API.
struct ExecOptions {
  /// Overrides the session's CURRENT QUERY ACCELERATION for this statement.
  std::optional<QueryAcceleration> acceleration;
  /// Overrides the session's retry + WLM queue deadline (microseconds,
  /// 0 = inherit).
  uint64_t deadline_us = 0;
  /// Overrides the session's WLM tenant (empty = inherit).
  std::string tenant_id;
  /// Overrides the router's interactive-vs-batch classification.
  std::optional<Priority> priority;
  /// Consult / populate the normalized-SQL plan cache.
  bool use_plan_cache = true;
  /// Serve from and store into the replication-aware result cache
  /// (auto-commit SELECTs only; never inside an explicit transaction).
  bool use_result_cache = true;
};

/// Outcome of one statement through the redesigned API: everything a
/// caller needs to observe routing, data movement and fault handling.
struct StatementResult {
  ResultSet rows;              ///< SELECT / CALL output
  size_t rows_affected = 0;    ///< DML row count
  Target routed_to = Target::kDb2;
  uint64_t boundary_bytes = 0;  ///< bytes moved DB2 <-> accelerator
  uint32_t retries = 0;         ///< boundary retries
  bool failed_back = false;     ///< re-executed on DB2 after accel failure
  std::string detail;           ///< routing reason / failback cause
  // --- workload management observability ---
  std::string plan_cache;       ///< "hit" | "miss" | "bypass"
  std::string result_cache;     ///< "hit" | "miss" | "store" | "bypass"
  uint64_t queued_us = 0;       ///< WLM admission queue wait
  std::string tenant;           ///< tenant the statement was accounted to
  uint64_t slot = 0;            ///< admission slot grant id (0 = not gated)
};

/// Hook for CALL statements the engine does not handle itself (the
/// in-database analytics framework registers here). `tc` is the statement's
/// trace context, parented under the accel.execute span, so operator stages
/// show up in EXPLAIN ANALYZE.
using ProcedureHandler = std::function<Result<ResultSet>(
    const std::string& name, const std::vector<Value>& args, Transaction* txn,
    const Session& session, TraceContext tc)>;

class FederationEngine {
 public:
  /// A DB2 may have several accelerators attached; `accelerators` must be
  /// non-empty. Tables are placed on one accelerator (explicitly or
  /// balanced) and statements resolve to their tables' accelerator.
  FederationEngine(Catalog* catalog, db2::Db2Engine* db2,
                   std::vector<accel::Accelerator*> accelerators,
                   TransactionManager* tm,
                   replication::ReplicationService* replication,
                   TransferChannel* channel,
                   governance::AuthorizationManager* authorization,
                   governance::AuditLog* audit, MetricsRegistry* metrics)
      : catalog_(catalog), db2_(db2), accelerators_(std::move(accelerators)),
        tm_(tm), replication_(replication), channel_(channel),
        auth_(authorization), audit_(audit), metrics_(metrics),
        router_(catalog), health_(metrics) {}

  /// Execute one parsed statement in the given session and transaction.
  /// With a trace context, routing, binding, engine execution and boundary
  /// transfers are recorded as spans (EXPLAIN ANALYZE / slow-query log).
  Result<ExecResult> Execute(const sql::Statement& stmt, const Session& session,
                             Transaction* txn, TraceContext tc = {});

  /// Admin API behind CALL SYSPROC.ACCEL_ADD_TABLES: snapshot the DB2 table,
  /// ship it through the channel, create the replica, and subscribe it to
  /// incremental update. With an empty `accelerator_name` the least-loaded
  /// attached accelerator is chosen.
  Status AddTableToAccelerator(const std::string& table_name, Transaction* txn,
                               const std::string& accelerator_name = "");

  /// Resolve an attached accelerator by name (error when unknown).
  Result<accel::Accelerator*> AcceleratorByName(const std::string& name) const;

  /// The accelerator hosting a table's accelerator-side data regardless of
  /// state (pure placement lookup).
  Result<accel::Accelerator*> AcceleratorHostingTable(
      const TableInfo& info) const;

  /// Like AcceleratorHostingTable, but errors with kUnavailable — naming
  /// the accelerator, its state and the statement kind `op` — when the
  /// accelerator is not Online.
  Result<accel::Accelerator*> AcceleratorForTable(
      const TableInfo& info, const char* op = "statement") const;

  /// Replication apply target: accepts Online AND Recovering accelerators
  /// (catch-up applies must land while queries are still rejected).
  Result<accel::Accelerator*> AcceleratorForReplication(
      const TableInfo& info) const;

  /// CALL SYSPROC.ACCEL_REMOVE_TABLES.
  Status RemoveTableFromAccelerator(const std::string& table_name);

  /// CALL SYSPROC.ACCEL_LOAD_TABLES: re-snapshot an accelerated table's
  /// replica from DB2 (recovery from divergence or a long replication
  /// outage).
  Status ReloadAcceleratedTable(const std::string& table_name,
                                Transaction* txn);

  void set_procedure_handler(ProcedureHandler handler) {
    procedure_handler_ = std::move(handler);
  }

  /// Backoff schedule for boundary-crossing retries (session deadlines
  /// override the policy's deadline per statement).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Per-accelerator circuit breakers consulted by routing and execution.
  HealthMonitor& health() { return health_; }
  const HealthMonitor& health() const { return health_; }

  /// Content comparison DB2 vs accelerator replica for one accelerated
  /// table (or all, when `table_name` is empty): the convergence check run
  /// after an offline -> online cycle. Row multisets must match; the
  /// caller should quiesce writers (or Flush) first, since DB2 reads
  /// latest-committed while the accelerator reads the txn snapshot.
  Result<ResultSet> VerifyAcceleratedTables(const std::string& table_name,
                                            Transaction* txn);

  const Router& router() const { return router_; }
  Router& mutable_router() { return router_; }

 private:
  Result<ExecResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                   const Session& session, Transaction* txn,
                                   TraceContext tc = {});
  Result<ExecResult> ExecuteInsert(const sql::InsertStatement& stmt,
                                   const Session& session, Transaction* txn,
                                   TraceContext tc = {});
  Result<ExecResult> ExecuteUpdate(const sql::UpdateStatement& stmt,
                                   const Session& session, Transaction* txn,
                                   TraceContext tc = {});
  Result<ExecResult> ExecuteDelete(const sql::DeleteStatement& stmt,
                                   const Session& session, Transaction* txn,
                                   TraceContext tc = {});
  Result<ExecResult> ExecuteCreateTable(const sql::CreateTableStatement& stmt,
                                        const Session& session,
                                        Transaction* txn);
  Result<ExecResult> ExecuteDropTable(const sql::DropTableStatement& stmt,
                                      const Session& session);
  Result<ExecResult> ExecuteGrantRevoke(const sql::Statement& stmt,
                                        const Session& session);
  Result<ExecResult> ExecuteCall(const sql::CallStatement& stmt,
                                 const Session& session, Transaction* txn,
                                 TraceContext tc = {});
  /// EXPLAIN renders the static plan; EXPLAIN ANALYZE additionally runs the
  /// statement under a fresh trace and reports the timed stage tree.
  Result<ExecResult> ExecuteExplain(const sql::ExplainStatement& stmt,
                                    const Session& session, Transaction* txn);

  /// Run a bound SELECT on the chosen target and return its (unmetered)
  /// result; the caller meters when the result crosses the boundary.
  Result<ResultSet> RunSelectOn(Target target, const sql::BoundSelect& plan,
                                Transaction* txn, TraceContext tc = {});

  /// Accelerated SELECT with the full fault-tolerance treatment: breaker
  /// gate, statement shipping, execution, optional result fetch, all under
  /// the retry policy. Accumulates retries into *retries and records the
  /// statement outcome with the health monitor.
  Result<ResultSet> AccelSelectWithRetry(const std::string& sql_text,
                                         const sql::BoundSelect& plan,
                                         const Session& session,
                                         Transaction* txn, TraceContext tc,
                                         uint32_t* retries, bool fetch_result);

  /// Effective retry policy for a session (deadline override applied).
  RetryPolicy PolicyFor(const Session& session) const;

  /// Shard-granular breaker accounting for a statement outcome against a
  /// sharded accelerator: each non-Online shard's site ("<name>#<i>")
  /// records the failure, Online shards record successes — so one dead
  /// shard trips only its own breaker while the logical accelerator stays
  /// attached. No-op for a plain (1-instance) accelerator.
  void RecordShardHealth(const std::string& name, bool success);

  /// Individual boundary crossings under the retry policy (DML / load
  /// paths). Each accumulates its retries into *retries when non-null.
  Result<std::vector<Row>> SendRowsRetry(const std::vector<Row>& rows,
                                         const Session& session,
                                         TraceContext tc, uint32_t* retries);
  Result<ResultSet> FetchResultRetry(const ResultSet& result,
                                     const Session& session, TraceContext tc,
                                     uint32_t* retries);
  Status SendStatementRetry(const std::string& sql, const Session& session,
                            TraceContext tc, uint32_t* retries);

  /// The single accelerator all of the plan's tables live on (error when
  /// they span accelerators or it is not Online).
  Result<accel::Accelerator*> AcceleratorForPlan(const sql::BoundSelect& plan,
                                                 const char* op
                                                 = "statement") const;

  /// Placement choice for new accelerator-side tables.
  accel::Accelerator* LeastLoadedAccelerator() const;

  /// Governance check + audit record.
  Status Authorize(const Session& session, const std::string& object,
                   governance::Privilege privilege, const std::string& action);

  /// Map source-result rows into full-width target rows per column_mapping.
  static std::vector<Row> MapRows(const std::vector<Row>& source,
                                  const std::vector<size_t>& mapping,
                                  size_t target_width);

  Catalog* catalog_;
  db2::Db2Engine* db2_;
  std::vector<accel::Accelerator*> accelerators_;
  TransactionManager* tm_;
  replication::ReplicationService* replication_;
  TransferChannel* channel_;
  governance::AuthorizationManager* auth_;
  governance::AuditLog* audit_;
  MetricsRegistry* metrics_;
  Router router_;
  HealthMonitor health_;
  RetryPolicy retry_policy_;
  ProcedureHandler procedure_handler_;
};

}  // namespace idaa::federation
