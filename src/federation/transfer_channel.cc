#include "federation/transfer_channel.h"

#include <cstring>

namespace idaa::federation {

namespace {

enum WireTag : uint8_t {
  kTagNull = 0,
  kTagBoolean,
  kTagInteger,
  kTagDouble,
  kTagVarchar,
  kTagDate,
  kTagTimestamp,
};

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(v), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

Result<uint32_t> GetU32(const std::vector<uint8_t>& buf, size_t* offset) {
  if (*offset + 4 > buf.size()) {
    return Status::Internal("wire format underflow (u32)");
  }
  uint32_t v = static_cast<uint32_t>(buf[*offset]) |
               static_cast<uint32_t>(buf[*offset + 1]) << 8 |
               static_cast<uint32_t>(buf[*offset + 2]) << 16 |
               static_cast<uint32_t>(buf[*offset + 3]) << 24;
  *offset += 4;
  return v;
}

Result<uint64_t> GetU64(const std::vector<uint8_t>& buf, size_t* offset) {
  IDAA_ASSIGN_OR_RETURN(uint32_t lo, GetU32(buf, offset));
  IDAA_ASSIGN_OR_RETURN(uint32_t hi, GetU32(buf, offset));
  return static_cast<uint64_t>(hi) << 32 | lo;
}

}  // namespace

void EncodeRow(const Row& row, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(row.size()), out);
  for (const Value& v : row) {
    if (v.is_null()) {
      out->push_back(kTagNull);
    } else if (v.is_boolean()) {
      out->push_back(kTagBoolean);
      out->push_back(v.AsBoolean() ? 1 : 0);
    } else if (v.is_integer()) {
      out->push_back(kTagInteger);
      PutU64(static_cast<uint64_t>(v.AsInteger()), out);
    } else if (v.is_double()) {
      out->push_back(kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits, out);
    } else if (v.is_varchar()) {
      out->push_back(kTagVarchar);
      const std::string& s = v.AsVarchar();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->insert(out->end(), s.begin(), s.end());
    } else if (v.is_date()) {
      out->push_back(kTagDate);
      PutU32(static_cast<uint32_t>(v.AsDate()), out);
    } else {
      out->push_back(kTagTimestamp);
      PutU64(static_cast<uint64_t>(v.AsTimestamp()), out);
    }
  }
}

Result<Row> DecodeRow(const std::vector<uint8_t>& buffer, size_t* offset) {
  IDAA_ASSIGN_OR_RETURN(uint32_t arity, GetU32(buffer, offset));
  Row row;
  row.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    if (*offset >= buffer.size()) {
      return Status::Internal("wire format underflow (tag)");
    }
    uint8_t tag = buffer[(*offset)++];
    switch (tag) {
      case kTagNull:
        row.push_back(Value::Null());
        break;
      case kTagBoolean: {
        if (*offset >= buffer.size()) {
          return Status::Internal("wire format underflow (bool)");
        }
        row.push_back(Value::Boolean(buffer[(*offset)++] != 0));
        break;
      }
      case kTagInteger: {
        IDAA_ASSIGN_OR_RETURN(uint64_t v, GetU64(buffer, offset));
        row.push_back(Value::Integer(static_cast<int64_t>(v)));
        break;
      }
      case kTagDouble: {
        IDAA_ASSIGN_OR_RETURN(uint64_t bits, GetU64(buffer, offset));
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value::Double(d));
        break;
      }
      case kTagVarchar: {
        IDAA_ASSIGN_OR_RETURN(uint32_t len, GetU32(buffer, offset));
        if (*offset + len > buffer.size()) {
          return Status::Internal("wire format underflow (string)");
        }
        row.push_back(Value::Varchar(std::string(
            buffer.begin() + static_cast<long>(*offset),
            buffer.begin() + static_cast<long>(*offset + len))));
        *offset += len;
        break;
      }
      case kTagDate: {
        IDAA_ASSIGN_OR_RETURN(uint32_t v, GetU32(buffer, offset));
        row.push_back(Value::Date(static_cast<int32_t>(v)));
        break;
      }
      case kTagTimestamp: {
        IDAA_ASSIGN_OR_RETURN(uint64_t v, GetU64(buffer, offset));
        row.push_back(Value::Timestamp(static_cast<int64_t>(v)));
        break;
      }
      default:
        return Status::Internal("unknown wire tag: " + std::to_string(tag));
    }
  }
  return row;
}

Status EncodeColumnar(const accel::ColumnarRows& rows, const Schema& schema,
                      std::vector<uint8_t>* out) {
  if (rows.columns.size() != schema.NumColumns()) {
    return Status::InvalidArgument("columnar encode: column count mismatch");
  }
  PutU64(rows.num_rows, out);
  for (size_t c = 0; c < rows.columns.size(); ++c) {
    const accel::ColumnarRows::Col& col = rows.columns[c];
    const bool has_nulls = !col.nulls.empty();
    out->push_back(has_nulls ? 1 : 0);
    if (has_nulls) {
      out->insert(out->end(), col.nulls.begin(), col.nulls.end());
    }
    switch (schema.Column(c).type) {
      case DataType::kDouble:
        for (double d : col.doubles) {
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          PutU64(bits, out);
        }
        break;
      case DataType::kInteger:
        for (int64_t v : col.ints) PutU64(static_cast<uint64_t>(v), out);
        break;
      case DataType::kVarchar:
        for (const std::string& s : col.strings) {
          PutU32(static_cast<uint32_t>(s.size()), out);
          out->insert(out->end(), s.begin(), s.end());
        }
        break;
      default:
        return Status::InvalidArgument(
            "columnar wire format supports DOUBLE/INTEGER/VARCHAR only");
    }
  }
  return Status::OK();
}

Result<accel::ColumnarRows> DecodeColumnar(const std::vector<uint8_t>& buffer,
                                           const Schema& schema,
                                           size_t* offset) {
  accel::ColumnarRows rows;
  IDAA_ASSIGN_OR_RETURN(uint64_t num_rows, GetU64(buffer, offset));
  rows.num_rows = static_cast<size_t>(num_rows);
  rows.columns.resize(schema.NumColumns());
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    accel::ColumnarRows::Col& col = rows.columns[c];
    if (*offset >= buffer.size()) {
      return Status::Internal("wire format underflow (null flag)");
    }
    const bool has_nulls = buffer[(*offset)++] != 0;
    if (has_nulls) {
      if (*offset + rows.num_rows > buffer.size()) {
        return Status::Internal("wire format underflow (null bitmap)");
      }
      col.nulls.assign(buffer.begin() + static_cast<long>(*offset),
                       buffer.begin() + static_cast<long>(*offset) +
                           static_cast<long>(rows.num_rows));
      *offset += rows.num_rows;
    }
    switch (schema.Column(c).type) {
      case DataType::kDouble:
        col.doubles.reserve(rows.num_rows);
        for (size_t r = 0; r < rows.num_rows; ++r) {
          IDAA_ASSIGN_OR_RETURN(uint64_t bits, GetU64(buffer, offset));
          double d;
          std::memcpy(&d, &bits, sizeof(d));
          col.doubles.push_back(d);
        }
        break;
      case DataType::kInteger:
        col.ints.reserve(rows.num_rows);
        for (size_t r = 0; r < rows.num_rows; ++r) {
          IDAA_ASSIGN_OR_RETURN(uint64_t v, GetU64(buffer, offset));
          col.ints.push_back(static_cast<int64_t>(v));
        }
        break;
      case DataType::kVarchar:
        col.strings.reserve(rows.num_rows);
        for (size_t r = 0; r < rows.num_rows; ++r) {
          IDAA_ASSIGN_OR_RETURN(uint32_t len, GetU32(buffer, offset));
          if (*offset + len > buffer.size()) {
            return Status::Internal("wire format underflow (string)");
          }
          col.strings.emplace_back(
              buffer.begin() + static_cast<long>(*offset),
              buffer.begin() + static_cast<long>(*offset + len));
          *offset += len;
        }
        break;
      default:
        return Status::Internal(
            "columnar wire format supports DOUBLE/INTEGER/VARCHAR only");
    }
  }
  return rows;
}

Status TransferChannel::MaybeInject(const char* site, TraceContext tc) {
  if (injector_ == nullptr) return Status::OK();
  Status st = injector_->MaybeFail(site);
  if (!st.ok()) {
    metrics_->Increment(metric::kFaultsInjected);
    if (tc.trace != nullptr) {
      TraceSpan fault_span(tc, "fault");
      fault_span.Attr("site", site);
      fault_span.Attr("error", st.ToString());
    }
  }
  return st;
}

Result<std::vector<Row>> TransferChannel::SendRowsToAccelerator(
    const std::vector<Row>& rows, TraceContext tc) {
  IDAA_RETURN_IF_ERROR(MaybeInject(fault_site::kChannelToAccel, tc));
  TraceSpan xfer_span(tc, "xfer.to_accel");
  std::vector<uint8_t> wire;
  {
    TraceSpan encode_span(xfer_span.context(), "encode");
    for (const Row& row : rows) EncodeRow(row, &wire);
  }
  metrics_->Add(metric::kFederationBytesToAccel, wire.size());
  metrics_->Increment(metric::kFederationRoundTrips);
  std::vector<Row> decoded;
  decoded.reserve(rows.size());
  {
    TraceSpan decode_span(xfer_span.context(), "decode");
    size_t offset = 0;
    while (offset < wire.size()) {
      IDAA_ASSIGN_OR_RETURN(Row row, DecodeRow(wire, &offset));
      decoded.push_back(std::move(row));
    }
  }
  xfer_span.Attr("rows", static_cast<uint64_t>(rows.size()));
  xfer_span.Attr("bytes", static_cast<uint64_t>(wire.size()));
  if (tc.trace != nullptr) tc.trace->AddBoundaryBytes(wire.size());
  return decoded;
}

Result<accel::ColumnarRows> TransferChannel::SendColumnarToAccelerator(
    const accel::ColumnarRows& rows, const Schema& schema, TraceContext tc) {
  IDAA_RETURN_IF_ERROR(MaybeInject(fault_site::kChannelToAccel, tc));
  TraceSpan xfer_span(tc, "xfer.columnar_to_accel");
  std::vector<uint8_t> wire;
  {
    TraceSpan encode_span(xfer_span.context(), "encode");
    IDAA_RETURN_IF_ERROR(EncodeColumnar(rows, schema, &wire));
  }
  metrics_->Add(metric::kFederationBytesToAccel, wire.size());
  metrics_->Increment(metric::kFederationRoundTrips);
  accel::ColumnarRows decoded;
  {
    TraceSpan decode_span(xfer_span.context(), "decode");
    size_t offset = 0;
    IDAA_ASSIGN_OR_RETURN(decoded, DecodeColumnar(wire, schema, &offset));
  }
  xfer_span.Attr("rows", static_cast<uint64_t>(rows.num_rows));
  xfer_span.Attr("bytes", static_cast<uint64_t>(wire.size()));
  if (tc.trace != nullptr) tc.trace->AddBoundaryBytes(wire.size());
  return decoded;
}

Result<ResultSet> TransferChannel::FetchResultFromAccelerator(
    const ResultSet& result, TraceContext tc) {
  IDAA_RETURN_IF_ERROR(MaybeInject(fault_site::kChannelFromAccel, tc));
  TraceSpan xfer_span(tc, "xfer.from_accel");
  std::vector<uint8_t> wire;
  {
    TraceSpan encode_span(xfer_span.context(), "encode");
    for (const Row& row : result.rows()) EncodeRow(row, &wire);
  }
  metrics_->Add(metric::kFederationBytesFromAccel, wire.size());
  metrics_->Increment(metric::kFederationRoundTrips);
  ResultSet out(result.schema());
  {
    TraceSpan decode_span(xfer_span.context(), "decode");
    size_t offset = 0;
    while (offset < wire.size()) {
      IDAA_ASSIGN_OR_RETURN(Row row, DecodeRow(wire, &offset));
      out.Append(std::move(row));
    }
  }
  xfer_span.Attr("rows", static_cast<uint64_t>(result.rows().size()));
  xfer_span.Attr("bytes", static_cast<uint64_t>(wire.size()));
  if (tc.trace != nullptr) tc.trace->AddBoundaryBytes(wire.size());
  return out;
}

Status TransferChannel::SendStatement(const std::string& sql,
                                      TraceContext tc) {
  IDAA_RETURN_IF_ERROR(MaybeInject(fault_site::kChannelStatement, tc));
  TraceSpan xfer_span(tc, "xfer.statement");
  metrics_->Add(metric::kFederationBytesToAccel, sql.size());
  metrics_->Increment(metric::kFederationRoundTrips);
  xfer_span.Attr("bytes", static_cast<uint64_t>(sql.size()));
  if (tc.trace != nullptr) tc.trace->AddBoundaryBytes(sql.size());
  return Status::OK();
}

}  // namespace idaa::federation
