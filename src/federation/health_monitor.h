// HealthMonitor: per-accelerator circuit breaker. Consecutive statement
// failures trip the breaker Open; after a cooldown a single probe request
// is let through (HalfOpen) — success closes the breaker, failure re-opens
// it. The router consults Probeable() (non-mutating) to steer work away
// from sick accelerators; the execution path consults AllowRequest()
// (which consumes the half-open probe slot) right before crossing.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/trace.h"

namespace idaa {
namespace federation {

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

/// Thread-safe breaker registry keyed by accelerator name. Failures are
/// recorded once per *statement* (after retries are exhausted), not per
/// attempt — a statement that eventually succeeds is a success.
class HealthMonitor {
 public:
  explicit HealthMonitor(MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  /// Consecutive failures before the breaker opens (default 3).
  void set_trip_threshold(uint32_t n);
  /// How long an open breaker waits before letting a probe through
  /// (default 100ms; tests set 0 for immediate half-open).
  void set_cooldown_us(uint64_t us);

  void RecordSuccess(const std::string& site);
  void RecordFailure(const std::string& site);

  /// Execution-path gate. Closed -> true. Open -> true only once the
  /// cooldown elapsed (transitions to HalfOpen and consumes the probe
  /// slot). HalfOpen -> false while the probe is outstanding.
  bool AllowRequest(const std::string& site);

  /// Routing-path gate: like AllowRequest but never mutates state or
  /// consumes the probe slot — "would a request be worth sending?".
  bool Probeable(const std::string& site) const;

  BreakerState state(const std::string& site) const;
  uint32_t consecutive_failures(const std::string& site) const;
  /// Times the breaker transitioned Closed/HalfOpen -> Open.
  uint64_t trips(const std::string& site) const;

  /// Forget all breaker state (tests).
  void Reset();

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    uint32_t consecutive_failures = 0;
    uint64_t opened_at_ns = 0;
    uint64_t trips = 0;
    bool probe_outstanding = false;
  };

  bool CooldownElapsed(const Breaker& b) const;

  mutable std::mutex mu_;
  MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, Breaker> breakers_;
  uint32_t trip_threshold_ = 3;
  uint64_t cooldown_us_ = 100000;
};

}  // namespace federation
}  // namespace idaa
