#include "federation/wlm.h"

#include <algorithm>
#include <chrono>

namespace idaa::federation {

const char* PriorityToString(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

AdmissionController::AdmissionController(const WlmOptions& options,
                                         MetricsRegistry* metrics,
                                         HistogramRegistry* histograms)
    : options_(options), metrics_(metrics), histograms_(histograms) {}

AdmissionController::~AdmissionController() = default;

bool AdmissionController::CanGrantLocked(const std::string& tenant,
                                         Priority priority) const {
  if (in_use_ >= options_.total_slots) return false;
  if (options_.per_tenant_slots > 0) {
    auto it = tenant_in_use_.find(tenant);
    if (it != tenant_in_use_.end() && it->second >= options_.per_tenant_slots) {
      return false;
    }
  }
  // Batch statements yield to any waiting interactive statement; an
  // interactive arrival may overtake queued batch work (that is the point
  // of the two-class scheme).
  if (priority == Priority::kBatch &&
      waiting_[static_cast<size_t>(Priority::kInteractive)] > 0) {
    return false;
  }
  return true;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const std::string& tenant, Priority priority, uint64_t deadline_us) {
  Ticket ticket;
  ticket.tenant = tenant;
  ticket.priority = priority;
  if (!options_.enabled) return ticket;

  std::unique_lock<std::mutex> lock(mu_);
  if (!CanGrantLocked(tenant, priority)) {
    size_t waiting_total = waiting_[0] + waiting_[1];
    if (waiting_total >= options_.max_queue_depth) {
      ++shed_queue_full_;
      if (metrics_) metrics_->Increment(metric::kWlmShedQueueFull);
      return Status::Unavailable(
          "WLM: admission queue full (" + std::to_string(waiting_total) +
          " waiting, " + std::to_string(options_.total_slots) +
          " slots); statement shed, retry later");
    }
    uint64_t budget_us =
        deadline_us > 0 ? deadline_us : options_.default_queue_deadline_us;
    auto give_up_at = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(budget_us);
    uint64_t started_ns = TraceNowNs();
    ++waiting_[static_cast<size_t>(priority)];
    bool granted = cv_.wait_until(lock, give_up_at, [&] {
      return CanGrantLocked(tenant, priority);
    });
    --waiting_[static_cast<size_t>(priority)];
    // Our departure may unblock a batch waiter held back only by the
    // interactive-waiters-first rule.
    cv_.notify_all();
    ticket.queued_us = (TraceNowNs() - started_ns) / 1000;
    if (!granted) {
      ++shed_deadline_;
      if (metrics_) metrics_->Increment(metric::kWlmShedDeadline);
      if (histograms_) {
        histograms_->GetOrCreate(histo::kWlmQueuedUs).Record(ticket.queued_us);
      }
      return Status::Timeout(
          "WLM: admission deadline (" + std::to_string(budget_us) +
          "us) expired after " + std::to_string(ticket.queued_us) +
          "us queued; statement shed, retry later");
    }
    ++queued_grants_;
    if (metrics_) metrics_->Increment(metric::kWlmQueued);
  }
  ++in_use_;
  if (options_.per_tenant_slots > 0) ++tenant_in_use_[tenant];
  ticket.slot = next_slot_++;
  ++admitted_;
  if (metrics_) metrics_->Increment(metric::kWlmAdmitted);
  if (histograms_) {
    histograms_->GetOrCreate(histo::kWlmQueuedUs).Record(ticket.queued_us);
  }
  return ticket;
}

void AdmissionController::Release(const Ticket& ticket) {
  if (!options_.enabled || ticket.slot == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_use_ > 0) --in_use_;
    if (options_.per_tenant_slots > 0) {
      auto it = tenant_in_use_.find(ticket.tenant);
      if (it != tenant_in_use_.end() && it->second > 0) {
        if (--it->second == 0) tenant_in_use_.erase(it);
      }
    }
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.queued = queued_grants_;
  s.shed_queue_full = shed_queue_full_;
  s.shed_deadline = shed_deadline_;
  s.in_use = in_use_;
  s.waiting = waiting_[0] + waiting_[1];
  return s;
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

namespace {

char ValueTypeTag(const Value& v) {
  if (v.is_null()) return 'n';
  if (v.is_boolean()) return 'b';
  if (v.is_integer()) return 'i';
  if (v.is_double()) return 'd';
  if (v.is_varchar()) return 'v';
  return 'x';  // date / timestamp / anything else: ToString disambiguates
}

}  // namespace

ResultCache::ResultCache(const WlmOptions& options, MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {}

std::string ResultCache::MakeKey(const std::string& normalized_sql,
                                 const std::vector<Value>& params,
                                 AccelerationMode mode) {
  std::string key = normalized_sql;
  key += '\x1f';
  key += std::to_string(static_cast<int>(mode));
  for (const Value& v : params) {
    std::string s = v.ToString();
    key += '\x1f';
    key += ValueTypeTag(v);
    // Length prefix keeps a separator byte inside a VARCHAR param from
    // colliding with the field framing.
    key += std::to_string(s.size());
    key += ':';
    key += s;
  }
  return key;
}

std::optional<ResultCache::Served> ResultCache::Lookup(const std::string& key) {
  if (!options_.enabled) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    if (metrics_) metrics_->Increment(metric::kResultCacheMisses);
    return std::nullopt;
  }
  ++hits_;
  if (metrics_) metrics_->Increment(metric::kResultCacheHits);
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  Served served;
  served.rows = it->second.rows;
  served.routed_to = it->second.routed_to;
  served.detail = it->second.detail;
  return served;
}

bool ResultCache::Peek(const std::string& key) const {
  if (!options_.enabled) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return map_.find(key) != map_.end();
}

std::vector<uint64_t> ResultCache::SnapshotGenerations(
    const std::vector<std::string>& tables) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> gens;
  gens.reserve(tables.size());
  for (const auto& t : tables) {
    auto it = generations_.find(t);
    gens.push_back(it == generations_.end() ? 0 : it->second);
  }
  gens.push_back(epoch_);
  return gens;
}

bool ResultCache::Store(const std::string& key,
                        const std::vector<std::string>& tables,
                        const std::vector<uint64_t>& generations,
                        const ResultSet& rows, Target routed_to,
                        const std::string& detail) {
  if (!options_.enabled) return false;
  if (rows.NumRows() > options_.result_cache_max_rows) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // A concurrent commit on any referenced table since the statement began
  // would make this entry stale on arrival — drop it.
  if (generations.size() != tables.size() + 1) return false;
  if (generations.back() != epoch_) return false;
  for (size_t i = 0; i < tables.size(); ++i) {
    auto it = generations_.find(tables[i]);
    uint64_t now_gen = it == generations_.end() ? 0 : it->second;
    if (now_gen != generations[i]) return false;
  }
  if (map_.count(key)) EraseLocked(key);
  lru_.push_front(key);
  Entry entry;
  entry.rows = rows;
  entry.routed_to = routed_to;
  entry.detail = detail;
  entry.tables = tables;
  entry.lru_it = lru_.begin();
  map_[key] = std::move(entry);
  for (const auto& t : tables) by_table_[t].push_back(key);
  ++stores_;
  if (metrics_) metrics_->Increment(metric::kResultCacheStores);
  while (map_.size() > options_.result_cache_entries) {
    EraseLocked(lru_.back());
  }
  return true;
}

void ResultCache::EraseLocked(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  for (const auto& t : it->second.tables) {
    auto bt = by_table_.find(t);
    if (bt == by_table_.end()) continue;
    auto& keys = bt->second;
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    if (keys.empty()) by_table_.erase(bt);
  }
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void ResultCache::InvalidateTables(const std::vector<std::string>& tables) {
  if (tables.empty()) return;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& t : tables) {
      ++generations_[t];
      auto bt = by_table_.find(t);
      if (bt == by_table_.end()) continue;
      // EraseLocked mutates by_table_; detach the key list first.
      std::vector<std::string> keys = std::move(bt->second);
      by_table_.erase(bt);
      for (const auto& key : keys) {
        if (map_.count(key)) {
          EraseLocked(key);
          ++evicted;
        }
      }
    }
    invalidated_entries_ += evicted;
  }
  if (metrics_ && evicted > 0) {
    metrics_->Add(metric::kResultCacheInvalidations, evicted);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Bump the epoch (and known table generations) so in-flight Store()
  // calls that snapshotted before the clear cannot resurrect dropped state.
  ++epoch_;
  for (auto& [table, gen] : generations_) ++gen;
  invalidated_entries_ += map_.size();
  map_.clear();
  lru_.clear();
  by_table_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.stores = stores_;
  s.invalidated_entries = invalidated_entries_;
  s.size = map_.size();
  return s;
}

// ---------------------------------------------------------------------------
// WorkloadManager
// ---------------------------------------------------------------------------

WorkloadManager::WorkloadManager(const WlmOptions& options,
                                 MetricsRegistry* metrics,
                                 HistogramRegistry* histograms)
    : options_(options),
      admission_(options, metrics, histograms),
      result_cache_(options, metrics) {}

}  // namespace idaa::federation
