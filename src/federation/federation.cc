#include "federation/federation.h"

#include <algorithm>

#include "accel/accel_executor.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace idaa::federation {

using governance::Privilege;

namespace {

/// Grant the full privilege set on a newly created object to its creator.
void GrantAllToCreator(governance::AuthorizationManager* auth,
                       const std::string& user, const std::string& object) {
  for (Privilege p : {Privilege::kSelect, Privilege::kInsert,
                      Privilege::kUpdate, Privilege::kDelete}) {
    (void)auth->Grant(user, object, p);
  }
}

/// Does the plan reference an accelerator-only table? AOTs have no DB2
/// copy, so statements touching them can never fail back.
bool PlanHasAot(const sql::BoundSelect& plan) {
  for (const auto& bt : plan.tables) {
    if (bt.info->kind == TableKind::kAcceleratorOnly) return true;
  }
  return false;
}

/// Annotate a retryable failure that cannot fail back with the reason.
Status NoFailbackError(const Status& failure, const std::string& why) {
  return Status(failure.code(), failure.message() + "; " + why);
}

}  // namespace

RetryPolicy FederationEngine::PolicyFor(const Session& session) const {
  RetryPolicy policy = retry_policy_;
  if (session.deadline_us > 0) policy.deadline_us = session.deadline_us;
  return policy;
}

void FederationEngine::RecordShardHealth(const std::string& name,
                                         bool success) {
  auto a = AcceleratorByName(name);
  if (!a.ok() || (*a)->num_shards() <= 1) return;
  std::vector<accel::AcceleratorState> states = (*a)->ShardStates();
  for (size_t i = 0; i < states.size(); ++i) {
    std::string site = name + "#" + std::to_string(i);
    if (states[i] == accel::AcceleratorState::kOnline) {
      if (success) health_.RecordSuccess(site);
    } else if (!success) {
      health_.RecordFailure(site);
    }
  }
}

Result<std::vector<Row>> FederationEngine::SendRowsRetry(
    const std::vector<Row>& rows, const Session& session, TraceContext tc,
    uint32_t* retries) {
  std::vector<Row> delivered;
  RetryOutcome outcome =
      RetryWithBackoff(PolicyFor(session), tc, [&]() -> Status {
        auto sent = channel_->SendRowsToAccelerator(rows, tc);
        if (!sent.ok()) return sent.status();
        delivered = std::move(*sent);
        return Status::OK();
      });
  if (retries != nullptr) *retries += outcome.retries;
  if (outcome.retries > 0) {
    metrics_->Add(metric::kFederationRetries, outcome.retries);
  }
  if (!outcome.status.ok()) return outcome.status;
  return delivered;
}

Result<ResultSet> FederationEngine::FetchResultRetry(const ResultSet& result,
                                                     const Session& session,
                                                     TraceContext tc,
                                                     uint32_t* retries) {
  ResultSet fetched;
  RetryOutcome outcome =
      RetryWithBackoff(PolicyFor(session), tc, [&]() -> Status {
        auto got = channel_->FetchResultFromAccelerator(result, tc);
        if (!got.ok()) return got.status();
        fetched = std::move(*got);
        return Status::OK();
      });
  if (retries != nullptr) *retries += outcome.retries;
  if (outcome.retries > 0) {
    metrics_->Add(metric::kFederationRetries, outcome.retries);
  }
  if (!outcome.status.ok()) return outcome.status;
  return fetched;
}

Status FederationEngine::SendStatementRetry(const std::string& sql,
                                            const Session& session,
                                            TraceContext tc,
                                            uint32_t* retries) {
  RetryOutcome outcome = RetryWithBackoff(
      PolicyFor(session), tc,
      [&]() -> Status { return channel_->SendStatement(sql, tc); });
  if (retries != nullptr) *retries += outcome.retries;
  if (outcome.retries > 0) {
    metrics_->Add(metric::kFederationRetries, outcome.retries);
  }
  return outcome.status;
}

Status FederationEngine::Authorize(const Session& session,
                                   const std::string& object,
                                   Privilege privilege,
                                   const std::string& action) {
  metrics_->Increment(metric::kGovernanceChecks);
  Status status = auth_->Check(session.user, object, privilege);
  audit_->Record(session.user, action, object, status.ok(),
                 status.ok() ? "" : status.message());
  return status;
}

std::vector<Row> FederationEngine::MapRows(const std::vector<Row>& source,
                                           const std::vector<size_t>& mapping,
                                           size_t target_width) {
  std::vector<Row> out;
  out.reserve(source.size());
  for (const Row& src : source) {
    Row row(target_width, Value::Null());
    for (size_t i = 0; i < mapping.size(); ++i) row[mapping[i]] = src[i];
    out.push_back(std::move(row));
  }
  return out;
}

Result<accel::Accelerator*> FederationEngine::AcceleratorByName(
    const std::string& name) const {
  std::string normalized = Catalog::NormalizeName(name);
  for (accel::Accelerator* a : accelerators_) {
    if (a->name() == normalized) return a;
  }
  return Status::NotFound("no such accelerator: " + name);
}

Result<accel::Accelerator*> FederationEngine::AcceleratorHostingTable(
    const TableInfo& info) const {
  if (info.accelerator_name.empty()) {
    return Status::InvalidArgument("table " + info.name +
                                   " has no accelerator-side data");
  }
  return AcceleratorByName(info.accelerator_name);
}

Result<accel::Accelerator*> FederationEngine::AcceleratorForTable(
    const TableInfo& info, const char* op) const {
  IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a, AcceleratorHostingTable(info));
  accel::AcceleratorState state = a->state();
  if (state != accel::AcceleratorState::kOnline) {
    return Status::Unavailable(
        std::string(op) + " on table " + info.name + ": accelerator " +
        a->name() + " is " +
        (state == accel::AcceleratorState::kOffline ? "offline"
                                                    : "recovering"));
  }
  return a;
}

Result<accel::Accelerator*> FederationEngine::AcceleratorForReplication(
    const TableInfo& info) const {
  IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a, AcceleratorHostingTable(info));
  if (a->state() == accel::AcceleratorState::kOffline) {
    return Status::Unavailable("replication apply on table " + info.name +
                               ": accelerator " + a->name() + " is offline");
  }
  return a;
}

Result<accel::Accelerator*> FederationEngine::AcceleratorForPlan(
    const sql::BoundSelect& plan, const char* op) const {
  accel::Accelerator* chosen = nullptr;
  for (const auto& bt : plan.tables) {
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a,
                          AcceleratorForTable(*bt.info, op));
    if (chosen != nullptr && a != chosen) {
      return Status::SemanticError(
          "statement references tables on different accelerators (" +
          chosen->name() + ", " + a->name() + ")");
    }
    chosen = a;
  }
  if (chosen == nullptr) {
    return Status::Internal("no accelerator-resident table in plan");
  }
  return chosen;
}

accel::Accelerator* FederationEngine::LeastLoadedAccelerator() const {
  accel::Accelerator* best = nullptr;
  for (accel::Accelerator* a : accelerators_) {
    if (!a->available()) continue;
    if (best == nullptr || a->NumTables() < best->NumTables()) best = a;
  }
  return best != nullptr ? best : accelerators_.front();
}

Result<ExecResult> FederationEngine::Execute(const sql::Statement& stmt,
                                             const Session& session,
                                             Transaction* txn,
                                             TraceContext tc) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStatement&>(stmt),
                           session, txn, tc);
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStatement&>(stmt),
                           session, txn, tc);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStatement&>(stmt),
                           session, txn, tc);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStatement&>(stmt),
                           session, txn, tc);
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const sql::CreateTableStatement&>(stmt), session, txn);
    case sql::StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const sql::DropTableStatement&>(stmt),
                              session);
    case sql::StatementKind::kGrant:
    case sql::StatementKind::kRevoke:
      return ExecuteGrantRevoke(stmt, session);
    case sql::StatementKind::kCall:
      return ExecuteCall(static_cast<const sql::CallStatement&>(stmt), session,
                         txn, tc);
    case sql::StatementKind::kExplain:
      return ExecuteExplain(static_cast<const sql::ExplainStatement&>(stmt),
                            session, txn);
  }
  return Status::NotSupported("unhandled statement kind");
}

Result<ResultSet> FederationEngine::RunSelectOn(Target target,
                                                const sql::BoundSelect& plan,
                                                Transaction* txn,
                                                TraceContext tc) {
  if (target == Target::kAccelerator) {
    metrics_->Increment(metric::kQueriesRoutedToAccel);
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * accelerator,
                          AcceleratorForPlan(plan, "SELECT"));
    TraceSpan exec_span(tc, "accel.execute");
    return accelerator->ExecuteSelect(plan, txn->id(), txn->snapshot_csn(),
                                      exec_span.context());
  }
  metrics_->Increment(metric::kQueriesRoutedToDb2);
  TraceSpan exec_span(tc, "db2.execute");
  return db2_->ExecuteSelect(plan, txn, exec_span.context());
}

Result<ResultSet> FederationEngine::AccelSelectWithRetry(
    const std::string& sql_text, const sql::BoundSelect& plan,
    const Session& session, Transaction* txn, TraceContext tc,
    uint32_t* retries, bool fetch_result) {
  // Resolve first: a known-down accelerator fails fast with kUnavailable
  // (naming accelerator + statement kind) instead of burning the backoff
  // schedule on it.
  IDAA_ASSIGN_OR_RETURN(accel::Accelerator * accelerator,
                        AcceleratorForPlan(plan, "SELECT"));
  const std::string& name = accelerator->name();
  if (!health_.AllowRequest(name)) {
    return Status::Unavailable("SELECT rejected: accelerator " + name +
                               " circuit breaker is open");
  }
  ResultSet result;
  RetryOutcome outcome =
      RetryWithBackoff(PolicyFor(session), tc, [&]() -> Status {
        IDAA_RETURN_IF_ERROR(channel_->SendStatement(sql_text, tc));
        auto executed = RunSelectOn(Target::kAccelerator, plan, txn, tc);
        if (!executed.ok()) return executed.status();
        if (!fetch_result) {
          result = std::move(*executed);
          return Status::OK();
        }
        // The result crosses the accelerator -> DB2 boundary to the client.
        auto fetched = channel_->FetchResultFromAccelerator(*executed, tc);
        if (!fetched.ok()) return fetched.status();
        result = std::move(*fetched);
        return Status::OK();
      });
  if (retries != nullptr) *retries += outcome.retries;
  if (outcome.retries > 0) {
    metrics_->Add(metric::kFederationRetries, outcome.retries);
  }
  // Breaker accounting is per statement, not per attempt: a statement that
  // eventually succeeded is evidence of health, and only an exhausted
  // retryable failure is evidence of sickness.
  if (outcome.status.ok()) {
    health_.RecordSuccess(name);
    RecordShardHealth(name, /*success=*/true);
  } else if (outcome.status.retryable()) {
    health_.RecordFailure(name);
    RecordShardHealth(name, /*success=*/false);
  }
  if (!outcome.status.ok()) return outcome.status;
  return result;
}

Result<ExecResult> FederationEngine::ExecuteSelect(
    const sql::SelectStatement& stmt, const Session& session, Transaction* txn,
    TraceContext tc) {
  for (const std::string& table : sql::ReferencedTables(stmt)) {
    IDAA_RETURN_IF_ERROR(
        Authorize(session, table, Privilege::kSelect, "SELECT"));
  }
  TraceSpan route_span(tc, "route");
  IDAA_ASSIGN_OR_RETURN(RoutingDecision route,
                        router_.RouteSelect(stmt, session.acceleration));
  route_span.Attr("target", route.target == Target::kAccelerator
                                ? "ACCELERATOR"
                                : "DB2");
  route_span.Attr("reason", route.reason);
  route_span.End();
  sql::Binder binder(*catalog_);
  TraceSpan bind_span(tc, "bind");
  IDAA_ASSIGN_OR_RETURN(sql::BoundSelect plan, binder.BindSelect(stmt));
  bind_span.End();

  ExecResult out;
  out.executed_on = route.target;
  out.detail = route.reason;
  out.failed_back = route.failed_back;
  if (route.target != Target::kAccelerator) {
    IDAA_ASSIGN_OR_RETURN(out.result_set,
                          RunSelectOn(route.target, plan, txn, tc));
    return out;
  }
  auto accelerated = AccelSelectWithRetry(stmt.ToSql(), plan, session, txn,
                                          tc, &out.retries,
                                          /*fetch_result=*/true);
  if (accelerated.ok()) {
    out.result_set = std::move(*accelerated);
    return out;
  }
  Status failure = accelerated.status();
  if (!failure.retryable()) return failure;
  if (!AccelerationAllowsFailback(session.acceleration)) return failure;
  if (PlanHasAot(plan)) {
    return NoFailbackError(failure,
                           "accelerator-only tables have no DB2 copy and "
                           "cannot fail back");
  }
  // Transparent failback: re-execute on the DB2 copies of the accelerated
  // tables. Same transaction, same plan — only the engine changes.
  TraceSpan failback_span(tc, "failback");
  failback_span.Attr("error", failure.ToString());
  metrics_->Increment(metric::kFederationFailbacks);
  out.executed_on = Target::kDb2;
  out.failed_back = true;
  out.detail = "failed back to DB2 (" + failure.ToString() + ")";
  IDAA_ASSIGN_OR_RETURN(
      out.result_set,
      RunSelectOn(Target::kDb2, plan, txn, failback_span.context()));
  return out;
}

Result<ExecResult> FederationEngine::ExecuteInsert(
    const sql::InsertStatement& stmt, const Session& session, Transaction* txn,
    TraceContext tc) {
  IDAA_RETURN_IF_ERROR(
      Authorize(session, stmt.table_name, Privilege::kInsert, "INSERT"));
  if (stmt.select) {
    for (const std::string& table : sql::ReferencedTables(*stmt.select)) {
      IDAA_RETURN_IF_ERROR(
          Authorize(session, table, Privilege::kSelect, "SELECT"));
    }
  }

  sql::Binder binder(*catalog_);
  IDAA_ASSIGN_OR_RETURN(sql::BoundInsert bound, binder.BindInsert(stmt));
  const TableInfo& target = *bound.table;
  bool target_aot = target.kind == TableKind::kAcceleratorOnly;
  size_t width = target.schema.NumColumns();

  ExecResult out;
  out.executed_on = target_aot ? Target::kAccelerator : Target::kDb2;

  // Materialize the source rows and note where they were produced.
  std::vector<Row> rows;
  Target source_target = Target::kDb2;
  if (bound.select) {
    IDAA_ASSIGN_OR_RETURN(RoutingDecision route,
                          router_.RouteSelect(*stmt.select,
                                              session.acceleration));
    source_target = route.target;
    out.failed_back = out.failed_back || route.failed_back;
    ResultSet source_result;
    if (source_target == Target::kAccelerator) {
      auto src = AccelSelectWithRetry(stmt.select->ToSql(), *bound.select,
                                      session, txn, tc, &out.retries,
                                      /*fetch_result=*/false);
      if (!src.ok() && src.status().retryable() &&
          AccelerationAllowsFailback(session.acceleration)) {
        if (PlanHasAot(*bound.select)) {
          return NoFailbackError(src.status(),
                                 "accelerator-only tables have no DB2 copy "
                                 "and cannot fail back");
        }
        TraceSpan failback_span(tc, "failback");
        failback_span.Attr("error", src.status().ToString());
        metrics_->Increment(metric::kFederationFailbacks);
        out.failed_back = true;
        source_target = Target::kDb2;
        src = RunSelectOn(Target::kDb2, *bound.select, txn,
                          failback_span.context());
      }
      if (!src.ok()) return src.status();
      source_result = std::move(*src);
    } else {
      IDAA_ASSIGN_OR_RETURN(
          source_result, RunSelectOn(source_target, *bound.select, txn, tc));
    }
    rows = MapRows(source_result.rows(), bound.column_mapping, width);
  } else {
    rows = bound.values_rows;  // already full width
  }

  if (target_aot) {
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * target_accel,
                          AcceleratorForTable(target, "INSERT"));
    bool cross_accelerator = false;
    if (bound.select && source_target == Target::kAccelerator) {
      for (const std::string& table : sql::ReferencedTables(*stmt.select)) {
        auto src_info = catalog_->GetTable(table);
        if (src_info.ok() &&
            (*src_info)->accelerator_name != target.accelerator_name) {
          cross_accelerator = true;
        }
      }
    }
    if (source_target == Target::kDb2 && bound.select) {
      // Data produced in DB2 must cross the boundary once.
      IDAA_ASSIGN_OR_RETURN(rows,
                            SendRowsRetry(rows, session, tc, &out.retries));
      out.detail = "INSERT into AOT from DB2 source (one boundary crossing)";
    } else if (!bound.select) {
      IDAA_ASSIGN_OR_RETURN(rows,
                            SendRowsRetry(rows, session, tc, &out.retries));
      out.detail = "INSERT VALUES into AOT";
    } else if (cross_accelerator) {
      // Source and target live on different accelerators: the rows come
      // back to DB2 and go out again (two boundary crossings).
      ResultSet shipped(Schema{}, std::move(rows));
      IDAA_ASSIGN_OR_RETURN(ResultSet fetched,
                            FetchResultRetry(shipped, session, tc,
                                             &out.retries));
      IDAA_ASSIGN_OR_RETURN(
          rows, SendRowsRetry(fetched.rows(), session, tc, &out.retries));
      out.detail = "INSERT ... SELECT across accelerators (two boundary "
                   "crossings)";
    } else {
      // Fully accelerator-side: no data movement at all — the paper's ELT
      // optimization.
      IDAA_RETURN_IF_ERROR(
          SendStatementRetry(stmt.ToSql(), session, tc, &out.retries));
      out.detail = "INSERT ... SELECT executed entirely on the accelerator";
    }
    RetryOutcome loaded =
        RetryWithBackoff(PolicyFor(session), tc, [&]() -> Status {
          return target_accel->LoadRows(target.name, rows, txn->id());
        });
    out.retries += loaded.retries;
    if (loaded.retries > 0) {
      metrics_->Add(metric::kFederationRetries, loaded.retries);
    }
    if (loaded.status.ok()) {
      health_.RecordSuccess(target_accel->name());
      RecordShardHealth(target_accel->name(), /*success=*/true);
    } else if (loaded.status.retryable()) {
      health_.RecordFailure(target_accel->name());
      RecordShardHealth(target_accel->name(), /*success=*/false);
      // AOT writes have no DB2 fallback: surface a clear error.
      return NoFailbackError(loaded.status,
                             "accelerator-only tables have no DB2 copy and "
                             "cannot fail back");
    }
    IDAA_RETURN_IF_ERROR(loaded.status);
    out.affected_rows = rows.size();
    return out;
  }

  // Regular DB2 target.
  if (source_target == Target::kAccelerator) {
    // Legacy materialization path: accelerator result lands in DB2 (and is
    // re-replicated if the target is an accelerated table).
    ResultSet shipped(Schema{}, std::move(rows));
    IDAA_ASSIGN_OR_RETURN(ResultSet fetched,
                          FetchResultRetry(shipped, session, tc,
                                           &out.retries));
    rows = fetched.rows();
    out.detail = "accelerator result materialized into DB2 table";
  }
  IDAA_ASSIGN_OR_RETURN(out.affected_rows,
                        db2_->InsertRows(target, std::move(rows), txn));
  return out;
}

Result<ExecResult> FederationEngine::ExecuteUpdate(
    const sql::UpdateStatement& stmt, const Session& session, Transaction* txn,
    TraceContext tc) {
  IDAA_RETURN_IF_ERROR(
      Authorize(session, stmt.table_name, Privilege::kUpdate, "UPDATE"));
  sql::Binder binder(*catalog_);
  IDAA_ASSIGN_OR_RETURN(sql::BoundUpdate bound, binder.BindUpdate(stmt));
  ExecResult out;
  if (bound.table->kind == TableKind::kAcceleratorOnly) {
    out.executed_on = Target::kAccelerator;
    out.detail = "UPDATE delegated to accelerator (AOT)";
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * accelerator,
                          AcceleratorForTable(*bound.table, "UPDATE"));
    TraceSpan exec_span(tc, "accel.execute");
    RetryOutcome outcome =
        RetryWithBackoff(PolicyFor(session), tc, [&]() -> Status {
          IDAA_RETURN_IF_ERROR(channel_->SendStatement(stmt.ToSql(), tc));
          auto updated = accelerator->ExecuteUpdate(bound, txn->id(),
                                                    txn->snapshot_csn());
          if (!updated.ok()) return updated.status();
          out.affected_rows = *updated;
          return Status::OK();
        });
    out.retries = outcome.retries;
    if (outcome.retries > 0) {
      metrics_->Add(metric::kFederationRetries, outcome.retries);
    }
    if (outcome.status.ok()) {
      health_.RecordSuccess(accelerator->name());
      RecordShardHealth(accelerator->name(), /*success=*/true);
    } else if (outcome.status.retryable()) {
      health_.RecordFailure(accelerator->name());
      RecordShardHealth(accelerator->name(), /*success=*/false);
      return NoFailbackError(outcome.status,
                             "accelerator-only tables have no DB2 copy and "
                             "cannot fail back");
    }
    IDAA_RETURN_IF_ERROR(outcome.status);
    return out;
  }
  out.executed_on = Target::kDb2;
  TraceSpan exec_span(tc, "db2.execute");
  IDAA_ASSIGN_OR_RETURN(out.affected_rows, db2_->ExecuteUpdate(bound, txn));
  return out;
}

Result<ExecResult> FederationEngine::ExecuteDelete(
    const sql::DeleteStatement& stmt, const Session& session, Transaction* txn,
    TraceContext tc) {
  IDAA_RETURN_IF_ERROR(
      Authorize(session, stmt.table_name, Privilege::kDelete, "DELETE"));
  sql::Binder binder(*catalog_);
  IDAA_ASSIGN_OR_RETURN(sql::BoundDelete bound, binder.BindDelete(stmt));
  ExecResult out;
  if (bound.table->kind == TableKind::kAcceleratorOnly) {
    out.executed_on = Target::kAccelerator;
    out.detail = "DELETE delegated to accelerator (AOT)";
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * accelerator,
                          AcceleratorForTable(*bound.table, "DELETE"));
    TraceSpan exec_span(tc, "accel.execute");
    RetryOutcome outcome =
        RetryWithBackoff(PolicyFor(session), tc, [&]() -> Status {
          IDAA_RETURN_IF_ERROR(channel_->SendStatement(stmt.ToSql(), tc));
          auto deleted = accelerator->ExecuteDelete(bound, txn->id(),
                                                    txn->snapshot_csn());
          if (!deleted.ok()) return deleted.status();
          out.affected_rows = *deleted;
          return Status::OK();
        });
    out.retries = outcome.retries;
    if (outcome.retries > 0) {
      metrics_->Add(metric::kFederationRetries, outcome.retries);
    }
    if (outcome.status.ok()) {
      health_.RecordSuccess(accelerator->name());
      RecordShardHealth(accelerator->name(), /*success=*/true);
    } else if (outcome.status.retryable()) {
      health_.RecordFailure(accelerator->name());
      RecordShardHealth(accelerator->name(), /*success=*/false);
      return NoFailbackError(outcome.status,
                             "accelerator-only tables have no DB2 copy and "
                             "cannot fail back");
    }
    IDAA_RETURN_IF_ERROR(outcome.status);
    return out;
  }
  out.executed_on = Target::kDb2;
  TraceSpan exec_span(tc, "db2.execute");
  IDAA_ASSIGN_OR_RETURN(out.affected_rows, db2_->ExecuteDelete(bound, txn));
  return out;
}

Result<ExecResult> FederationEngine::ExecuteCreateTable(
    const sql::CreateTableStatement& stmt, const Session& session,
    Transaction* txn) {
  if (!auth_->HasUser(session.user)) {
    return Status::NotAuthorized("unknown user: " + session.user);
  }
  if (stmt.if_not_exists && catalog_->HasTable(stmt.table_name)) {
    ExecResult out;
    out.detail = "table already exists (IF NOT EXISTS)";
    return out;
  }
  TableInfo info;
  info.name = stmt.table_name;
  Schema schema;
  if (stmt.as_select) {
    // CTAS: derive the schema from the query's output.
    for (const std::string& table : sql::ReferencedTables(*stmt.as_select)) {
      IDAA_RETURN_IF_ERROR(
          Authorize(session, table, Privilege::kSelect, "SELECT"));
    }
    sql::Binder binder(*catalog_);
    IDAA_ASSIGN_OR_RETURN(sql::BoundSelect plan,
                          binder.BindSelect(*stmt.as_select));
    for (const auto& col : plan.output_schema.columns()) {
      IDAA_RETURN_IF_ERROR(schema.AddColumn(col));
    }
  } else {
    for (const auto& col : stmt.columns) {
      ColumnDef def;
      def.name = Catalog::NormalizeName(col.name);
      def.type = col.type;
      def.nullable = !col.not_null;
      IDAA_RETURN_IF_ERROR(schema.AddColumn(def));
    }
  }
  info.schema = std::move(schema);
  info.kind = stmt.in_accelerator ? TableKind::kAcceleratorOnly
                                  : TableKind::kDb2Only;
  if (stmt.distribute_by) {
    // Valid on any table: IN ACCELERATOR tables are placed by it
    // immediately; for DB2 tables it is recorded in the catalog and takes
    // effect when the table is accelerated (the replica hash-partitions
    // across slices — and across shards on a sharded accelerator).
    IDAA_ASSIGN_OR_RETURN(size_t idx,
                          info.schema.ColumnIndex(*stmt.distribute_by));
    info.distribution_column = idx;
  }
  IDAA_ASSIGN_OR_RETURN(uint64_t table_id, catalog_->CreateTable(info));
  info.table_id = table_id;
  IDAA_ASSIGN_OR_RETURN(const TableInfo* stored,
                        catalog_->GetTable(stmt.table_name));

  Status storage_status;
  accel::Accelerator* placed = nullptr;
  if (stmt.in_accelerator) {
    // AOT: storage only on the accelerator; DB2 keeps the proxy entry.
    if (stmt.accelerator_name) {
      auto by_name = AcceleratorByName(*stmt.accelerator_name);
      if (!by_name.ok()) {
        (void)catalog_->DropTable(stmt.table_name);
        return by_name.status();
      }
      placed = *by_name;
    } else {
      placed = LeastLoadedAccelerator();
    }
    if (!placed->available()) {
      (void)catalog_->DropTable(stmt.table_name);
      return Status::Unavailable("CREATE TABLE " + stored->name +
                                 ": accelerator " + placed->name() +
                                 " is offline");
    }
    storage_status = channel_->SendStatement(stmt.ToSql());
    if (storage_status.ok()) storage_status = placed->AddTable(*stored);
    if (storage_status.ok()) {
      storage_status =
          catalog_->SetAcceleratorName(stored->name, placed->name());
    }
  } else {
    storage_status = db2_->CreateTableStorage(*stored);
  }
  if (!storage_status.ok()) {
    (void)catalog_->DropTable(stmt.table_name);
    return storage_status;
  }
  GrantAllToCreator(auth_, session.user, stored->name);
  audit_->Record(session.user, "CREATE TABLE", stored->name, true,
                 stmt.in_accelerator ? "accelerator-only" : "db2");
  ExecResult out;
  out.executed_on = stmt.in_accelerator ? Target::kAccelerator : Target::kDb2;
  out.detail = stmt.in_accelerator
                   ? "created accelerator-only table with DB2 proxy entry"
                   : "created DB2 table";
  if (stmt.as_select) {
    // Populate via the regular INSERT ... SELECT machinery (keeps the
    // routing and data-movement accounting identical to a two-statement
    // stage). The select is round-tripped through its SQL text.
    sql::InsertStatement insert;
    insert.table_name = stored->name;
    IDAA_ASSIGN_OR_RETURN(sql::StatementPtr reparsed,
                          sql::ParseStatement(stmt.as_select->ToSql()));
    insert.select.reset(
        static_cast<sql::SelectStatement*>(reparsed.release()));
    auto populated = ExecuteInsert(insert, session, txn);
    if (!populated.ok()) {
      // Roll the DDL back so CTAS is atomic.
      switch (stored->kind) {
        case TableKind::kAcceleratorOnly:
          if (placed != nullptr) (void)placed->RemoveTable(stored->name);
          break;
        default:
          (void)db2_->DropTableStorage(*stored);
      }
      (void)catalog_->DropTable(stmt.table_name);
      return populated.status();
    }
    out.affected_rows = populated->affected_rows;
    out.detail += StrFormat(" and populated %zu rows (CTAS)",
                            populated->affected_rows);
  }
  return out;
}

Result<ExecResult> FederationEngine::ExecuteDropTable(
    const sql::DropTableStatement& stmt, const Session& session) {
  if (stmt.if_exists && !catalog_->HasTable(stmt.table_name)) {
    ExecResult out;
    out.detail = "table does not exist (IF EXISTS)";
    return out;
  }
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info,
                        catalog_->GetTable(stmt.table_name));
  // Ownership proxy: dropping needs DELETE privilege (creator or admin).
  IDAA_RETURN_IF_ERROR(
      Authorize(session, info->name, Privilege::kDelete, "DROP TABLE"));
  switch (info->kind) {
    case TableKind::kAcceleratorOnly: {
      IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a,
                            AcceleratorByName(info->accelerator_name));
      IDAA_RETURN_IF_ERROR(a->RemoveTable(info->name));
      break;
    }
    case TableKind::kAccelerated: {
      replication_->UnregisterTable(info->name);
      IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a,
                            AcceleratorByName(info->accelerator_name));
      IDAA_RETURN_IF_ERROR(a->RemoveTable(info->name));
      IDAA_RETURN_IF_ERROR(db2_->DropTableStorage(*info));
      break;
    }
    case TableKind::kDb2Only:
      IDAA_RETURN_IF_ERROR(db2_->DropTableStorage(*info));
      break;
  }
  std::string name = info->name;
  IDAA_RETURN_IF_ERROR(catalog_->DropTable(name));
  auth_->DropObject(name);
  ExecResult out;
  out.detail = "dropped " + name;
  return out;
}

Result<ExecResult> FederationEngine::ExecuteGrantRevoke(
    const sql::Statement& stmt, const Session& session) {
  // Only the administrator manages privileges in this model.
  if (ToUpper(session.user) !=
      governance::AuthorizationManager::kAdmin) {
    audit_->Record(session.user, "GRANT/REVOKE", "", false,
                   "only SYSADM may manage privileges");
    return Status::NotAuthorized("only SYSADM may manage privileges");
  }
  ExecResult out;
  if (stmt.kind() == sql::StatementKind::kGrant) {
    const auto& grant = static_cast<const sql::GrantStatement&>(stmt);
    auth_->CreateUser(grant.grantee);
    for (const std::string& priv_name : grant.privileges) {
      IDAA_ASSIGN_OR_RETURN(Privilege p,
                            governance::PrivilegeFromString(priv_name));
      IDAA_RETURN_IF_ERROR(auth_->Grant(
          grant.grantee, Catalog::NormalizeName(grant.object_name), p));
    }
    audit_->Record(session.user, "GRANT", grant.object_name, true,
                   "to " + grant.grantee);
    out.detail = "granted";
    return out;
  }
  const auto& revoke = static_cast<const sql::RevokeStatement&>(stmt);
  for (const std::string& priv_name : revoke.privileges) {
    IDAA_ASSIGN_OR_RETURN(Privilege p,
                          governance::PrivilegeFromString(priv_name));
    IDAA_RETURN_IF_ERROR(auth_->Revoke(
        revoke.grantee, Catalog::NormalizeName(revoke.object_name), p));
  }
  audit_->Record(session.user, "REVOKE", revoke.object_name, true,
                 "from " + revoke.grantee);
  out.detail = "revoked";
  return out;
}

Result<ExecResult> FederationEngine::ExecuteCall(const sql::CallStatement& stmt,
                                                 const Session& session,
                                                 Transaction* txn,
                                                 TraceContext tc) {
  std::string name = ToUpper(stmt.procedure_name);
  if (name == "SYSPROC.ACCEL_ADD_TABLES") {
    if (ToUpper(session.user) != governance::AuthorizationManager::kAdmin) {
      return Status::NotAuthorized("only SYSADM may add tables");
    }
    if (stmt.arguments.empty() || stmt.arguments.size() > 2 ||
        !stmt.arguments[0].is_varchar() ||
        (stmt.arguments.size() == 2 && !stmt.arguments[1].is_varchar())) {
      return Status::InvalidArgument(
          "ACCEL_ADD_TABLES expects a table name and an optional "
          "accelerator name");
    }
    IDAA_RETURN_IF_ERROR(AddTableToAccelerator(
        stmt.arguments[0].AsVarchar(), txn,
        stmt.arguments.size() == 2 ? stmt.arguments[1].AsVarchar() : ""));
    audit_->Record(session.user, "ACCEL_ADD_TABLES",
                   stmt.arguments[0].AsVarchar(), true);
    ExecResult out;
    out.detail = "table added to accelerator";
    return out;
  }
  if (name == "SYSPROC.ACCEL_REMOVE_TABLES") {
    if (ToUpper(session.user) != governance::AuthorizationManager::kAdmin) {
      return Status::NotAuthorized("only SYSADM may remove tables");
    }
    if (stmt.arguments.size() != 1 || !stmt.arguments[0].is_varchar()) {
      return Status::InvalidArgument(
          "ACCEL_REMOVE_TABLES expects one VARCHAR table name");
    }
    IDAA_RETURN_IF_ERROR(
        RemoveTableFromAccelerator(stmt.arguments[0].AsVarchar()));
    audit_->Record(session.user, "ACCEL_REMOVE_TABLES",
                   stmt.arguments[0].AsVarchar(), true);
    ExecResult out;
    out.detail = "table removed from accelerator";
    return out;
  }
  if (name == "SYSPROC.ACCEL_LOAD_TABLES") {
    if (ToUpper(session.user) != governance::AuthorizationManager::kAdmin) {
      return Status::NotAuthorized("only SYSADM may reload tables");
    }
    if (stmt.arguments.size() != 1 || !stmt.arguments[0].is_varchar()) {
      return Status::InvalidArgument(
          "ACCEL_LOAD_TABLES expects one VARCHAR table name");
    }
    IDAA_RETURN_IF_ERROR(
        ReloadAcceleratedTable(stmt.arguments[0].AsVarchar(), txn));
    audit_->Record(session.user, "ACCEL_LOAD_TABLES",
                   stmt.arguments[0].AsVarchar(), true);
    ExecResult out;
    out.detail = "replica reloaded from DB2 snapshot";
    return out;
  }
  if (name == "SYSPROC.ACCEL_GET_TABLES_INFO") {
    ExecResult out;
    out.result_set =
        ResultSet{Schema({{"TABLE", DataType::kVarchar, false},
                          {"KIND", DataType::kVarchar, false},
                          {"DB2_ROWS", DataType::kInteger, true},
                          {"ACCEL_VERSIONS", DataType::kInteger, true},
                          {"REPLICATED", DataType::kBoolean, false},
                          {"ACCELERATOR", DataType::kVarchar, true}})};
    for (const std::string& table_name : catalog_->ListTables()) {
      auto info_r = catalog_->GetTable(table_name);
      if (!info_r.ok()) continue;
      const TableInfo* info = *info_r;
      Value db2_rows = Value::Null();
      if (info->kind != TableKind::kAcceleratorOnly) {
        auto stored = db2_->row_store().GetTable(info->table_id);
        if (stored.ok()) {
          db2_rows =
              Value::Integer(static_cast<int64_t>((*stored)->NumLiveRows()));
        }
      }
      Value versions = Value::Null();
      if (!info->accelerator_name.empty()) {
        auto host = AcceleratorByName(info->accelerator_name);
        if (host.ok()) {
          auto accel_versions = (*host)->TableVersions(info->name);
          if (accel_versions.ok()) {
            versions = Value::Integer(static_cast<int64_t>(*accel_versions));
          }
        }
      }
      out.result_set.Append(
          {Value::Varchar(info->name), Value::Varchar(TableKindToString(info->kind)),
           db2_rows, versions,
           Value::Boolean(replication_->IsReplicated(info->name)),
           info->accelerator_name.empty() ? Value::Null()
                                          : Value::Varchar(
                                                info->accelerator_name)});
    }
    out.detail = "catalog snapshot";
    return out;
  }
  if (name == "SYSPROC.ACCEL_GROOM") {
    accel::GroomStats stats;
    for (accel::Accelerator* a : accelerators_) {
      accel::GroomStats one = a->GroomAll();
      stats.rows_examined += one.rows_examined;
      stats.rows_reclaimed += one.rows_reclaimed;
    }
    ExecResult out;
    out.detail = StrFormat("groomed: %zu examined, %zu reclaimed",
                           stats.rows_examined, stats.rows_reclaimed);
    return out;
  }
  if (name == "SYSPROC.ACCEL_CONTROL") {
    if (ToUpper(session.user) != governance::AuthorizationManager::kAdmin) {
      return Status::NotAuthorized("only SYSADM may control accelerators");
    }
    if (stmt.arguments.size() != 2 || !stmt.arguments[0].is_varchar() ||
        !stmt.arguments[1].is_varchar()) {
      return Status::InvalidArgument(
          "ACCEL_CONTROL expects (accelerator, 'ONLINE'|'OFFLINE')");
    }
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * a,
                          AcceleratorByName(stmt.arguments[0].AsVarchar()));
    std::string command = ToUpper(stmt.arguments[1].AsVarchar());
    ExecResult out;
    if (command == "ONLINE") {
      // Recovery protocol: accept replication applies while the backlog
      // drains (Recovering), then open for queries (Online). A failed
      // catch-up leaves the backlog queued — the accelerator still goes
      // Online and the next commit/Flush retries the apply.
      a->SetState(accel::AcceleratorState::kRecovering);
      size_t backlog = replication_->PendingChanges();
      auto caught_up = replication_->Flush();
      a->SetState(accel::AcceleratorState::kOnline);
      health_.RecordSuccess(a->name());
      out.detail = a->name() + " is now ONLINE (replayed " +
                   std::to_string(backlog) + " pending change(s)" +
                   (caught_up.ok() ? ")"
                                   : "; catch-up incomplete: " +
                                         caught_up.status().ToString() + ")");
    } else if (command == "OFFLINE") {
      a->SetState(accel::AcceleratorState::kOffline);
      out.detail = a->name() + " is now OFFLINE";
    } else {
      return Status::InvalidArgument("unknown ACCEL_CONTROL command: " +
                                     command);
    }
    audit_->Record(session.user, "ACCEL_CONTROL", a->name(), true, command);
    return out;
  }
  if (name == "SYSPROC.ACCEL_VERIFY_TABLES") {
    if (ToUpper(session.user) != governance::AuthorizationManager::kAdmin) {
      return Status::NotAuthorized("only SYSADM may verify tables");
    }
    if (stmt.arguments.size() > 1 ||
        (stmt.arguments.size() == 1 && !stmt.arguments[0].is_varchar())) {
      return Status::InvalidArgument(
          "ACCEL_VERIFY_TABLES expects an optional VARCHAR table name");
    }
    ExecResult out;
    IDAA_ASSIGN_OR_RETURN(
        out.result_set,
        VerifyAcceleratedTables(
            stmt.arguments.empty() ? "" : stmt.arguments[0].AsVarchar(), txn));
    audit_->Record(session.user, "ACCEL_VERIFY_TABLES",
                   stmt.arguments.empty() ? "*"
                                          : stmt.arguments[0].AsVarchar(),
                   true);
    out.detail = "replica content compared against DB2";
    return out;
  }
  // Analytics / user procedures: EXECUTE privilege, then delegate.
  IDAA_RETURN_IF_ERROR(
      Authorize(session, name, Privilege::kExecute, "CALL " + name));
  if (!procedure_handler_) {
    return Status::NotFound("procedure not found: " + name);
  }
  IDAA_RETURN_IF_ERROR(
      SendStatementRetry(stmt.ToSql(), session, tc, nullptr));
  ExecResult out;
  out.executed_on = Target::kAccelerator;
  TraceSpan exec_span(tc, "accel.execute");
  IDAA_ASSIGN_OR_RETURN(out.result_set,
                        procedure_handler_(name, stmt.arguments, txn, session,
                                           exec_span.context()));
  out.detail = "procedure executed on accelerator";
  return out;
}

Result<ExecResult> FederationEngine::ExecuteExplain(
    const sql::ExplainStatement& stmt, const Session& session,
    Transaction* txn) {
  // EXPLAIN needs the same read privileges as the query itself.
  for (const std::string& table : sql::ReferencedTables(*stmt.select)) {
    IDAA_RETURN_IF_ERROR(
        Authorize(session, table, Privilege::kSelect, "EXPLAIN"));
  }
  if (stmt.analyze) {
    // EXPLAIN ANALYZE: run the statement under a fresh trace and report the
    // timed stage tree (route decision, engine execution, per-slice scans,
    // boundary transfers, coordinator merge).
    QueryTrace qt;
    TraceSpan root(&qt, "statement");
    IDAA_ASSIGN_OR_RETURN(
        ExecResult executed,
        ExecuteSelect(*stmt.select, session, txn, root.context()));
    root.Attr("rows", static_cast<uint64_t>(executed.result_set.NumRows()));
    root.Attr("boundary_bytes", qt.boundary_bytes());
    root.End();

    ResultSet report{Schema({{"STAGE", DataType::kVarchar, false},
                             {"DURATION_US", DataType::kInteger, false},
                             {"DETAIL", DataType::kVarchar, true}})};
    for (const QueryTrace::RenderedSpan& span : qt.RenderRows()) {
      report.Append({Value::Varchar(std::string(span.depth * 2, ' ') +
                                    span.name),
                     Value::Integer(static_cast<int64_t>(span.duration_us)),
                     span.attributes.empty()
                         ? Value::Null()
                         : Value::Varchar(span.attributes)});
    }
    ExecResult out;
    out.executed_on = executed.executed_on;
    out.result_set = std::move(report);
    out.detail = "explain analyze; statement executed (" + executed.detail +
                 ")";
    return out;
  }
  IDAA_ASSIGN_OR_RETURN(RoutingDecision route,
                        router_.RouteSelect(*stmt.select, session.acceleration));
  sql::Binder binder(*catalog_);
  IDAA_ASSIGN_OR_RETURN(sql::BoundSelect plan, binder.BindSelect(*stmt.select));

  ResultSet report{Schema({{"ASPECT", DataType::kVarchar, false},
                           {"DETAIL", DataType::kVarchar, false}})};
  auto add = [&report](const std::string& aspect, const std::string& detail) {
    report.Append({Value::Varchar(aspect), Value::Varchar(detail)});
  };
  add("TARGET", route.target == Target::kAccelerator ? "ACCELERATOR" : "DB2");
  add("REASON", route.reason);
  add("ACCELERATION MODE",
      AccelerationModeToString(session.acceleration));

  // Health of every accelerator the plan would touch: accelerator state
  // plus its circuit-breaker state (what the failback routing consults).
  std::vector<std::string> accel_names;
  for (const auto& bt : plan.tables) {
    if (bt.info->kind == TableKind::kDb2Only ||
        bt.info->accelerator_name.empty()) {
      continue;
    }
    if (std::find(accel_names.begin(), accel_names.end(),
                  bt.info->accelerator_name) == accel_names.end()) {
      accel_names.push_back(bt.info->accelerator_name);
    }
  }
  for (const std::string& name : accel_names) {
    auto a = AcceleratorByName(name);
    if (!a.ok()) continue;
    std::string detail =
        std::string(accel::AcceleratorStateToString((*a)->state())) +
        ", breaker " + std::string(BreakerStateToString(health_.state(name)));
    if ((*a)->num_shards() > 1) {
      std::vector<accel::AcceleratorState> states = (*a)->ShardStates();
      detail += StrFormat(", %zu shards [", states.size());
      for (size_t i = 0; i < states.size(); ++i) {
        if (i > 0) detail += ' ';
        detail += accel::AcceleratorStateToString(states[i]);
      }
      detail += ']';
    }
    add("ACCELERATOR " + name, std::move(detail));
  }

  for (const auto& bt : plan.tables) {
    std::string detail = std::string(TableKindToString(bt.info->kind));
    if (bt.info->distribution_column.has_value() &&
        !bt.info->accelerator_name.empty()) {
      auto host = AcceleratorByName(bt.info->accelerator_name);
      if (host.ok() && (*host)->num_shards() > 1) {
        detail += ", hash-distributed on " +
                  bt.info->schema.Column(*bt.info->distribution_column).name;
      }
    }
    if (bt.scan_predicate) {
      bool exact = false;
      auto ranges = accel::ExtractColumnRanges(*bt.scan_predicate, &exact);
      detail += StrFormat(", scan predicate pushed down (%zu zone-map "
                          "range%s%s)",
                          ranges.size(), ranges.size() == 1 ? "" : "s",
                          exact ? ", exact" : "");
      if (route.target == Target::kDb2) {
        // Index access path report for the DB2 row engine.
        auto table = db2_->row_store().GetTable(bt.info->table_id);
        bool eq_on_first =
            bt.scan_predicate->kind == sql::BoundExprKind::kBinary &&
            !ranges.empty() && ranges[0].column == 0 &&
            ranges[0].op == sql::BinaryOp::kEq;
        if (table.ok() && (*table)->has_index() && eq_on_first) {
          detail += ", primary-key hash index";
        } else {
          detail += ", table scan";
        }
      }
    } else {
      detail += route.target == Target::kDb2 ? ", table scan" : ", full scan";
    }
    add("TABLE " + bt.effective_name, detail);
  }
  if (plan.has_aggregation) {
    std::string agg = StrFormat("%zu group key(s), %zu aggregate(s)",
                                plan.group_keys.size(),
                                plan.aggregates.size());
    if (route.target == Target::kAccelerator) {
      agg += accel::EligibleForSliceAggregation(plan)
                 ? ", computed at the data slices"
                 : ", computed at the coordinator";
    }
    add("AGGREGATION", agg);
  }
  if (plan.where) add("RESIDUAL PREDICATE", "evaluated after joins");
  add("OUTPUT", StrFormat("%zu column(s)", plan.output_schema.NumColumns()));

  ExecResult out;
  out.result_set = std::move(report);
  out.detail = "explain only; statement not executed";
  return out;
}

Status FederationEngine::AddTableToAccelerator(
    const std::string& table_name, Transaction* txn,
    const std::string& accelerator_name) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(table_name));
  if (info->kind == TableKind::kAcceleratorOnly) {
    return Status::InvalidArgument(
        "table is accelerator-only; it is already (only) there");
  }
  if (info->kind == TableKind::kAccelerated) {
    return Status::AlreadyExists("table is already accelerated: " + info->name);
  }
  accel::Accelerator* target = nullptr;
  if (accelerator_name.empty()) {
    target = LeastLoadedAccelerator();
  } else {
    IDAA_ASSIGN_OR_RETURN(target, AcceleratorByName(accelerator_name));
  }
  if (!target->available()) {
    return Status::NotSupported("accelerator " + target->name() +
                                " is offline");
  }
  // Initial load: snapshot in DB2, ship through the channel, bulk-load.
  IDAA_ASSIGN_OR_RETURN(std::vector<Row> snapshot,
                        db2_->TableSnapshot(*info, txn));
  IDAA_RETURN_IF_ERROR(target->AddTable(*info));
  IDAA_ASSIGN_OR_RETURN(std::vector<Row> shipped,
                        channel_->SendRowsToAccelerator(snapshot));
  Status load = target->LoadRows(info->name, shipped, txn->id());
  if (!load.ok()) {
    (void)target->RemoveTable(info->name);
    return load;
  }
  IDAA_RETURN_IF_ERROR(catalog_->SetTableKind(info->name,
                                              TableKind::kAccelerated));
  IDAA_RETURN_IF_ERROR(
      catalog_->SetAcceleratorName(info->name, target->name()));
  replication_->RegisterTable(info->name);
  return Status::OK();
}

Status FederationEngine::ReloadAcceleratedTable(const std::string& table_name,
                                                Transaction* txn) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(table_name));
  if (info->kind != TableKind::kAccelerated) {
    return Status::InvalidArgument("table is not accelerated: " + info->name);
  }
  // Drop any queued changes (the fresh snapshot supersedes them), rebuild
  // the replica storage, and re-ship the current DB2 state.
  IDAA_ASSIGN_OR_RETURN(accel::Accelerator * host,
                        AcceleratorForTable(*info, "LOAD"));
  replication_->UnregisterTable(info->name);
  IDAA_RETURN_IF_ERROR(host->RemoveTable(info->name));
  IDAA_RETURN_IF_ERROR(host->AddTable(*info));
  IDAA_ASSIGN_OR_RETURN(std::vector<Row> snapshot,
                        db2_->TableSnapshot(*info, txn));
  IDAA_ASSIGN_OR_RETURN(std::vector<Row> shipped,
                        channel_->SendRowsToAccelerator(snapshot));
  IDAA_RETURN_IF_ERROR(host->LoadRows(info->name, shipped, txn->id()));
  replication_->RegisterTable(info->name);
  return Status::OK();
}

Result<ResultSet> FederationEngine::VerifyAcceleratedTables(
    const std::string& table_name, Transaction* txn) {
  std::vector<std::string> names;
  if (!table_name.empty()) {
    IDAA_ASSIGN_OR_RETURN(const TableInfo* info,
                          catalog_->GetTable(table_name));
    if (info->kind != TableKind::kAccelerated) {
      return Status::InvalidArgument("table is not accelerated: " +
                                     info->name);
    }
    names.push_back(info->name);
  } else {
    for (const std::string& n : catalog_->ListTables()) {
      auto info = catalog_->GetTable(n);
      if (info.ok() && (*info)->kind == TableKind::kAccelerated) {
        names.push_back(n);
      }
    }
  }
  ResultSet report{Schema({{"TABLE", DataType::kVarchar, false},
                           {"DB2_ROWS", DataType::kInteger, false},
                           {"ACCEL_ROWS", DataType::kInteger, false},
                           {"CONVERGED", DataType::kBoolean, false}})};
  // Order-insensitive multiset comparison over rendered row text. DB2
  // reads latest-committed while the replica reads the txn snapshot, so
  // this is meaningful only with writers quiesced and replication flushed.
  auto canonical = [](const std::vector<Row>& rows) {
    std::vector<std::string> lines;
    lines.reserve(rows.size());
    for (const Row& row : rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToString();
        line += '|';
      }
      lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  for (const std::string& n : names) {
    IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(n));
    IDAA_ASSIGN_OR_RETURN(accel::Accelerator * host,
                          AcceleratorHostingTable(*info));
    if (host->state() == accel::AcceleratorState::kOffline) {
      return Status::Unavailable("ACCEL_VERIFY_TABLES on table " +
                                 info->name + ": accelerator " +
                                 host->name() + " is offline");
    }
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> db2_rows,
                          db2_->TableSnapshot(*info, txn));
    IDAA_ASSIGN_OR_RETURN(
        std::vector<Row> accel_rows,
        host->SnapshotRows(info->name, txn->id(), txn->snapshot_csn()));
    bool converged = canonical(db2_rows) == canonical(accel_rows);
    report.Append({Value::Varchar(info->name),
                   Value::Integer(static_cast<int64_t>(db2_rows.size())),
                   Value::Integer(static_cast<int64_t>(accel_rows.size())),
                   Value::Boolean(converged)});
  }
  return report;
}

Status FederationEngine::RemoveTableFromAccelerator(
    const std::string& table_name) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(table_name));
  if (info->kind != TableKind::kAccelerated) {
    return Status::InvalidArgument("table is not accelerated: " + info->name);
  }
  IDAA_ASSIGN_OR_RETURN(accel::Accelerator * host,
                        AcceleratorByName(info->accelerator_name));
  replication_->UnregisterTable(info->name);
  IDAA_RETURN_IF_ERROR(host->RemoveTable(info->name));
  IDAA_RETURN_IF_ERROR(catalog_->SetAcceleratorName(info->name, ""));
  return catalog_->SetTableKind(info->name, TableKind::kDb2Only);
}

}  // namespace idaa::federation
