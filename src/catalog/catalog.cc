#include "catalog/catalog.h"

#include "common/string_util.h"

namespace idaa {

const char* TableKindToString(TableKind kind) {
  switch (kind) {
    case TableKind::kDb2Only:
      return "DB2_ONLY";
    case TableKind::kAccelerated:
      return "ACCELERATED";
    case TableKind::kAcceleratorOnly:
      return "ACCELERATOR_ONLY";
  }
  return "UNKNOWN";
}

std::string Catalog::NormalizeName(const std::string& name) {
  return ToUpper(name);
}

Result<uint64_t> Catalog::CreateTable(TableInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  info.name = NormalizeName(info.name);
  if (tables_.count(info.name)) {
    return Status::AlreadyExists("table already exists: " + info.name);
  }
  info.table_id = next_table_id_++;
  uint64_t id = info.table_id;
  std::string key = info.name;  // copy before the move below
  tables_[key] = std::make_unique<TableInfo>(std::move(info));
  return id;
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(NormalizeName(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

Result<const TableInfo*> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(NormalizeName(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return const_cast<const TableInfo*>(it->second.get());
}

Result<const TableInfo*> Catalog::GetTableById(uint64_t table_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, info] : tables_) {
    if (info->table_id == table_id) return const_cast<const TableInfo*>(info.get());
  }
  return Status::NotFound("table id not found: " + std::to_string(table_id));
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(NormalizeName(name)) > 0;
}

Status Catalog::SetTableKind(const std::string& name, TableKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(NormalizeName(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  it->second->kind = kind;
  return Status::OK();
}

Status Catalog::SetAcceleratorName(const std::string& name,
                                   const std::string& accelerator_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(NormalizeName(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  it->second->accelerator_name = NormalizeName(accelerator_name);
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

size_t Catalog::NumTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

}  // namespace idaa
