// Catalog: table metadata shared between the DB2 front end and the
// accelerator. DB2's catalog holds an entry for every table — including
// proxy ("nickname") entries for accelerator-only tables, exactly as the
// paper describes: "DB2 only keeps a proxy or table reference ... used for
// storing meta data in the DB2 catalog and acts as indicator for delegating
// any query on the corresponding AOT to IDAA."

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"

namespace idaa {

/// Where a table's data lives.
enum class TableKind : uint8_t {
  /// Ordinary DB2 table, not added to the accelerator.
  kDb2Only = 0,
  /// DB2 table whose snapshot is replicated to the accelerator
  /// (classic IDAA "accelerated table").
  kAccelerated,
  /// Accelerator-only table (AOT): data exclusively on the accelerator,
  /// DB2 keeps only this proxy entry.
  kAcceleratorOnly,
};

const char* TableKindToString(TableKind kind);

/// Catalog entry for one table.
struct TableInfo {
  uint64_t table_id = 0;
  std::string name;          ///< Upper-cased, unqualified.
  Schema schema;
  TableKind kind = TableKind::kDb2Only;
  /// Accelerator hash-distribution column (index into schema), or nullopt
  /// for round-robin distribution. Meaningless for kDb2Only.
  std::optional<size_t> distribution_column;
  /// Which attached accelerator holds this table's accelerator-side data
  /// (empty for kDb2Only). A DB2 can have several accelerators attached.
  std::string accelerator_name;
};

/// Thread-safe name -> TableInfo registry. Names are case-insensitive
/// (normalized to upper case, matching DB2 behaviour for ordinary
/// identifiers).
class Catalog {
 public:
  /// Register a table. Fills in info.table_id. Errors on duplicate name.
  Result<uint64_t> CreateTable(TableInfo info);

  /// Remove a table by name.
  Status DropTable(const std::string& name);

  /// Look up by name. Returned pointer is stable until the table is dropped.
  Result<const TableInfo*> GetTable(const std::string& name) const;

  /// Look up by id.
  Result<const TableInfo*> GetTableById(uint64_t table_id) const;

  bool HasTable(const std::string& name) const;

  /// Change the kind of an existing table (e.g. DB2-only -> accelerated
  /// after ACCEL_ADD_TABLES).
  Status SetTableKind(const std::string& name, TableKind kind);

  /// Record/clear the accelerator holding a table's accelerator-side data.
  Status SetAcceleratorName(const std::string& name,
                            const std::string& accelerator_name);

  /// All table names, sorted.
  std::vector<std::string> ListTables() const;

  size_t NumTables() const;

  /// Normalize an identifier the way the catalog does (upper case).
  static std::string NormalizeName(const std::string& name);

 private:
  mutable std::mutex mu_;
  uint64_t next_table_id_ = 1;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
};

}  // namespace idaa
