// AnalyticsInput: a pinned, morsel-planned batch view of one accelerator
// input table, the vectorized read path of the analytics framework.
//
// Opening an input takes the table's scan pin (ColumnTable::PinForScan) and
// holds it until the input is destroyed — for the whole duration of an
// operator run — so GROOM cannot rebuild slices (and shift row indexes)
// between an operator's passes, while writers keep appending and deleting
// freely. All scans share one morsel plan; per-morsel results are indexed
// by morsel and concatenated/merged in ascending morsel order, which equals
// the serial slice-order row sequence — so the batch path visits rows in
// exactly the order the row-at-a-time fallback does.

#pragma once

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "accel/column_table.h"
#include "common/result.h"
#include "common/row.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "txn/transaction_manager.h"

namespace idaa::analytics {

class AnalyticsInput {
 public:
  /// Pins `table` and plans its morsels; see AnalyticsContext::OpenInput.
  AnalyticsInput(const accel::ColumnTable* table, const TransactionManager* tm,
                 TxnId reader, Csn snapshot, ThreadPool* pool);

  AnalyticsInput(const AnalyticsInput&) = delete;
  AnalyticsInput& operator=(const AnalyticsInput&) = delete;

  const Schema& schema() const { return table_->schema(); }
  size_t num_morsels() const { return morsels_.size(); }
  /// False when some slice's (empty) predicate failed to compile — the
  /// caller must fall back to the serial row path.
  bool batchable() const { return batchable_; }

  /// Morsel-parallel scan: `fn(worker, morsel_index, batch)` receives every
  /// non-empty visible batch. `worker` < the pool's worker count lets the
  /// callback keep lock-free per-worker scratch; `morsel_index` orders the
  /// per-morsel partial states for the coordinator's deterministic merge.
  /// Each morsel is handed to exactly one worker; a per-morsel child span
  /// (`stage`.morsel) records its row accounting when tracing is on.
  using BatchFn = std::function<void(size_t worker, size_t morsel_index,
                                     const accel::ColumnBatch& batch)>;
  accel::BatchScanStats Scan(const BatchFn& fn, TraceContext tc,
                             const std::string& stage) const;

  /// Materialize all visible rows, concatenated in morsel order (identical
  /// content and order to the serial AnalyticsContext::ReadTable).
  std::vector<Row> GatherRows(TraceContext tc) const;

  /// Morsel-parallel columnar gather: every visible row as a column-major
  /// staging buffer, concatenated in morsel order — the same content and
  /// row order as GatherRows, without per-row Row/Value boxing.
  /// kNotSupported when a column's type has no ColumnarRows representation
  /// (callers fall back to GatherRows).
  Result<accel::ColumnarRows> GatherColumnar(TraceContext tc) const;

  /// Morsel-parallel numeric feature extraction straight off the raw column
  /// arrays (no per-row Value boxing). Rows with a NULL in any selected
  /// column are skipped, mirroring the serial ExtractFeatures. Errors if a
  /// selected column is VARCHAR. `total_rows`/`skipped_rows` receive the
  /// visible row count and the NULL-skipped count.
  Result<std::vector<std::vector<double>>> ExtractFeatures(
      const std::vector<size_t>& columns, TraceContext tc,
      size_t* total_rows = nullptr, size_t* skipped_rows = nullptr) const;

  /// Like ExtractFeatures but also materializes the (stringified) label
  /// column; rows with a NULL label or NULL feature are skipped.
  struct LabeledFeatures {
    std::vector<std::vector<double>> features;
    std::vector<std::string> labels;
    size_t total_rows = 0;
    size_t skipped_rows = 0;
  };
  Result<LabeledFeatures> ExtractLabeledFeatures(
      const std::vector<size_t>& feature_cols, size_t label_col,
      TraceContext tc) const;

  ThreadPool* pool() const { return pool_; }

 private:
  const accel::ColumnTable* table_;
  const TransactionManager* tm_;
  TxnId reader_;
  Csn snapshot_;
  ThreadPool* pool_;
  std::shared_lock<std::shared_mutex> pin_;  // held for the input's lifetime
  std::vector<accel::Morsel> morsels_;
  std::vector<accel::BatchPredicate> per_slice_;  // compiled empty predicate
  bool batchable_ = true;
};

}  // namespace idaa::analytics
