// OperatorRegistry: the deployment point of the analytics framework. New
// algorithms are registered here and become callable as DB2 stored
// procedures (CALL IDAA.<NAME>(...)) without any DB2-side code change.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analytics/operator.h"

namespace idaa::analytics {

class OperatorRegistry {
 public:
  /// Register an operator under its name(). Errors on duplicates.
  Status Register(std::unique_ptr<AnalyticsOperator> op);

  Result<AnalyticsOperator*> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  std::vector<std::string> List() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<AnalyticsOperator>> operators_;
};

/// Create a registry pre-loaded with every built-in operator (data prep,
/// k-means, linear regression, naive Bayes, decision tree, apriori).
std::unique_ptr<OperatorRegistry> MakeBuiltinRegistry();

}  // namespace idaa::analytics
