#include "analytics/operator.h"

#include "accel/accel_executor.h"
#include "common/string_util.h"

namespace idaa::analytics {

Result<ParamMap> ParseParams(const std::vector<Value>& args) {
  ParamMap out;
  for (const Value& arg : args) {
    if (!arg.is_varchar()) {
      return Status::InvalidArgument(
          "analytics procedures take 'key=value' string arguments, got: " +
          arg.ToString());
    }
    const std::string& text = arg.AsVarchar();
    size_t eq = text.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed parameter (expected key=value): " +
                                     text);
    }
    out[ToLower(Trim(text.substr(0, eq)))] = Trim(text.substr(eq + 1));
  }
  return out;
}

Result<std::string> GetParam(const ParamMap& params, const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) {
    return Status::InvalidArgument("missing required parameter: " + key);
  }
  return it->second;
}

std::string GetParamOr(const ParamMap& params, const std::string& key,
                       const std::string& fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

Result<int64_t> GetIntParam(const ParamMap& params, const std::string& key,
                            int64_t fallback) {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    return static_cast<int64_t>(std::stoll(it->second));
  } catch (...) {
    return Status::InvalidArgument("parameter " + key +
                                   " is not an integer: " + it->second);
  }
}

Result<double> GetDoubleParam(const ParamMap& params, const std::string& key,
                              double fallback) {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return Status::InvalidArgument("parameter " + key +
                                   " is not a number: " + it->second);
  }
}

Result<std::vector<Row>> AnalyticsContext::ReadTable(const std::string& name) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(name));
  if (info->kind == TableKind::kDb2Only) {
    return Status::InvalidArgument(
        "table " + info->name +
        " is not on the accelerator; add it with ACCEL_ADD_TABLES first");
  }
  IDAA_ASSIGN_OR_RETURN(const accel::ColumnTable* table,
                        static_cast<const accel::Accelerator*>(accelerator_)
                            ->GetTable(info->name));
  return accel::ParallelScan(*table, /*predicate=*/nullptr, txn_->id(),
                             txn_->snapshot_csn(), *tm_,
                             accelerator_->thread_pool(), metrics_);
}

Result<Schema> AnalyticsContext::TableSchema(const std::string& name) const {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(name));
  return info->schema;
}

Status AnalyticsContext::CreateAot(const std::string& name,
                                   const Schema& schema) {
  TableInfo info;
  info.name = name;
  info.schema = schema;
  info.kind = TableKind::kAcceleratorOnly;
  info.accelerator_name = accelerator_->name();
  IDAA_ASSIGN_OR_RETURN(uint64_t id, catalog_->CreateTable(info));
  (void)id;
  IDAA_ASSIGN_OR_RETURN(const TableInfo* stored, catalog_->GetTable(name));
  Status status = accelerator_->AddTable(*stored);
  if (!status.ok()) {
    (void)catalog_->DropTable(name);
    return status;
  }
  created_tables_.push_back(stored->name);
  return Status::OK();
}

Status AnalyticsContext::RecreateAot(const std::string& name,
                                     const Schema& schema) {
  if (catalog_->HasTable(name)) {
    IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(name));
    if (info->kind != TableKind::kAcceleratorOnly) {
      return Status::InvalidArgument("output table " + info->name +
                                     " exists and is not accelerator-only");
    }
    IDAA_RETURN_IF_ERROR(accelerator_->RemoveTable(name));
    IDAA_RETURN_IF_ERROR(catalog_->DropTable(name));
  }
  return CreateAot(name, schema);
}

Status AnalyticsContext::AppendRows(const std::string& name,
                                    const std::vector<Row>& rows) {
  return accelerator_->LoadRows(name, rows, txn_->id());
}

Status AnalyticsContext::AppendColumnar(const std::string& name,
                                        const accel::ColumnarRows& rows) {
  return accelerator_->LoadColumnar(name, rows, txn_->id());
}

Result<std::vector<size_t>> ResolveColumns(const Schema& schema,
                                           const std::string& comma_list) {
  std::vector<size_t> out;
  for (const std::string& raw : Split(comma_list, ',')) {
    std::string name = Trim(raw);
    if (name.empty()) continue;
    IDAA_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
    out.push_back(idx);
  }
  if (out.empty()) {
    return Status::InvalidArgument("empty column list: '" + comma_list + "'");
  }
  return out;
}

Result<std::vector<std::vector<double>>> ExtractFeatures(
    const std::vector<Row>& rows, const std::vector<size_t>& columns,
    std::vector<size_t>* kept) {
  std::vector<std::vector<double>> features;
  features.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<double> feature;
    feature.reserve(columns.size());
    bool skip = false;
    for (size_t c : columns) {
      const Value& v = rows[r][c];
      if (v.is_null()) {
        skip = true;
        break;
      }
      auto d = v.ToDouble();
      if (!d.ok()) return d.status();
      feature.push_back(*d);
    }
    if (skip) continue;
    if (kept != nullptr) kept->push_back(r);
    features.push_back(std::move(feature));
  }
  return features;
}

}  // namespace idaa::analytics
