// Pipeline: the multi-stage ELT / mining chain the paper's introduction
// motivates — "multiple SQL statements, each implementing a step or stage
// in a chain of data preparation, transformation, and evaluation tasks".
// A Pipeline is an ordered list of SQL stages executed through a caller-
// provided SqlExecutor (the IdaaSystem facade supplies one); with AOT
// staging tables the whole chain stays on the accelerator.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"

namespace idaa::analytics {

/// Outcome of one pipeline stage.
struct StageResult {
  std::string name;
  size_t affected_rows = 0;
  bool on_accelerator = false;
  std::string detail;
};

struct PipelineReport {
  std::vector<StageResult> stages;
  size_t total_rows = 0;
  size_t stages_on_accelerator = 0;
};

/// Executes one SQL statement; returns (affected rows, ran-on-accelerator,
/// detail). Supplied by the embedding system.
using SqlExecutor =
    std::function<Result<StageResult>(const std::string& sql)>;

class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Append a stage. Stages run in insertion order.
  Pipeline& AddStage(std::string stage_name, std::string sql);

  size_t NumStages() const { return stages_.size(); }

  /// Run all stages; stops at the first failure.
  Result<PipelineReport> Run(const SqlExecutor& executor) const;

 private:
  struct Stage {
    std::string name;
    std::string sql;
  };
  std::string name_;
  std::vector<Stage> stages_;
};

}  // namespace idaa::analytics
