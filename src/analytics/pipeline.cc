#include "analytics/pipeline.h"

namespace idaa::analytics {

Pipeline& Pipeline::AddStage(std::string stage_name, std::string sql) {
  stages_.push_back({std::move(stage_name), std::move(sql)});
  return *this;
}

Result<PipelineReport> Pipeline::Run(const SqlExecutor& executor) const {
  PipelineReport report;
  for (const Stage& stage : stages_) {
    IDAA_ASSIGN_OR_RETURN(StageResult result, executor(stage.sql));
    result.name = stage.name;
    report.total_rows += result.affected_rows;
    if (result.on_accelerator) ++report.stages_on_accelerator;
    report.stages.push_back(std::move(result));
  }
  return report;
}

}  // namespace idaa::analytics
