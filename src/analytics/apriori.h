// APRIORI: frequent-itemset mining over a (transaction id, item) table.
// Params: input, tid_column, item_column, min_support (fraction, def 0.1),
// max_size (def 3), output (optional AOT: ITEMSET VARCHAR, SIZE INTEGER,
// SUPPORT DOUBLE). Summary: itemsets found per size.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analytics/operator.h"

namespace idaa::analytics {

std::unique_ptr<AnalyticsOperator> MakeAprioriOperator();

/// A frequent itemset with its support.
struct FrequentItemset {
  std::vector<std::string> items;  // sorted
  double support = 0;
};

/// Classic Apriori over transactions (each a set of items). With a pool,
/// candidate support counting (the hot loop) runs one task per candidate;
/// counts are integers, so the result is exactly the serial one for any
/// thread count.
std::vector<FrequentItemset> RunApriori(
    const std::vector<std::set<std::string>>& transactions,
    double min_support, size_t max_size, ThreadPool* pool = nullptr);

}  // namespace idaa::analytics
