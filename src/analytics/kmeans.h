// KMEANS: Lloyd's k-means clustering over numeric feature columns.
// Params: input, output (assignments AOT), columns, k (def 3),
//         max_iters (def 25), seed (def 42), centroids_output (optional AOT)
// Output AOT: selected feature columns + CLUSTER (INTEGER).
// Summary: k, iterations, inertia, rows.

#pragma once

#include <memory>

#include "analytics/operator.h"

namespace idaa::analytics {

std::unique_ptr<AnalyticsOperator> MakeKMeansOperator();

/// Library entry point (also used by tests/benches directly):
/// Lloyd's algorithm; returns final centroids and fills assignments/inertia.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<size_t> assignments;
  double inertia = 0.0;
  size_t iterations = 0;
};
KMeansResult RunKMeans(const std::vector<std::vector<double>>& points,
                       size_t k, size_t max_iters, uint64_t seed);

/// Morsel-parallel Lloyd's: assignment and accumulation run over fixed-size
/// chunks on `pool`, per-chunk centroid sums/counts merged in ascending
/// chunk order — bit-identical for any thread count (including pool ==
/// nullptr), epsilon-close to the serial RunKMeans row-order accumulation.
KMeansResult RunKMeansParallel(const std::vector<std::vector<double>>& points,
                               size_t k, size_t max_iters, uint64_t seed,
                               ThreadPool* pool);

}  // namespace idaa::analytics
