// DECISIONTREE: CART-style classification tree (Gini impurity, numeric
// features, VARCHAR label). Params: input, label, columns, output (optional
// predictions AOT), max_depth (def 5), min_samples (def 4).
// Summary: training accuracy, node count, depth.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analytics/operator.h"

namespace idaa::analytics {

std::unique_ptr<AnalyticsOperator> MakeDecisionTreeOperator();

/// Trained classification tree, usable directly from C++.
class DecisionTreeModel {
 public:
  /// With a pool, the per-feature best-split search at each node runs
  /// morsel-parallel (one task per feature); each feature's scan is
  /// self-contained and the ascending-feature reduction replicates the
  /// serial loop's tie-breaking, so the fitted tree is *exactly* the tree
  /// the serial search builds, for any thread count.
  static Result<DecisionTreeModel> Fit(
      const std::vector<std::vector<double>>& features,
      const std::vector<std::string>& labels, size_t max_depth,
      size_t min_samples, ThreadPool* pool = nullptr);

  const std::string& Predict(const std::vector<double>& features) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t Depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::string label;      // leaf prediction
    size_t feature = 0;     // split feature
    double threshold = 0;   // go left if value <= threshold
    int left = -1;
    int right = -1;
    size_t depth = 0;
  };

  int Build(const std::vector<std::vector<double>>& features,
            const std::vector<std::string>& labels,
            const std::vector<size_t>& indices, size_t depth, size_t max_depth,
            size_t min_samples);

  std::vector<Node> nodes_;
  ThreadPool* pool_ = nullptr;  // split-search parallelism (may be null)
};

}  // namespace idaa::analytics
