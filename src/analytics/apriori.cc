#include "analytics/apriori.h"

#include <algorithm>
#include <cmath>

#include "analytics/batch_input.h"
#include "analytics/parallel.h"
#include "common/string_util.h"

namespace idaa::analytics {

std::vector<FrequentItemset> RunApriori(
    const std::vector<std::set<std::string>>& transactions,
    double min_support, size_t max_size, ThreadPool* pool) {
  std::vector<FrequentItemset> result;
  if (transactions.empty()) return result;
  const double n = static_cast<double>(transactions.size());
  const size_t min_count =
      static_cast<size_t>(std::ceil(min_support * n));

  // L1: frequent single items.
  std::map<std::string, size_t> item_counts;
  for (const auto& txn : transactions) {
    for (const auto& item : txn) ++item_counts[item];
  }
  std::vector<std::vector<std::string>> current;  // frequent (k)-itemsets
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count && min_count > 0) {
      current.push_back({item});
      result.push_back({{item}, static_cast<double>(count) / n});
    }
  }

  // Iteratively join L(k) with itself into candidates C(k+1), count, prune.
  for (size_t k = 2; k <= max_size && current.size() >= 2; ++k) {
    std::set<std::vector<std::string>> candidates;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        // Join when the first k-2 items agree (classic prefix join).
        bool joinable = true;
        for (size_t p = 0; p + 1 < current[i].size(); ++p) {
          if (current[i][p] != current[j][p]) {
            joinable = false;
            break;
          }
        }
        if (!joinable) continue;
        std::vector<std::string> candidate = current[i];
        candidate.push_back(current[j].back());
        std::sort(candidate.begin(), candidate.end());
        candidate.erase(std::unique(candidate.begin(), candidate.end()),
                        candidate.end());
        if (candidate.size() == k) candidates.insert(std::move(candidate));
      }
    }
    // Support counting is the hot loop: one independent task per candidate.
    // Integer counts iterated in candidate (sorted-set) order make the
    // parallel result exactly the serial one.
    std::vector<std::vector<std::string>> ordered(candidates.begin(),
                                                  candidates.end());
    std::vector<size_t> counts_per_candidate(ordered.size(), 0);
    auto count_candidate = [&](size_t c) {
      size_t count = 0;
      for (const auto& txn : transactions) {
        bool contains = true;
        for (const auto& item : ordered[c]) {
          if (!txn.count(item)) {
            contains = false;
            break;
          }
        }
        if (contains) ++count;
      }
      counts_per_candidate[c] = count;
    };
    if (pool != nullptr && ordered.size() > 1) {
      pool->ParallelForDynamic(
          ordered.size(), std::min(pool->num_threads(), ordered.size()),
          [&](size_t, size_t c) { count_candidate(c); });
    } else {
      for (size_t c = 0; c < ordered.size(); ++c) count_candidate(c);
    }
    std::vector<std::vector<std::string>> next;
    for (size_t c = 0; c < ordered.size(); ++c) {
      if (counts_per_candidate[c] >= min_count && min_count > 0) {
        next.push_back(ordered[c]);
        result.push_back(
            {ordered[c], static_cast<double>(counts_per_candidate[c]) / n});
      }
    }
    current = std::move(next);
  }
  return result;
}

namespace {

class AprioriOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "APRIORI"; }
  std::string description() const override {
    return "frequent itemset mining (Apriori)";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string tid_name,
                          GetParam(params, "tid_column"));
    IDAA_ASSIGN_OR_RETURN(std::string item_name,
                          GetParam(params, "item_column"));
    IDAA_ASSIGN_OR_RETURN(double min_support,
                          GetDoubleParam(params, "min_support", 0.1));
    IDAA_ASSIGN_OR_RETURN(int64_t max_size, GetIntParam(params, "max_size", 3));

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(size_t tid_col, in_schema.ColumnIndex(tid_name));
    IDAA_ASSIGN_OR_RETURN(size_t item_col, in_schema.ColumnIndex(item_name));

    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    // Grouping into per-tid item sets is set-union, so the per-morsel
    // partial maps merged in ascending morsel order are exactly the map the
    // serial row loop builds.
    std::map<std::string, std::set<std::string>> grouped;
    if (in != nullptr) {
      std::vector<std::map<std::string, std::set<std::string>>> partials(
          in->num_morsels());
      in->Scan(
          [&](size_t, size_t mi, const accel::ColumnBatch& batch) {
            auto& part = partials[mi];
            const accel::Column& tid = *(*batch.columns)[tid_col];
            const accel::Column& item = *(*batch.columns)[item_col];
            for (size_t k = 0; k < batch.sel_count; ++k) {
              const size_t i = batch.AbsoluteRow(k);
              if (tid.IsNull(i) || item.IsNull(i)) continue;
              part[tid.Get(i).ToString()].insert(item.Get(i).ToString());
            }
          },
          ctx.trace(), "analytics.apriori.group");
      for (auto& part : partials) {
        for (auto& [tid, items] : part) {
          grouped[tid].insert(items.begin(), items.end());
        }
      }
    } else {
      IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));
      for (const Row& row : rows) {
        if (row[tid_col].is_null() || row[item_col].is_null()) continue;
        grouped[row[tid_col].ToString()].insert(row[item_col].ToString());
      }
    }
    std::vector<std::set<std::string>> transactions;
    transactions.reserve(grouped.size());
    for (auto& [tid, items] : grouped) transactions.push_back(std::move(items));

    std::vector<FrequentItemset> itemsets;
    {
      TraceSpan mine(ctx.trace(), "analytics.apriori.mine");
      mine.Attr("batch_path", in != nullptr ? "true" : "false");
      mine.Attr("transactions", static_cast<uint64_t>(transactions.size()));
      itemsets = RunApriori(transactions, min_support,
                            static_cast<size_t>(max_size),
                            in != nullptr ? in->pool() : nullptr);
    }
    in.reset();  // release the scan pin before materializing output AOTs

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      Schema out_schema({{"ITEMSET", DataType::kVarchar, false},
                         {"SIZE", DataType::kInteger, false},
                         {"SUPPORT", DataType::kDouble, false}});
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
      std::vector<Row> out_rows;
      for (const auto& itemset : itemsets) {
        out_rows.push_back(
            {Value::Varchar(Join(itemset.items, ",")),
             Value::Integer(static_cast<int64_t>(itemset.items.size())),
             Value::Double(itemset.support)});
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    std::map<size_t, size_t> per_size;
    for (const auto& itemset : itemsets) ++per_size[itemset.items.size()];
    ResultSet summary{Schema({{"SIZE", DataType::kInteger, false},
                              {"ITEMSETS", DataType::kInteger, false}})};
    for (const auto& [size, count] : per_size) {
      summary.Append({Value::Integer(static_cast<int64_t>(size)),
                      Value::Integer(static_cast<int64_t>(count))});
    }
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeAprioriOperator() {
  return std::make_unique<AprioriOperator>();
}

}  // namespace idaa::analytics
