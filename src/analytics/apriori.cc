#include "analytics/apriori.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace idaa::analytics {

std::vector<FrequentItemset> RunApriori(
    const std::vector<std::set<std::string>>& transactions,
    double min_support, size_t max_size) {
  std::vector<FrequentItemset> result;
  if (transactions.empty()) return result;
  const double n = static_cast<double>(transactions.size());
  const size_t min_count =
      static_cast<size_t>(std::ceil(min_support * n));

  // L1: frequent single items.
  std::map<std::string, size_t> item_counts;
  for (const auto& txn : transactions) {
    for (const auto& item : txn) ++item_counts[item];
  }
  std::vector<std::vector<std::string>> current;  // frequent (k)-itemsets
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count && min_count > 0) {
      current.push_back({item});
      result.push_back({{item}, static_cast<double>(count) / n});
    }
  }

  // Iteratively join L(k) with itself into candidates C(k+1), count, prune.
  for (size_t k = 2; k <= max_size && current.size() >= 2; ++k) {
    std::set<std::vector<std::string>> candidates;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        // Join when the first k-2 items agree (classic prefix join).
        bool joinable = true;
        for (size_t p = 0; p + 1 < current[i].size(); ++p) {
          if (current[i][p] != current[j][p]) {
            joinable = false;
            break;
          }
        }
        if (!joinable) continue;
        std::vector<std::string> candidate = current[i];
        candidate.push_back(current[j].back());
        std::sort(candidate.begin(), candidate.end());
        candidate.erase(std::unique(candidate.begin(), candidate.end()),
                        candidate.end());
        if (candidate.size() == k) candidates.insert(std::move(candidate));
      }
    }
    std::vector<std::vector<std::string>> next;
    for (const auto& candidate : candidates) {
      size_t count = 0;
      for (const auto& txn : transactions) {
        bool contains = true;
        for (const auto& item : candidate) {
          if (!txn.count(item)) {
            contains = false;
            break;
          }
        }
        if (contains) ++count;
      }
      if (count >= min_count && min_count > 0) {
        next.push_back(candidate);
        result.push_back({candidate, static_cast<double>(count) / n});
      }
    }
    current = std::move(next);
  }
  return result;
}

namespace {

class AprioriOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "APRIORI"; }
  std::string description() const override {
    return "frequent itemset mining (Apriori)";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string tid_name,
                          GetParam(params, "tid_column"));
    IDAA_ASSIGN_OR_RETURN(std::string item_name,
                          GetParam(params, "item_column"));
    IDAA_ASSIGN_OR_RETURN(double min_support,
                          GetDoubleParam(params, "min_support", 0.1));
    IDAA_ASSIGN_OR_RETURN(int64_t max_size, GetIntParam(params, "max_size", 3));

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(size_t tid_col, in_schema.ColumnIndex(tid_name));
    IDAA_ASSIGN_OR_RETURN(size_t item_col, in_schema.ColumnIndex(item_name));
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));

    std::map<std::string, std::set<std::string>> grouped;
    for (const Row& row : rows) {
      if (row[tid_col].is_null() || row[item_col].is_null()) continue;
      grouped[row[tid_col].ToString()].insert(row[item_col].ToString());
    }
    std::vector<std::set<std::string>> transactions;
    transactions.reserve(grouped.size());
    for (auto& [tid, items] : grouped) transactions.push_back(std::move(items));

    std::vector<FrequentItemset> itemsets = RunApriori(
        transactions, min_support, static_cast<size_t>(max_size));

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      Schema out_schema({{"ITEMSET", DataType::kVarchar, false},
                         {"SIZE", DataType::kInteger, false},
                         {"SUPPORT", DataType::kDouble, false}});
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
      std::vector<Row> out_rows;
      for (const auto& itemset : itemsets) {
        out_rows.push_back(
            {Value::Varchar(Join(itemset.items, ",")),
             Value::Integer(static_cast<int64_t>(itemset.items.size())),
             Value::Double(itemset.support)});
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    std::map<size_t, size_t> per_size;
    for (const auto& itemset : itemsets) ++per_size[itemset.items.size()];
    ResultSet summary{Schema({{"SIZE", DataType::kInteger, false},
                              {"ITEMSETS", DataType::kInteger, false}})};
    for (const auto& [size, count] : per_size) {
      summary.Append({Value::Integer(static_cast<int64_t>(size)),
                      Value::Integer(static_cast<int64_t>(count))});
    }
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeAprioriOperator() {
  return std::make_unique<AprioriOperator>();
}

}  // namespace idaa::analytics
