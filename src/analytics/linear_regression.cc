#include "analytics/linear_regression.h"

#include <cmath>

#include "analytics/batch_input.h"
#include "analytics/parallel.h"
#include "common/string_util.h"

namespace idaa::analytics {

namespace {

/// Solve (X'X) beta = X'y by Gaussian elimination with partial pivoting;
/// shared by the serial and morsel-parallel kernels.
Result<std::vector<double>> SolveNormalEquations(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const size_t p = b.size();
  for (size_t col = 0; col < p; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < p; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::InvalidArgument(
          "OLS: singular system (collinear features?)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = 0; r < p; ++r) {
      if (r == col) continue;
      double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < p; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> coefficients(p);
  for (size_t i = 0; i < p; ++i) coefficients[i] = b[i] / a[i][i];
  return coefficients;
}

}  // namespace

Result<OlsResult> SolveOls(const std::vector<std::vector<double>>& features,
                           const std::vector<double>& target) {
  if (features.size() != target.size() || features.empty()) {
    return Status::InvalidArgument("OLS: empty or mismatched inputs");
  }
  const size_t n = features.size();
  const size_t p = features[0].size() + 1;  // + intercept
  if (n < p) {
    return Status::InvalidArgument("OLS: fewer rows than parameters");
  }

  // Build X'X (p x p) and X'y (p).
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (size_t r = 0; r < n; ++r) {
    std::vector<double> x(p);
    x[0] = 1.0;
    for (size_t j = 1; j < p; ++j) x[j] = features[r][j - 1];
    for (size_t i = 0; i < p; ++i) {
      xty[i] += x[i] * target[r];
      for (size_t j = 0; j < p; ++j) xtx[i][j] += x[i] * x[j];
    }
  }

  OlsResult result;
  IDAA_ASSIGN_OR_RETURN(result.coefficients,
                        SolveNormalEquations(xtx, xty));

  // Fit statistics.
  double y_mean = 0;
  for (double y : target) y_mean += y;
  y_mean /= static_cast<double>(n);
  double ss_res = 0, ss_tot = 0;
  for (size_t r = 0; r < n; ++r) {
    double pred = result.coefficients[0];
    for (size_t j = 1; j < p; ++j) {
      pred += result.coefficients[j] * features[r][j - 1];
    }
    ss_res += (target[r] - pred) * (target[r] - pred);
    ss_tot += (target[r] - y_mean) * (target[r] - y_mean);
  }
  result.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  result.rmse = std::sqrt(ss_res / static_cast<double>(n));
  return result;
}

Result<OlsResult> SolveOlsParallel(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& target, ThreadPool* pool) {
  if (features.size() != target.size() || features.empty()) {
    return Status::InvalidArgument("OLS: empty or mismatched inputs");
  }
  const size_t n = features.size();
  const size_t p = features[0].size() + 1;  // + intercept
  if (n < p) {
    return Status::InvalidArgument("OLS: fewer rows than parameters");
  }

  // Per-chunk X'X / X'y / y-sum partials, merged in ascending chunk order.
  struct Partial {
    std::vector<std::vector<double>> xtx;
    std::vector<double> xty;
    double y_sum = 0;
  };
  std::vector<Partial> partials(NumChunks(n));
  ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
    Partial& part = partials[chunk];
    part.xtx.assign(p, std::vector<double>(p, 0.0));
    part.xty.assign(p, 0.0);
    std::vector<double> x(p);
    for (size_t r = begin; r < end; ++r) {
      x[0] = 1.0;
      for (size_t j = 1; j < p; ++j) x[j] = features[r][j - 1];
      for (size_t i = 0; i < p; ++i) {
        part.xty[i] += x[i] * target[r];
        for (size_t j = 0; j < p; ++j) part.xtx[i][j] += x[i] * x[j];
      }
      part.y_sum += target[r];
    }
  });
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  double y_sum = 0;
  for (const Partial& part : partials) {
    y_sum += part.y_sum;
    for (size_t i = 0; i < p; ++i) {
      xty[i] += part.xty[i];
      for (size_t j = 0; j < p; ++j) xtx[i][j] += part.xtx[i][j];
    }
  }

  OlsResult result;
  IDAA_ASSIGN_OR_RETURN(result.coefficients,
                        SolveNormalEquations(xtx, xty));

  const double y_mean = y_sum / static_cast<double>(n);
  struct StatsPartial {
    double ss_res = 0, ss_tot = 0;
  };
  std::vector<StatsPartial> stats(partials.size());
  ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
    StatsPartial& part = stats[chunk];
    for (size_t r = begin; r < end; ++r) {
      double pred = result.coefficients[0];
      for (size_t j = 1; j < p; ++j) {
        pred += result.coefficients[j] * features[r][j - 1];
      }
      part.ss_res += (target[r] - pred) * (target[r] - pred);
      part.ss_tot += (target[r] - y_mean) * (target[r] - y_mean);
    }
  });
  double ss_res = 0, ss_tot = 0;
  for (const StatsPartial& part : stats) {
    ss_res += part.ss_res;
    ss_tot += part.ss_tot;
  }
  result.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  result.rmse = std::sqrt(ss_res / static_cast<double>(n));
  return result;
}

namespace {

class LinearRegressionOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "LINREG"; }
  std::string description() const override {
    return "ordinary least squares regression (normal equations)";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string target_name, GetParam(params, "target"));
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> feature_cols,
                          ResolveColumns(in_schema, columns_list));
    IDAA_ASSIGN_OR_RETURN(size_t target_col,
                          in_schema.ColumnIndex(target_name));

    // Rows with NULL in target or any feature are skipped.
    std::vector<size_t> all_cols = feature_cols;
    all_cols.push_back(target_col);

    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    std::vector<std::vector<double>> matrix;
    if (in != nullptr) {
      auto extracted = in->ExtractFeatures(all_cols, ctx.trace());
      if (extracted.ok()) {
        matrix = std::move(*extracted);
      } else {
        in.reset();  // non-numeric column: serial path owns the error
      }
    }
    if (in == nullptr) {
      IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));
      IDAA_ASSIGN_OR_RETURN(matrix, ExtractFeatures(rows, all_cols));
    }
    std::vector<std::vector<double>> features;
    std::vector<double> target;
    features.reserve(matrix.size());
    target.reserve(matrix.size());
    for (auto& row : matrix) {
      target.push_back(row.back());
      row.pop_back();
      features.push_back(std::move(row));
    }

    OlsResult ols;
    {
      TraceSpan fit(ctx.trace(), "analytics.linreg.fit");
      fit.Attr("batch_path", in != nullptr ? "true" : "false");
      fit.Attr("rows", static_cast<uint64_t>(features.size()));
      if (in != nullptr) {
        fit.Attr("partial_merges",
                 static_cast<uint64_t>(NumChunks(features.size())));
        IDAA_ASSIGN_OR_RETURN(ols,
                              SolveOlsParallel(features, target, in->pool()));
      } else {
        IDAA_ASSIGN_OR_RETURN(ols, SolveOls(features, target));
      }
    }
    in.reset();  // release the scan pin before materializing output AOTs

    // Optional predictions AOT.
    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      std::vector<ColumnDef> out_cols;
      for (size_t c : feature_cols) {
        ColumnDef def = in_schema.Column(c);
        def.type = DataType::kDouble;
        out_cols.push_back(def);
      }
      out_cols.push_back({"ACTUAL", DataType::kDouble, false});
      out_cols.push_back({"PREDICTED", DataType::kDouble, false});
      out_cols.push_back({"RESIDUAL", DataType::kDouble, false});
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, Schema(out_cols)));
      std::vector<Row> out_rows;
      out_rows.reserve(features.size());
      for (size_t r = 0; r < features.size(); ++r) {
        double pred = ols.coefficients[0];
        for (size_t j = 0; j < features[r].size(); ++j) {
          pred += ols.coefficients[j + 1] * features[r][j];
        }
        Row row;
        for (double d : features[r]) row.push_back(Value::Double(d));
        row.push_back(Value::Double(target[r]));
        row.push_back(Value::Double(pred));
        row.push_back(Value::Double(target[r] - pred));
        out_rows.push_back(std::move(row));
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    // Summary: coefficient table + fit stats.
    ResultSet summary{Schema({{"TERM", DataType::kVarchar, false},
                              {"VALUE", DataType::kDouble, false}})};
    summary.Append({Value::Varchar("INTERCEPT"),
                    Value::Double(ols.coefficients[0])});
    for (size_t j = 0; j < feature_cols.size(); ++j) {
      summary.Append({Value::Varchar(in_schema.Column(feature_cols[j]).name),
                      Value::Double(ols.coefficients[j + 1])});
    }
    summary.Append({Value::Varchar("R2"), Value::Double(ols.r2)});
    summary.Append({Value::Varchar("RMSE"), Value::Double(ols.rmse)});
    summary.Append({Value::Varchar("ROWS"),
                    Value::Double(static_cast<double>(features.size()))});
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeLinearRegressionOperator() {
  return std::make_unique<LinearRegressionOperator>();
}

}  // namespace idaa::analytics
