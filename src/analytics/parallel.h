// Fixed-chunk parallelism for the analytics kernels. Chunk boundaries
// depend only on the input size (never on the thread count), and callers
// merge per-chunk partial states in ascending chunk order — so a kernel's
// result is bit-identical whether it runs on 1 thread or 16. Only the
// serial row-at-a-time fallback accumulates in a different (row) order,
// which is why serial-vs-batch comparisons are epsilon-bounded while
// batch-vs-batch comparisons across thread counts are exact.

#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace idaa::analytics {

/// Rows per kernel chunk (mirrors the accelerator's default morsel size).
inline constexpr size_t kAnalyticsChunkRows = 4096;

/// Number of fixed-size chunks covering `n` rows.
inline size_t NumChunks(size_t n) {
  return (n + kAnalyticsChunkRows - 1) / kAnalyticsChunkRows;
}

/// Run fn(chunk_index, row_begin, row_end) over the fixed chunks of
/// [0, n), morsel-driven on `pool` when available, serially otherwise.
/// Each chunk is processed by exactly one worker; callers keep per-chunk
/// partial state (indexed by chunk_index) and merge it in ascending order.
inline void ParallelChunks(
    ThreadPool* pool, size_t n,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t chunks = NumChunks(n);
  if (chunks == 0) return;
  auto run = [&](size_t /*worker*/, size_t c) {
    fn(c, c * kAnalyticsChunkRows,
       std::min(n, (c + 1) * kAnalyticsChunkRows));
  };
  if (pool != nullptr && chunks > 1) {
    pool->ParallelForDynamic(chunks, std::min(pool->num_threads(), chunks),
                             run);
  } else {
    for (size_t c = 0; c < chunks; ++c) run(0, c);
  }
}

}  // namespace idaa::analytics
