#include "analytics/naive_bayes.h"

#include <cmath>
#include <limits>

#include "analytics/batch_input.h"
#include "analytics/parallel.h"

namespace idaa::analytics {

Result<GaussianNbModel> GaussianNbModel::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<std::string>& labels) {
  if (features.size() != labels.size() || features.empty()) {
    return Status::InvalidArgument("NB: empty or mismatched inputs");
  }
  const size_t dims = features[0].size();
  GaussianNbModel model;

  std::map<std::string, size_t> counts;
  for (size_t r = 0; r < features.size(); ++r) {
    ClassStats& stats = model.classes_[labels[r]];
    if (stats.mean.empty()) {
      stats.mean.assign(dims, 0.0);
      stats.variance.assign(dims, 0.0);
    }
    ++counts[labels[r]];
    for (size_t d = 0; d < dims; ++d) stats.mean[d] += features[r][d];
  }
  for (auto& [label, stats] : model.classes_) {
    double n = static_cast<double>(counts[label]);
    for (size_t d = 0; d < dims; ++d) stats.mean[d] /= n;
    stats.prior = n / static_cast<double>(features.size());
    model.priors_[label] = stats.prior;
  }
  for (size_t r = 0; r < features.size(); ++r) {
    ClassStats& stats = model.classes_[labels[r]];
    for (size_t d = 0; d < dims; ++d) {
      double diff = features[r][d] - stats.mean[d];
      stats.variance[d] += diff * diff;
    }
  }
  for (auto& [label, stats] : model.classes_) {
    double n = static_cast<double>(counts[label]);
    for (size_t d = 0; d < dims; ++d) {
      stats.variance[d] = stats.variance[d] / n + 1e-9;  // smoothed
    }
  }
  return model;
}

Result<GaussianNbModel> GaussianNbModel::FitParallel(
    const std::vector<std::vector<double>>& features,
    const std::vector<std::string>& labels, ThreadPool* pool) {
  if (features.size() != labels.size() || features.empty()) {
    return Status::InvalidArgument("NB: empty or mismatched inputs");
  }
  const size_t dims = features[0].size();
  const size_t n = features.size();
  GaussianNbModel model;

  // Pass 1: per-chunk class counts and mean sums (std::map keeps classes in
  // sorted order, so the ascending-chunk merge is deterministic).
  struct MeanPartial {
    size_t count = 0;
    std::vector<double> sum;
  };
  std::vector<std::map<std::string, MeanPartial>> mean_partials(NumChunks(n));
  ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
    auto& part = mean_partials[chunk];
    for (size_t r = begin; r < end; ++r) {
      MeanPartial& cls = part[labels[r]];
      if (cls.sum.empty()) cls.sum.assign(dims, 0.0);
      ++cls.count;
      for (size_t d = 0; d < dims; ++d) cls.sum[d] += features[r][d];
    }
  });
  std::map<std::string, size_t> counts;
  for (const auto& part : mean_partials) {
    for (const auto& [label, cls] : part) {
      ClassStats& stats = model.classes_[label];
      if (stats.mean.empty()) {
        stats.mean.assign(dims, 0.0);
        stats.variance.assign(dims, 0.0);
      }
      counts[label] += cls.count;
      for (size_t d = 0; d < dims; ++d) stats.mean[d] += cls.sum[d];
    }
  }
  for (auto& [label, stats] : model.classes_) {
    double cls_n = static_cast<double>(counts[label]);
    for (size_t d = 0; d < dims; ++d) stats.mean[d] /= cls_n;
    stats.prior = cls_n / static_cast<double>(n);
    model.priors_[label] = stats.prior;
  }

  // Pass 2: per-chunk variance sums against the final means.
  std::vector<std::map<std::string, std::vector<double>>> var_partials(
      NumChunks(n));
  ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
    auto& part = var_partials[chunk];
    for (size_t r = begin; r < end; ++r) {
      const ClassStats& stats = model.classes_.at(labels[r]);
      std::vector<double>& acc = part[labels[r]];
      if (acc.empty()) acc.assign(dims, 0.0);
      for (size_t d = 0; d < dims; ++d) {
        double diff = features[r][d] - stats.mean[d];
        acc[d] += diff * diff;
      }
    }
  });
  for (const auto& part : var_partials) {
    for (const auto& [label, acc] : part) {
      ClassStats& stats = model.classes_[label];
      for (size_t d = 0; d < dims; ++d) stats.variance[d] += acc[d];
    }
  }
  for (auto& [label, stats] : model.classes_) {
    double cls_n = static_cast<double>(counts[label]);
    for (size_t d = 0; d < dims; ++d) {
      stats.variance[d] = stats.variance[d] / cls_n + 1e-9;  // smoothed
    }
  }
  return model;
}

const std::string& GaussianNbModel::Predict(
    const std::vector<double>& features) const {
  double best_score = -std::numeric_limits<double>::max();
  const std::string* best_label = &classes_.begin()->first;
  for (const auto& [label, stats] : classes_) {
    double score = std::log(stats.prior);
    for (size_t d = 0; d < features.size(); ++d) {
      double var = stats.variance[d];
      double diff = features[d] - stats.mean[d];
      score += -0.5 * std::log(2.0 * M_PI * var) - diff * diff / (2.0 * var);
    }
    if (score > best_score) {
      best_score = score;
      best_label = &label;
    }
  }
  return *best_label;
}

namespace {

class NaiveBayesOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "NAIVEBAYES"; }
  std::string description() const override {
    return "Gaussian naive Bayes classifier";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string label_name, GetParam(params, "label"));
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> feature_cols,
                          ResolveColumns(in_schema, columns_list));
    IDAA_ASSIGN_OR_RETURN(size_t label_col, in_schema.ColumnIndex(label_name));

    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    std::vector<std::vector<double>> features;
    std::vector<std::string> labels;
    if (in != nullptr) {
      auto extracted =
          in->ExtractLabeledFeatures(feature_cols, label_col, ctx.trace());
      if (extracted.ok()) {
        features = std::move(extracted->features);
        labels = std::move(extracted->labels);
      } else {
        in.reset();  // non-numeric column: serial path owns the error
      }
    }
    if (in == nullptr) {
      IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));
      for (const Row& row : rows) {
        if (row[label_col].is_null()) continue;
        std::vector<double> feature;
        bool skip = false;
        for (size_t c : feature_cols) {
          if (row[c].is_null()) {
            skip = true;
            break;
          }
          auto d = row[c].ToDouble();
          if (!d.ok()) return d.status();
          feature.push_back(*d);
        }
        if (skip) continue;
        features.push_back(std::move(feature));
        labels.push_back(row[label_col].ToString());
      }
    }

    GaussianNbModel model;
    {
      TraceSpan fit(ctx.trace(), "analytics.naivebayes.fit");
      fit.Attr("batch_path", in != nullptr ? "true" : "false");
      fit.Attr("rows", static_cast<uint64_t>(features.size()));
      if (in != nullptr) {
        fit.Attr("partial_merges",
                 static_cast<uint64_t>(NumChunks(features.size())));
        IDAA_ASSIGN_OR_RETURN(
            model, GaussianNbModel::FitParallel(features, labels, in->pool()));
      } else {
        IDAA_ASSIGN_OR_RETURN(model, GaussianNbModel::Fit(features, labels));
      }
    }

    // Training-set predictions; each row is independent, so the chunked
    // parallel scoring is exact (not just epsilon-equal) vs the serial loop.
    std::vector<std::string> predictions(features.size());
    {
      TraceSpan score(ctx.trace(), "analytics.naivebayes.score");
      score.Attr("batch_path", in != nullptr ? "true" : "false");
      ParallelChunks(in != nullptr ? in->pool() : nullptr, features.size(),
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t r = begin; r < end; ++r) {
                         predictions[r] = model.Predict(features[r]);
                       }
                     });
    }
    in.reset();  // release the scan pin before materializing output AOTs
    size_t correct = 0;
    for (size_t r = 0; r < features.size(); ++r) {
      if (predictions[r] == labels[r]) ++correct;
    }
    double accuracy = features.empty()
                          ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(features.size());

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      std::vector<ColumnDef> out_cols;
      for (size_t c : feature_cols) {
        ColumnDef def = in_schema.Column(c);
        def.type = DataType::kDouble;
        out_cols.push_back(def);
      }
      out_cols.push_back({"ACTUAL", DataType::kVarchar, false});
      out_cols.push_back({"PREDICTED", DataType::kVarchar, false});
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, Schema(out_cols)));
      std::vector<Row> out_rows;
      for (size_t r = 0; r < features.size(); ++r) {
        Row row;
        for (double d : features[r]) row.push_back(Value::Double(d));
        row.push_back(Value::Varchar(labels[r]));
        row.push_back(Value::Varchar(predictions[r]));
        out_rows.push_back(std::move(row));
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    ResultSet summary{Schema({{"METRIC", DataType::kVarchar, false},
                              {"VALUE", DataType::kDouble, false}})};
    summary.Append({Value::Varchar("TRAIN_ACCURACY"), Value::Double(accuracy)});
    summary.Append({Value::Varchar("ROWS"),
                    Value::Double(static_cast<double>(features.size()))});
    for (const auto& [label, prior] : model.priors()) {
      summary.Append({Value::Varchar("PRIOR_" + label), Value::Double(prior)});
    }
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeNaiveBayesOperator() {
  return std::make_unique<NaiveBayesOperator>();
}

}  // namespace idaa::analytics
