#include "analytics/naive_bayes.h"

#include <cmath>
#include <limits>

namespace idaa::analytics {

Result<GaussianNbModel> GaussianNbModel::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<std::string>& labels) {
  if (features.size() != labels.size() || features.empty()) {
    return Status::InvalidArgument("NB: empty or mismatched inputs");
  }
  const size_t dims = features[0].size();
  GaussianNbModel model;

  std::map<std::string, size_t> counts;
  for (size_t r = 0; r < features.size(); ++r) {
    ClassStats& stats = model.classes_[labels[r]];
    if (stats.mean.empty()) {
      stats.mean.assign(dims, 0.0);
      stats.variance.assign(dims, 0.0);
    }
    ++counts[labels[r]];
    for (size_t d = 0; d < dims; ++d) stats.mean[d] += features[r][d];
  }
  for (auto& [label, stats] : model.classes_) {
    double n = static_cast<double>(counts[label]);
    for (size_t d = 0; d < dims; ++d) stats.mean[d] /= n;
    stats.prior = n / static_cast<double>(features.size());
    model.priors_[label] = stats.prior;
  }
  for (size_t r = 0; r < features.size(); ++r) {
    ClassStats& stats = model.classes_[labels[r]];
    for (size_t d = 0; d < dims; ++d) {
      double diff = features[r][d] - stats.mean[d];
      stats.variance[d] += diff * diff;
    }
  }
  for (auto& [label, stats] : model.classes_) {
    double n = static_cast<double>(counts[label]);
    for (size_t d = 0; d < dims; ++d) {
      stats.variance[d] = stats.variance[d] / n + 1e-9;  // smoothed
    }
  }
  return model;
}

const std::string& GaussianNbModel::Predict(
    const std::vector<double>& features) const {
  double best_score = -std::numeric_limits<double>::max();
  const std::string* best_label = &classes_.begin()->first;
  for (const auto& [label, stats] : classes_) {
    double score = std::log(stats.prior);
    for (size_t d = 0; d < features.size(); ++d) {
      double var = stats.variance[d];
      double diff = features[d] - stats.mean[d];
      score += -0.5 * std::log(2.0 * M_PI * var) - diff * diff / (2.0 * var);
    }
    if (score > best_score) {
      best_score = score;
      best_label = &label;
    }
  }
  return *best_label;
}

namespace {

class NaiveBayesOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "NAIVEBAYES"; }
  std::string description() const override {
    return "Gaussian naive Bayes classifier";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string label_name, GetParam(params, "label"));
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> feature_cols,
                          ResolveColumns(in_schema, columns_list));
    IDAA_ASSIGN_OR_RETURN(size_t label_col, in_schema.ColumnIndex(label_name));
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));

    std::vector<std::vector<double>> features;
    std::vector<std::string> labels;
    for (const Row& row : rows) {
      if (row[label_col].is_null()) continue;
      std::vector<double> feature;
      bool skip = false;
      for (size_t c : feature_cols) {
        if (row[c].is_null()) {
          skip = true;
          break;
        }
        auto d = row[c].ToDouble();
        if (!d.ok()) return d.status();
        feature.push_back(*d);
      }
      if (skip) continue;
      features.push_back(std::move(feature));
      labels.push_back(row[label_col].ToString());
    }

    IDAA_ASSIGN_OR_RETURN(GaussianNbModel model,
                          GaussianNbModel::Fit(features, labels));

    size_t correct = 0;
    std::vector<std::string> predictions;
    predictions.reserve(features.size());
    for (size_t r = 0; r < features.size(); ++r) {
      predictions.push_back(model.Predict(features[r]));
      if (predictions.back() == labels[r]) ++correct;
    }
    double accuracy = features.empty()
                          ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(features.size());

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      std::vector<ColumnDef> out_cols;
      for (size_t c : feature_cols) {
        ColumnDef def = in_schema.Column(c);
        def.type = DataType::kDouble;
        out_cols.push_back(def);
      }
      out_cols.push_back({"ACTUAL", DataType::kVarchar, false});
      out_cols.push_back({"PREDICTED", DataType::kVarchar, false});
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, Schema(out_cols)));
      std::vector<Row> out_rows;
      for (size_t r = 0; r < features.size(); ++r) {
        Row row;
        for (double d : features[r]) row.push_back(Value::Double(d));
        row.push_back(Value::Varchar(labels[r]));
        row.push_back(Value::Varchar(predictions[r]));
        out_rows.push_back(std::move(row));
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    ResultSet summary{Schema({{"METRIC", DataType::kVarchar, false},
                              {"VALUE", DataType::kDouble, false}})};
    summary.Append({Value::Varchar("TRAIN_ACCURACY"), Value::Double(accuracy)});
    summary.Append({Value::Varchar("ROWS"),
                    Value::Double(static_cast<double>(features.size()))});
    for (const auto& [label, prior] : model.priors()) {
      summary.Append({Value::Varchar("PRIOR_" + label), Value::Double(prior)});
    }
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeNaiveBayesOperator() {
  return std::make_unique<NaiveBayesOperator>();
}

}  // namespace idaa::analytics
