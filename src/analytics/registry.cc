#include "analytics/registry.h"

#include "analytics/apriori.h"
#include "analytics/data_prep.h"
#include "analytics/decision_tree.h"
#include "analytics/kmeans.h"
#include "analytics/linear_regression.h"
#include "analytics/naive_bayes.h"
#include "common/string_util.h"

namespace idaa::analytics {

Status OperatorRegistry::Register(std::unique_ptr<AnalyticsOperator> op) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = ToUpper(op->name());
  if (operators_.count(name)) {
    return Status::AlreadyExists("operator already registered: " + name);
  }
  operators_[name] = std::move(op);
  return Status::OK();
}

Result<AnalyticsOperator*> OperatorRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = operators_.find(ToUpper(name));
  if (it == operators_.end()) {
    return Status::NotFound("analytics operator not found: " + name);
  }
  return it->second.get();
}

bool OperatorRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return operators_.count(ToUpper(name)) > 0;
}

std::vector<std::string> OperatorRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(operators_.size());
  for (const auto& [name, op] : operators_) names.push_back(name);
  return names;
}

std::unique_ptr<OperatorRegistry> MakeBuiltinRegistry() {
  auto registry = std::make_unique<OperatorRegistry>();
  (void)registry->Register(MakeNormalizeOperator());
  (void)registry->Register(MakeDiscretizeOperator());
  (void)registry->Register(MakeImputeOperator());
  (void)registry->Register(MakeOneHotOperator());
  (void)registry->Register(MakeSampleOperator());
  (void)registry->Register(MakeSummarizeOperator());
  (void)registry->Register(MakeKMeansOperator());
  (void)registry->Register(MakeLinearRegressionOperator());
  (void)registry->Register(MakeNaiveBayesOperator());
  (void)registry->Register(MakeDecisionTreeOperator());
  (void)registry->Register(MakeAprioriOperator());
  return registry;
}

}  // namespace idaa::analytics
