#include "analytics/batch_input.h"

#include <algorithm>

#include "analytics/operator.h"

namespace idaa::analytics {

namespace {

/// Numeric view of a raw column element, matching Value::ToDouble for the
/// int-backed types (INTEGER/DATE/TIMESTAMP/BOOLEAN as int64).
inline double RawNumeric(const accel::Column& col, size_t i) {
  return col.type() == DataType::kDouble
             ? col.RawDouble(i)
             : static_cast<double>(col.RawInt(i));
}

}  // namespace

AnalyticsInput::AnalyticsInput(const accel::ColumnTable* table,
                               const TransactionManager* tm, TxnId reader,
                               Csn snapshot, ThreadPool* pool)
    : table_(table), tm_(tm), reader_(reader), snapshot_(snapshot),
      pool_(pool), pin_(table->PinForScan()),
      morsels_(table->PlanMorsels(table->options().morsel_size)) {
  // Analytics inputs carry no predicate; the empty conjunction compiles on
  // every slice, making every input batchable in practice.
  per_slice_.reserve(table_->num_slices());
  for (size_t s = 0; s < table_->num_slices(); ++s) {
    auto compiled = table_->CompilePredicateForSlice(s, {});
    if (!compiled.has_value()) {
      batchable_ = false;
      return;
    }
    per_slice_.push_back(std::move(*compiled));
  }
}

accel::BatchScanStats AnalyticsInput::Scan(const BatchFn& fn, TraceContext tc,
                                           const std::string& stage) const {
  TraceSpan span(tc, stage);
  const size_t num_workers =
      std::max<size_t>(1, std::min(pool_ != nullptr ? pool_->num_threads() : 1,
                                   std::max<size_t>(morsels_.size(), 1)));
  struct Worker {
    TransactionManager::VisibilityChecker visibility;
    std::vector<uint32_t> sel;
    accel::BatchScanStats stats;
  };
  std::vector<Worker> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(Worker{
        TransactionManager::VisibilityChecker(tm_, reader_, snapshot_),
        {},
        {}});
  }

  static const std::vector<accel::ColumnRange> kNoRanges;
  auto run = [&](size_t w, size_t mi) {
    Worker& wk = workers[w];
    const accel::Morsel& m = morsels_[mi];
    const accel::BatchScanStats before = wk.stats;
    TraceSpan morsel_span(span.context(), stage + ".morsel");
    table_->ScanMorsel(m, kNoRanges, &per_slice_[m.slice], wk.visibility,
                       &wk.sel, &wk.stats,
                       [&](const accel::ColumnBatch& batch) {
                         fn(w, mi, batch);
                       });
    morsel_span.Attr("slice", static_cast<uint64_t>(m.slice));
    morsel_span.Attr("rows_scanned", static_cast<uint64_t>(
                                         wk.stats.rows_scanned -
                                         before.rows_scanned));
  };
  if (pool_ != nullptr && morsels_.size() > 1) {
    pool_->ParallelForDynamic(morsels_.size(), num_workers, run);
  } else {
    for (size_t mi = 0; mi < morsels_.size(); ++mi) run(0, mi);
  }

  accel::BatchScanStats total;
  for (const Worker& wk : workers) total.Merge(wk.stats);
  span.Attr("batch_path", "true");
  span.Attr("morsels", static_cast<uint64_t>(total.morsels));
  span.Attr("rows_selected", static_cast<uint64_t>(total.rows_selected));
  span.Attr("partial_merges", static_cast<uint64_t>(morsels_.size()));
  return total;
}

std::vector<Row> AnalyticsInput::GatherRows(TraceContext tc) const {
  const size_t width = schema().NumColumns();
  std::vector<std::vector<Row>> morsel_rows(morsels_.size());
  accel::BatchScanStats total = Scan(
      [&](size_t, size_t mi, const accel::ColumnBatch& batch) {
        std::vector<Row>& rows = morsel_rows[mi];
        rows.reserve(batch.sel_count);
        for (size_t k = 0; k < batch.sel_count; ++k) {
          const size_t i = batch.AbsoluteRow(k);
          Row row(width);
          for (size_t c = 0; c < width; ++c) {
            row[c] = (*batch.columns)[c]->Get(i);
          }
          rows.push_back(std::move(row));
        }
      },
      tc, "analytics.gather");

  std::vector<Row> out;
  out.reserve(total.rows_selected);
  for (std::vector<Row>& rows : morsel_rows) {
    for (Row& row : rows) out.push_back(std::move(row));
  }
  return out;
}

Result<accel::ColumnarRows> AnalyticsInput::GatherColumnar(
    TraceContext tc) const {
  const Schema& s = schema();
  const size_t width = s.NumColumns();
  for (size_t c = 0; c < width; ++c) {
    DataType t = s.Column(c).type;
    if (t != DataType::kDouble && t != DataType::kInteger &&
        t != DataType::kVarchar) {
      return Status::NotSupported("column " + s.Column(c).name +
                                  " has no columnar gather representation");
    }
  }

  std::vector<accel::ColumnarRows> partials(morsels_.size());
  Scan(
      [&](size_t, size_t mi, const accel::ColumnBatch& batch) {
        accel::ColumnarRows& part = partials[mi];
        if (part.columns.empty()) part.columns.resize(width);
        part.num_rows += batch.sel_count;
        for (size_t c = 0; c < width; ++c) {
          const accel::Column& col = *(*batch.columns)[c];
          accel::ColumnarRows::Col& dst = part.columns[c];
          for (size_t k = 0; k < batch.sel_count; ++k) {
            const size_t i = batch.AbsoluteRow(k);
            const bool is_null = col.IsNull(i);
            dst.nulls.push_back(is_null ? 1 : 0);
            switch (col.type()) {
              case DataType::kDouble:
                dst.doubles.push_back(is_null ? 0.0 : col.RawDouble(i));
                break;
              case DataType::kInteger:
                dst.ints.push_back(is_null ? 0 : col.RawInt(i));
                break;
              default:
                dst.strings.push_back(is_null ? std::string()
                                              : col.DictEntry(col.RawCode(i)));
            }
          }
        }
      },
      tc, "analytics.gather");

  accel::ColumnarRows out;
  out.columns.resize(width);
  size_t total = 0;
  for (const accel::ColumnarRows& part : partials) total += part.num_rows;
  out.num_rows = total;
  for (size_t c = 0; c < width; ++c) {
    accel::ColumnarRows::Col& dst = out.columns[c];
    dst.nulls.reserve(total);
    switch (s.Column(c).type) {
      case DataType::kDouble:
        dst.doubles.reserve(total);
        break;
      case DataType::kInteger:
        dst.ints.reserve(total);
        break;
      default:
        dst.strings.reserve(total);
    }
  }
  for (accel::ColumnarRows& part : partials) {
    if (part.columns.empty()) continue;
    for (size_t c = 0; c < width; ++c) {
      accel::ColumnarRows::Col& src = part.columns[c];
      accel::ColumnarRows::Col& dst = out.columns[c];
      dst.nulls.insert(dst.nulls.end(), src.nulls.begin(), src.nulls.end());
      dst.doubles.insert(dst.doubles.end(), src.doubles.begin(),
                         src.doubles.end());
      dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
      dst.strings.insert(dst.strings.end(),
                         std::make_move_iterator(src.strings.begin()),
                         std::make_move_iterator(src.strings.end()));
    }
  }
  return out;
}

Result<std::vector<std::vector<double>>> AnalyticsInput::ExtractFeatures(
    const std::vector<size_t>& columns, TraceContext tc, size_t* total_rows,
    size_t* skipped_rows) const {
  for (size_t c : columns) {
    if (schema().Column(c).type == DataType::kVarchar) {
      return Status::InvalidArgument("column " + schema().Column(c).name +
                                     " is not numeric");
    }
  }
  struct Partial {
    std::vector<std::vector<double>> features;
    size_t rows = 0;
  };
  std::vector<Partial> partials(morsels_.size());
  Scan(
      [&](size_t, size_t mi, const accel::ColumnBatch& batch) {
        Partial& part = partials[mi];
        part.features.reserve(batch.sel_count);
        for (size_t k = 0; k < batch.sel_count; ++k) {
          const size_t i = batch.AbsoluteRow(k);
          ++part.rows;
          std::vector<double> feature;
          feature.reserve(columns.size());
          bool skip = false;
          for (size_t c : columns) {
            const accel::Column& col = *(*batch.columns)[c];
            if (col.IsNull(i)) {
              skip = true;
              break;
            }
            feature.push_back(RawNumeric(col, i));
          }
          if (!skip) part.features.push_back(std::move(feature));
        }
      },
      tc, "analytics.extract");

  std::vector<std::vector<double>> features;
  size_t total = 0;
  for (Partial& part : partials) total += part.rows;
  features.reserve(total);
  for (Partial& part : partials) {
    for (auto& f : part.features) features.push_back(std::move(f));
  }
  if (total_rows != nullptr) *total_rows = total;
  if (skipped_rows != nullptr) *skipped_rows = total - features.size();
  return features;
}

Result<AnalyticsInput::LabeledFeatures>
AnalyticsInput::ExtractLabeledFeatures(const std::vector<size_t>& feature_cols,
                                       size_t label_col,
                                       TraceContext tc) const {
  for (size_t c : feature_cols) {
    if (schema().Column(c).type == DataType::kVarchar) {
      return Status::InvalidArgument("column " + schema().Column(c).name +
                                     " is not numeric");
    }
  }
  struct Partial {
    std::vector<std::vector<double>> features;
    std::vector<std::string> labels;
    size_t rows = 0;
  };
  std::vector<Partial> partials(morsels_.size());
  Scan(
      [&](size_t, size_t mi, const accel::ColumnBatch& batch) {
        Partial& part = partials[mi];
        const accel::Column& label = *(*batch.columns)[label_col];
        for (size_t k = 0; k < batch.sel_count; ++k) {
          const size_t i = batch.AbsoluteRow(k);
          ++part.rows;
          if (label.IsNull(i)) continue;
          std::vector<double> feature;
          feature.reserve(feature_cols.size());
          bool skip = false;
          for (size_t c : feature_cols) {
            const accel::Column& col = *(*batch.columns)[c];
            if (col.IsNull(i)) {
              skip = true;
              break;
            }
            feature.push_back(RawNumeric(col, i));
          }
          if (skip) continue;
          part.features.push_back(std::move(feature));
          part.labels.push_back(label.Get(i).ToString());
        }
      },
      tc, "analytics.extract");

  LabeledFeatures out;
  for (Partial& part : partials) out.total_rows += part.rows;
  out.features.reserve(out.total_rows);
  out.labels.reserve(out.total_rows);
  for (Partial& part : partials) {
    for (auto& f : part.features) out.features.push_back(std::move(f));
    for (auto& l : part.labels) out.labels.push_back(std::move(l));
  }
  out.skipped_rows = out.total_rows - out.features.size();
  return out;
}

// ---- AnalyticsContext glue (lives here so operator.cc stays free of the
// batch machinery) ----------------------------------------------------------

Result<std::unique_ptr<AnalyticsInput>> AnalyticsContext::OpenInput(
    const std::string& name) {
  IDAA_ASSIGN_OR_RETURN(const TableInfo* info, catalog_->GetTable(name));
  if (info->kind == TableKind::kDb2Only) {
    return Status::InvalidArgument(
        "table " + info->name +
        " is not on the accelerator; add it with ACCEL_ADD_TABLES first");
  }
  IDAA_ASSIGN_OR_RETURN(const accel::ColumnTable* table,
                        static_cast<const accel::Accelerator*>(accelerator_)
                            ->GetTable(info->name));
  auto input = std::make_unique<AnalyticsInput>(
      table, tm_, txn_->id(), txn_->snapshot_csn(),
      accelerator_->thread_pool());
  if (!input->batchable()) {
    return Status::NotSupported("input " + info->name +
                                " is not batch-scannable");
  }
  return input;
}

}  // namespace idaa::analytics
