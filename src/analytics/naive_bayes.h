// NAIVEBAYES: Gaussian naive Bayes classification (numeric features,
// VARCHAR label). Params: input, label, columns, output (optional
// predictions AOT). Summary: training accuracy + per-class priors.

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "analytics/operator.h"

namespace idaa::analytics {

std::unique_ptr<AnalyticsOperator> MakeNaiveBayesOperator();

/// Trained Gaussian NB model, usable directly from C++.
class GaussianNbModel {
 public:
  /// Fit from feature rows and string labels.
  static Result<GaussianNbModel> Fit(
      const std::vector<std::vector<double>>& features,
      const std::vector<std::string>& labels);

  /// Morsel-parallel fit: per-chunk class histograms (count / mean-sum /
  /// variance-sum) merged in ascending chunk order — bit-identical for any
  /// thread count, epsilon-close to the serial Fit.
  static Result<GaussianNbModel> FitParallel(
      const std::vector<std::vector<double>>& features,
      const std::vector<std::string>& labels, ThreadPool* pool);

  /// Most probable class for one feature vector.
  const std::string& Predict(const std::vector<double>& features) const;

  const std::map<std::string, double>& priors() const { return priors_; }

 private:
  struct ClassStats {
    double prior = 0;
    std::vector<double> mean;
    std::vector<double> variance;
  };
  std::map<std::string, ClassStats> classes_;
  std::map<std::string, double> priors_;
};

}  // namespace idaa::analytics
