#include "analytics/decision_tree.h"

#include <algorithm>
#include <map>

#include "analytics/batch_input.h"
#include "analytics/parallel.h"

namespace idaa::analytics {

namespace {

/// Gini impurity of a label multiset.
double Gini(const std::map<std::string, size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const auto& [label, count] : counts) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

std::string MajorityLabel(const std::vector<std::string>& labels,
                          const std::vector<size_t>& indices) {
  std::map<std::string, size_t> counts;
  for (size_t i : indices) ++counts[labels[i]];
  std::string best;
  size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = label;
    }
  }
  return best;
}

}  // namespace

int DecisionTreeModel::Build(const std::vector<std::vector<double>>& features,
                             const std::vector<std::string>& labels,
                             const std::vector<size_t>& indices, size_t depth,
                             size_t max_depth, size_t min_samples) {
  Node node;
  node.depth = depth;
  node.label = MajorityLabel(labels, indices);

  // Stop conditions.
  std::map<std::string, size_t> counts;
  for (size_t i : indices) ++counts[labels[i]];
  bool pure = counts.size() <= 1;
  if (pure || depth >= max_depth || indices.size() < min_samples) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  // Best split: exhaustive over features, thresholds at midpoints of sorted
  // unique values. Each feature's search is independent, so with a pool the
  // features are scanned in parallel; the ascending-feature reduction below
  // keeps the serial loop's first-best tie-breaking, so the chosen split is
  // exactly the serial one regardless of thread count.
  double parent_gini = Gini(counts, indices.size());
  double best_gain = 1e-9;
  size_t best_feature = 0;
  double best_threshold = 0;
  const size_t dims = features[indices[0]].size();

  struct FeatureBest {
    double gain = 1e-9;
    double threshold = 0;
  };
  std::vector<FeatureBest> feature_best(dims);
  auto search_feature = [&](size_t f) {
    FeatureBest& fb = feature_best[f];
    std::vector<double> values;
    values.reserve(indices.size());
    for (size_t i : indices) values.push_back(features[i][f]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (size_t v = 0; v + 1 < values.size(); ++v) {
      double threshold = (values[v] + values[v + 1]) / 2.0;
      std::map<std::string, size_t> left_counts, right_counts;
      size_t nl = 0, nr = 0;
      for (size_t i : indices) {
        if (features[i][f] <= threshold) {
          ++left_counts[labels[i]];
          ++nl;
        } else {
          ++right_counts[labels[i]];
          ++nr;
        }
      }
      if (nl == 0 || nr == 0) continue;
      double weighted =
          (static_cast<double>(nl) * Gini(left_counts, nl) +
           static_cast<double>(nr) * Gini(right_counts, nr)) /
          static_cast<double>(indices.size());
      double gain = parent_gini - weighted;
      if (gain > fb.gain) {
        fb.gain = gain;
        fb.threshold = threshold;
      }
    }
  };
  if (pool_ != nullptr && dims > 1 && indices.size() >= 256) {
    pool_->ParallelForDynamic(dims, std::min(pool_->num_threads(), dims),
                              [&](size_t, size_t f) { search_feature(f); });
  } else {
    for (size_t f = 0; f < dims; ++f) search_feature(f);
  }
  for (size_t f = 0; f < dims; ++f) {
    if (feature_best[f].gain > best_gain) {
      best_gain = feature_best[f].gain;
      best_feature = f;
      best_threshold = feature_best[f].threshold;
    }
  }

  if (best_gain <= 1e-9) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    if (features[i][best_feature] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }

  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  // Reserve this node's slot before recursing (children indexes follow).
  nodes_.push_back(node);
  int my_index = static_cast<int>(nodes_.size() - 1);
  int left = Build(features, labels, left_idx, depth + 1, max_depth,
                   min_samples);
  int right = Build(features, labels, right_idx, depth + 1, max_depth,
                    min_samples);
  nodes_[my_index].left = left;
  nodes_[my_index].right = right;
  return my_index;
}

Result<DecisionTreeModel> DecisionTreeModel::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<std::string>& labels, size_t max_depth,
    size_t min_samples, ThreadPool* pool) {
  if (features.size() != labels.size() || features.empty()) {
    return Status::InvalidArgument("tree: empty or mismatched inputs");
  }
  DecisionTreeModel model;
  model.pool_ = pool;
  std::vector<size_t> indices(features.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  model.Build(features, labels, indices, 0, max_depth, min_samples);
  model.pool_ = nullptr;
  return model;
}

const std::string& DecisionTreeModel::Predict(
    const std::vector<double>& features) const {
  // Root is node 0 (Build pushes the root first).
  size_t node = 0;
  while (!nodes_[node].is_leaf) {
    node = features[nodes_[node].feature] <= nodes_[node].threshold
               ? static_cast<size_t>(nodes_[node].left)
               : static_cast<size_t>(nodes_[node].right);
  }
  return nodes_[node].label;
}

size_t DecisionTreeModel::Depth() const {
  size_t depth = 0;
  for (const Node& node : nodes_) depth = std::max(depth, node.depth);
  return depth;
}

namespace {

class DecisionTreeOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "DECISIONTREE"; }
  std::string description() const override {
    return "CART classification tree (Gini impurity)";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string label_name, GetParam(params, "label"));
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));
    IDAA_ASSIGN_OR_RETURN(int64_t max_depth, GetIntParam(params, "max_depth", 5));
    IDAA_ASSIGN_OR_RETURN(int64_t min_samples,
                          GetIntParam(params, "min_samples", 4));

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> feature_cols,
                          ResolveColumns(in_schema, columns_list));
    IDAA_ASSIGN_OR_RETURN(size_t label_col, in_schema.ColumnIndex(label_name));

    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    std::vector<std::vector<double>> features;
    std::vector<std::string> labels;
    if (in != nullptr) {
      auto extracted =
          in->ExtractLabeledFeatures(feature_cols, label_col, ctx.trace());
      if (extracted.ok()) {
        features = std::move(extracted->features);
        labels = std::move(extracted->labels);
      } else {
        in.reset();  // non-numeric column: serial path owns the error
      }
    }
    if (in == nullptr) {
      IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));
      for (const Row& row : rows) {
        if (row[label_col].is_null()) continue;
        std::vector<double> feature;
        bool skip = false;
        for (size_t c : feature_cols) {
          if (row[c].is_null()) {
            skip = true;
            break;
          }
          auto d = row[c].ToDouble();
          if (!d.ok()) return d.status();
          feature.push_back(*d);
        }
        if (skip) continue;
        features.push_back(std::move(feature));
        labels.push_back(row[label_col].ToString());
      }
    }

    DecisionTreeModel model;
    {
      TraceSpan fit(ctx.trace(), "analytics.decisiontree.fit");
      fit.Attr("batch_path", in != nullptr ? "true" : "false");
      fit.Attr("rows", static_cast<uint64_t>(features.size()));
      IDAA_ASSIGN_OR_RETURN(
          model,
          DecisionTreeModel::Fit(features, labels,
                                 static_cast<size_t>(max_depth),
                                 static_cast<size_t>(min_samples),
                                 in != nullptr ? in->pool() : nullptr));
      fit.Attr("nodes", static_cast<uint64_t>(model.NumNodes()));
    }

    std::vector<std::string> predictions(features.size());
    {
      TraceSpan score(ctx.trace(), "analytics.decisiontree.score");
      score.Attr("batch_path", in != nullptr ? "true" : "false");
      ParallelChunks(in != nullptr ? in->pool() : nullptr, features.size(),
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t r = begin; r < end; ++r) {
                         predictions[r] = model.Predict(features[r]);
                       }
                     });
    }
    in.reset();  // release the scan pin before materializing output AOTs
    size_t correct = 0;
    for (size_t r = 0; r < features.size(); ++r) {
      if (predictions[r] == labels[r]) ++correct;
    }
    double accuracy = features.empty()
                          ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(features.size());

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      std::vector<ColumnDef> out_cols;
      for (size_t c : feature_cols) {
        ColumnDef def = in_schema.Column(c);
        def.type = DataType::kDouble;
        out_cols.push_back(def);
      }
      out_cols.push_back({"ACTUAL", DataType::kVarchar, false});
      out_cols.push_back({"PREDICTED", DataType::kVarchar, false});
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, Schema(out_cols)));
      std::vector<Row> out_rows;
      for (size_t r = 0; r < features.size(); ++r) {
        Row row;
        for (double d : features[r]) row.push_back(Value::Double(d));
        row.push_back(Value::Varchar(labels[r]));
        row.push_back(Value::Varchar(predictions[r]));
        out_rows.push_back(std::move(row));
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    ResultSet summary{Schema({{"METRIC", DataType::kVarchar, false},
                              {"VALUE", DataType::kDouble, false}})};
    summary.Append({Value::Varchar("TRAIN_ACCURACY"), Value::Double(accuracy)});
    summary.Append({Value::Varchar("NODES"),
                    Value::Double(static_cast<double>(model.NumNodes()))});
    summary.Append({Value::Varchar("DEPTH"),
                    Value::Double(static_cast<double>(model.Depth()))});
    summary.Append({Value::Varchar("ROWS"),
                    Value::Double(static_cast<double>(features.size()))});
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeDecisionTreeOperator() {
  return std::make_unique<DecisionTreeOperator>();
}

}  // namespace idaa::analytics
