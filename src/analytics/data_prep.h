// Data-preparation operators — the "multi-staged data preparation,
// transformation and evaluation tasks" of SPSS-style pipelines, executed
// in-accelerator with AOT outputs.

#pragma once

#include <memory>

#include "analytics/operator.h"

namespace idaa::analytics {

/// NORMALIZE: scale numeric columns. Params:
///   input, output, columns, method=zscore|minmax (default zscore)
std::unique_ptr<AnalyticsOperator> MakeNormalizeOperator();

/// DISCRETIZE: equal-width binning of one numeric column into an integer
/// bin id column "<col>_BIN". Params: input, output, column, bins (def 10)
std::unique_ptr<AnalyticsOperator> MakeDiscretizeOperator();

/// IMPUTE: replace NULLs with the column mean (numerics) or mode (VARCHAR).
/// Params: input, output, columns
std::unique_ptr<AnalyticsOperator> MakeImputeOperator();

/// ONEHOT: expand one categorical column into 0/1 indicator columns
/// "<col>_<value>". Params: input, output, column, max_values (def 32)
std::unique_ptr<AnalyticsOperator> MakeOneHotOperator();

/// SAMPLE: Bernoulli sample. Params: input, output, fraction (def 0.1),
/// seed (def 42)
std::unique_ptr<AnalyticsOperator> MakeSampleOperator();

/// SUMMARIZE: per-column data audit (count, nulls, distinct, min, max,
/// mean, stddev). Params: input, columns (optional, default all),
/// output (optional AOT holding the summary). The summary is also the
/// returned result set.
std::unique_ptr<AnalyticsOperator> MakeSummarizeOperator();

}  // namespace idaa::analytics
