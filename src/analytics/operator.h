// In-database analytics framework (paper §3): arbitrary analytics operators
// are deployed on the accelerator and invoked through DB2 CALL statements.
// DB2 keeps governance: the caller needs EXECUTE on the procedure and
// SELECT on the operator's input tables; everything is audited. Operators
// read accelerator-resident tables (replicas or AOTs) and materialize their
// results as new AOTs — so multi-stage mining pipelines never leave the
// accelerator.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/trace.h"
#include "txn/transaction_manager.h"

namespace idaa::analytics {

class AnalyticsInput;

/// Operator parameters, parsed from CALL arguments of the form 'key=value'.
using ParamMap = std::map<std::string, std::string>;

/// Parse CALL argument values ('key=value' strings) into a ParamMap.
Result<ParamMap> ParseParams(const std::vector<Value>& args);

/// Typed parameter accessors (kNotFound when absent and no default given).
Result<std::string> GetParam(const ParamMap& params, const std::string& key);
std::string GetParamOr(const ParamMap& params, const std::string& key,
                       const std::string& fallback);
Result<int64_t> GetIntParam(const ParamMap& params, const std::string& key,
                            int64_t fallback);
Result<double> GetDoubleParam(const ParamMap& params, const std::string& key,
                              double fallback);

/// Execution environment handed to an operator: accelerator-side reads and
/// AOT materialization, all inside the caller's DB2 transaction context.
class AnalyticsContext {
 public:
  AnalyticsContext(Catalog* catalog, accel::Accelerator* accelerator,
                   TransactionManager* tm, Transaction* txn,
                   MetricsRegistry* metrics)
      : catalog_(catalog), accelerator_(accelerator), tm_(tm), txn_(txn),
        metrics_(metrics) {}

  Catalog* catalog() { return catalog_; }
  accel::Accelerator* accelerator() { return accelerator_; }
  Transaction* txn() { return txn_; }
  MetricsRegistry* metrics() { return metrics_; }

  /// All rows of an accelerator-resident table visible to the transaction
  /// (parallel slice scan). Errors if the table is not on the accelerator.
  Result<std::vector<Row>> ReadTable(const std::string& name);

  /// Open an accelerator-resident table as a pinned, morsel-parallel batch
  /// input (see AnalyticsInput). The input holds the table's scan pin until
  /// destroyed, so GROOM cannot reclaim rows mid-model-fit; operators must
  /// release the input before recreating an AOT of the same name.
  Result<std::unique_ptr<AnalyticsInput>> OpenInput(const std::string& name);

  /// Batch-path toggle, mirroring Accelerator::SetBatchPathEnabled: when
  /// unset, the hosting accelerator's setting decides; operators fall back
  /// to the serial row path automatically when the batch path is off or an
  /// input cannot be batch-scanned.
  void SetBatchPathEnabled(bool enabled) { batch_path_override_ = enabled; }
  bool batch_path_enabled() const {
    return batch_path_override_.value_or(accelerator_->batch_path_enabled());
  }

  /// Trace context the hosting CALL threads through the operator; spans
  /// created under it appear in EXPLAIN ANALYZE with per-morsel timings.
  void set_trace(TraceContext tc) { trace_ = tc; }
  TraceContext trace() const { return trace_; }

  ThreadPool* thread_pool() { return accelerator_->thread_pool(); }

  /// Schema of a table.
  Result<Schema> TableSchema(const std::string& name) const;

  /// Create an output AOT (catalog proxy + accelerator storage). The name
  /// is recorded in created_tables() so the caller can grant privileges.
  Status CreateAot(const std::string& name, const Schema& schema);

  /// Append rows to an accelerator table under the current transaction.
  Status AppendRows(const std::string& name, const std::vector<Row>& rows);

  /// Columnar fast path for large batch-path outputs: appends staged
  /// column vectors without materializing Row/Value objects. Stored state
  /// is identical to AppendRows of the equivalent rows.
  Status AppendColumnar(const std::string& name,
                        const accel::ColumnarRows& rows);

  /// Drop-and-recreate helper for idempotent operator reruns.
  Status RecreateAot(const std::string& name, const Schema& schema);

  const std::vector<std::string>& created_tables() const {
    return created_tables_;
  }

 private:
  Catalog* catalog_;
  accel::Accelerator* accelerator_;
  TransactionManager* tm_;
  Transaction* txn_;
  MetricsRegistry* metrics_;
  std::vector<std::string> created_tables_;
  std::optional<bool> batch_path_override_;
  TraceContext trace_;
};

/// Base class of deployable analytics operators.
class AnalyticsOperator {
 public:
  virtual ~AnalyticsOperator() = default;

  /// Procedure name (without the IDAA. prefix), e.g. "KMEANS".
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Tables the operator will read for these parameters — the governance
  /// layer checks SELECT on each before Run() is allowed.
  virtual Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const = 0;

  /// Execute; returns a summary result set (model metrics etc.). Output
  /// data tables are materialized as AOTs via the context.
  virtual Result<ResultSet> Run(AnalyticsContext& ctx,
                                const ParamMap& params) = 0;
};

// -- shared helpers for the concrete operators ------------------------------

/// Resolve comma-separated column names against a schema.
Result<std::vector<size_t>> ResolveColumns(const Schema& schema,
                                           const std::string& comma_list);

/// Extract a numeric feature matrix (rows x columns) from table rows;
/// rows with NULL in any selected column are skipped (indices of kept rows
/// returned via kept, if non-null).
Result<std::vector<std::vector<double>>> ExtractFeatures(
    const std::vector<Row>& rows, const std::vector<size_t>& columns,
    std::vector<size_t>* kept = nullptr);

}  // namespace idaa::analytics
