#include "analytics/kmeans.h"

#include <cmath>
#include <limits>

#include "analytics/batch_input.h"
#include "analytics/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace idaa::analytics {

namespace {

/// Deterministic distinct-point centroid seeding shared by both kernels.
std::vector<std::vector<double>> InitCentroids(
    const std::vector<std::vector<double>>& points, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> chosen;
  while (chosen.size() < k) {
    size_t idx = rng.Index(points.size());
    bool dup = false;
    for (size_t c : chosen) dup |= (c == idx);
    if (!dup) chosen.push_back(idx);
  }
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  for (size_t c : chosen) centroids.push_back(points[c]);
  return centroids;
}

size_t NearestCentroid(const std::vector<std::vector<double>>& centroids,
                       const std::vector<double>& point) {
  double best = std::numeric_limits<double>::max();
  size_t best_c = 0;
  for (size_t c = 0; c < centroids.size(); ++c) {
    double dist = 0;
    for (size_t d = 0; d < point.size(); ++d) {
      double diff = point[d] - centroids[c][d];
      dist += diff * diff;
    }
    if (dist < best) {
      best = dist;
      best_c = c;
    }
  }
  return best_c;
}

}  // namespace

KMeansResult RunKMeans(const std::vector<std::vector<double>>& points,
                       size_t k, size_t max_iters, uint64_t seed) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  const size_t dims = points[0].size();
  k = std::min(k, points.size());

  // Initialize centroids by sampling distinct points (deterministic).
  result.centroids = InitCentroids(points, k, seed);

  result.assignments.assign(points.size(), 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t p = 0; p < points.size(); ++p) {
      size_t best_c = NearestCentroid(result.centroids, points[p]);
      if (result.assignments[p] != best_c) {
        result.assignments[p] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t p = 0; p < points.size(); ++p) {
      size_t c = result.assignments[p];
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[p][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  result.inertia = 0;
  for (size_t p = 0; p < points.size(); ++p) {
    const auto& centroid = result.centroids[result.assignments[p]];
    for (size_t d = 0; d < dims; ++d) {
      double diff = points[p][d] - centroid[d];
      result.inertia += diff * diff;
    }
  }
  return result;
}

KMeansResult RunKMeansParallel(const std::vector<std::vector<double>>& points,
                               size_t k, size_t max_iters, uint64_t seed,
                               ThreadPool* pool) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  const size_t dims = points[0].size();
  k = std::min(k, points.size());
  const size_t n = points.size();

  result.centroids = InitCentroids(points, k, seed);
  result.assignments.assign(n, 0);

  // Per-chunk partial state for one Lloyd iteration; chunks are fixed-size
  // so the ascending-chunk merge below is independent of the thread count.
  struct Partial {
    std::vector<std::vector<double>> sums;
    std::vector<size_t> counts;
    bool changed = false;
  };
  std::vector<Partial> partials(NumChunks(n));

  for (size_t iter = 0; iter < max_iters; ++iter) {
    ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
      Partial& part = partials[chunk];
      part.sums.assign(k, std::vector<double>(dims, 0.0));
      part.counts.assign(k, 0);
      part.changed = false;
      for (size_t p = begin; p < end; ++p) {
        size_t best_c = NearestCentroid(result.centroids, points[p]);
        if (result.assignments[p] != best_c) {
          result.assignments[p] = best_c;
          part.changed = true;
        }
        ++part.counts[best_c];
        for (size_t d = 0; d < dims; ++d) part.sums[best_c][d] += points[p][d];
      }
    });
    result.iterations = iter + 1;

    // Coordinator merge in ascending chunk order — deterministic.
    bool changed = false;
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (const Partial& part : partials) {
      changed |= part.changed;
      for (size_t c = 0; c < k; ++c) {
        counts[c] += part.counts[c];
        for (size_t d = 0; d < dims; ++d) sums[c][d] += part.sums[c][d];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  std::vector<double> inertia(partials.size(), 0.0);
  ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
    double acc = 0;
    for (size_t p = begin; p < end; ++p) {
      const auto& centroid = result.centroids[result.assignments[p]];
      for (size_t d = 0; d < dims; ++d) {
        double diff = points[p][d] - centroid[d];
        acc += diff * diff;
      }
    }
    inertia[chunk] = acc;
  });
  result.inertia = 0;
  for (double part : inertia) result.inertia += part;
  return result;
}

namespace {

class KMeansOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "KMEANS"; }
  std::string description() const override {
    return "Lloyd's k-means clustering; assignments materialized as an AOT";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string output, GetParam(params, "output"));
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));
    IDAA_ASSIGN_OR_RETURN(int64_t k, GetIntParam(params, "k", 3));
    IDAA_ASSIGN_OR_RETURN(int64_t max_iters,
                          GetIntParam(params, "max_iters", 25));
    IDAA_ASSIGN_OR_RETURN(int64_t seed, GetIntParam(params, "seed", 42));
    if (k < 1) return Status::InvalidArgument("k must be >= 1");

    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> columns,
                          ResolveColumns(in_schema, columns_list));

    // Batch path: pinned morsel-parallel feature extraction; the serial
    // row path remains the automatic fallback.
    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    std::vector<std::vector<double>> points;
    size_t skipped = 0;
    if (in != nullptr) {
      auto extracted =
          in->ExtractFeatures(columns, ctx.trace(), nullptr, &skipped);
      if (extracted.ok()) {
        points = std::move(*extracted);
      } else {
        in.reset();  // e.g. non-numeric column: serial path owns the error
      }
    }
    if (in == nullptr) {
      IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));
      std::vector<size_t> kept;
      IDAA_ASSIGN_OR_RETURN(points, ExtractFeatures(rows, columns, &kept));
      skipped = rows.size() - kept.size();
    }

    KMeansResult km;
    {
      TraceSpan fit(ctx.trace(), "analytics.kmeans.fit");
      km = in != nullptr
               ? RunKMeansParallel(points, static_cast<size_t>(k),
                                   static_cast<size_t>(max_iters),
                                   static_cast<uint64_t>(seed), in->pool())
               : RunKMeans(points, static_cast<size_t>(k),
                           static_cast<size_t>(max_iters),
                           static_cast<uint64_t>(seed));
      fit.Attr("batch_path", in != nullptr ? "true" : "false");
      fit.Attr("rows", static_cast<uint64_t>(points.size()));
      fit.Attr("iterations", static_cast<uint64_t>(km.iterations));
      if (in != nullptr) {
        fit.Attr("partial_merges",
                 static_cast<uint64_t>(NumChunks(points.size())));
      }
    }
    const bool batch_used = in != nullptr;
    in.reset();  // release the scan pin before materializing output AOTs

    // Assignments AOT: features + CLUSTER.
    std::vector<ColumnDef> out_cols;
    for (size_t c : columns) {
      ColumnDef def = in_schema.Column(c);
      def.type = DataType::kDouble;
      out_cols.push_back(def);
    }
    out_cols.push_back({"CLUSTER", DataType::kInteger, false});
    Schema out_schema(std::move(out_cols));
    IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
    if (batch_used) {
      // Stage the output column-major and append without Row/Value boxing
      // — the write of an 80k-row assignments AOT otherwise dominates the
      // whole CALL. Stored state is identical to the serial path's rows.
      accel::ColumnarRows out;
      out.num_rows = points.size();
      out.columns.resize(columns.size() + 1);
      for (size_t j = 0; j < columns.size(); ++j) {
        std::vector<double>& dst = out.columns[j].doubles;
        dst.resize(points.size());
        for (size_t p = 0; p < points.size(); ++p) dst[p] = points[p][j];
      }
      std::vector<int64_t>& clus = out.columns[columns.size()].ints;
      clus.resize(points.size());
      for (size_t p = 0; p < points.size(); ++p) {
        clus[p] = static_cast<int64_t>(km.assignments[p]);
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendColumnar(output, out));
    } else {
      std::vector<Row> out_rows;
      out_rows.reserve(points.size());
      for (size_t p = 0; p < points.size(); ++p) {
        Row row;
        for (double d : points[p]) row.push_back(Value::Double(d));
        row.push_back(Value::Integer(static_cast<int64_t>(km.assignments[p])));
        out_rows.push_back(std::move(row));
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }

    // Optional centroids AOT.
    std::string centroids_output = GetParamOr(params, "centroids_output", "");
    if (!centroids_output.empty()) {
      std::vector<ColumnDef> cen_cols = {{"CLUSTER", DataType::kInteger, false}};
      for (size_t c : columns) {
        ColumnDef def = in_schema.Column(c);
        def.type = DataType::kDouble;
        cen_cols.push_back(def);
      }
      Schema cen_schema(std::move(cen_cols));
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(centroids_output, cen_schema));
      std::vector<Row> cen_rows;
      for (size_t c = 0; c < km.centroids.size(); ++c) {
        Row row = {Value::Integer(static_cast<int64_t>(c))};
        for (double d : km.centroids[c]) row.push_back(Value::Double(d));
        cen_rows.push_back(std::move(row));
      }
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(centroids_output, cen_rows));
    }

    ResultSet summary{Schema({{"K", DataType::kInteger, false},
                              {"ITERATIONS", DataType::kInteger, false},
                              {"INERTIA", DataType::kDouble, false},
                              {"ROWS", DataType::kInteger, false},
                              {"SKIPPED_NULL_ROWS", DataType::kInteger, false}})};
    summary.Append({Value::Integer(static_cast<int64_t>(km.centroids.size())),
                    Value::Integer(static_cast<int64_t>(km.iterations)),
                    Value::Double(km.inertia),
                    Value::Integer(static_cast<int64_t>(points.size())),
                    Value::Integer(static_cast<int64_t>(skipped))});
    return summary;
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeKMeansOperator() {
  return std::make_unique<KMeansOperator>();
}

}  // namespace idaa::analytics
