// LINREG: ordinary least squares via normal equations.
// Params: input, target, columns (features), output (optional predictions
// AOT: features + ACTUAL + PREDICTED + RESIDUAL).
// Summary: one row per coefficient (INTERCEPT first) plus R2/RMSE rows.

#pragma once

#include <memory>
#include <vector>

#include "analytics/operator.h"

namespace idaa::analytics {

std::unique_ptr<AnalyticsOperator> MakeLinearRegressionOperator();

/// Solve OLS: y ~ X (an intercept column is added internally).
/// Returns coefficients [intercept, b1..bn]; fails on singular systems.
struct OlsResult {
  std::vector<double> coefficients;
  double r2 = 0.0;
  double rmse = 0.0;
};
Result<OlsResult> SolveOls(const std::vector<std::vector<double>>& features,
                           const std::vector<double>& target);

/// Morsel-parallel OLS: X'X / X'y / sum-of-squares accumulators are built
/// per fixed-size chunk on `pool` and merged in ascending chunk order, so
/// the solution is bit-identical for any thread count and epsilon-close to
/// the serial SolveOls row-order accumulation.
Result<OlsResult> SolveOlsParallel(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& target, ThreadPool* pool);

}  // namespace idaa::analytics
