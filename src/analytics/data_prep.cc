#include "analytics/data_prep.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"

namespace idaa::analytics {

namespace {

/// Common scaffolding: read input, validate output name, hand rows to a
/// transform, write the produced rows into a fresh output AOT.
class TableToTableOperator : public AnalyticsOperator {
 public:
  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string output, GetParam(params, "output"));
    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));

    Schema out_schema;
    std::vector<Row> out_rows;
    IDAA_ASSIGN_OR_RETURN(
        ResultSet summary,
        Transform(ctx, params, in_schema, rows, &out_schema, &out_rows));

    IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
    IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    return summary;
  }

 protected:
  /// Produce output schema + rows and a summary result set.
  virtual Result<ResultSet> Transform(AnalyticsContext& ctx,
                                      const ParamMap& params,
                                      const Schema& in_schema,
                                      const std::vector<Row>& rows,
                                      Schema* out_schema,
                                      std::vector<Row>* out_rows) = 0;

  static ResultSet SummaryRow(std::vector<std::string> names,
                              std::vector<Value> values) {
    std::vector<ColumnDef> cols;
    for (size_t i = 0; i < names.size(); ++i) {
      DataType type = DataType::kVarchar;
      if (values[i].is_integer()) type = DataType::kInteger;
      if (values[i].is_double()) type = DataType::kDouble;
      cols.push_back({names[i], type, true});
    }
    ResultSet out{Schema(std::move(cols))};
    out.Append(std::move(values));
    return out;
  }
};

// ---------------------------------------------------------------------------

class NormalizeOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "NORMALIZE"; }
  std::string description() const override {
    return "z-score or min-max scaling of numeric columns";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, Schema* out_schema,
                              std::vector<Row>* out_rows) override {
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> columns,
                          ResolveColumns(in_schema, columns_list));
    std::string method = ToLower(GetParamOr(params, "method", "zscore"));
    if (method != "zscore" && method != "minmax") {
      return Status::InvalidArgument("unknown normalization method: " + method);
    }

    // Column statistics.
    struct Stats {
      double sum = 0, sum_sq = 0, min = 0, max = 0;
      size_t n = 0;
    };
    std::map<size_t, Stats> stats;
    for (size_t c : columns) stats[c] = Stats{};
    for (const Row& row : rows) {
      for (size_t c : columns) {
        if (row[c].is_null()) continue;
        IDAA_ASSIGN_OR_RETURN(double d, row[c].ToDouble());
        Stats& s = stats[c];
        if (s.n == 0) {
          s.min = d;
          s.max = d;
        }
        s.min = std::min(s.min, d);
        s.max = std::max(s.max, d);
        s.sum += d;
        s.sum_sq += d * d;
        ++s.n;
      }
    }

    // Output schema: normalized columns become DOUBLE, everything else kept.
    std::vector<ColumnDef> out_cols = in_schema.columns();
    for (size_t c : columns) {
      if (!IsNumeric(out_cols[c].type)) {
        return Status::InvalidArgument("column " + out_cols[c].name +
                                       " is not numeric");
      }
      out_cols[c].type = DataType::kDouble;
    }
    *out_schema = Schema(std::move(out_cols));

    out_rows->reserve(rows.size());
    for (const Row& row : rows) {
      Row out = row;
      for (size_t c : columns) {
        if (out[c].is_null()) continue;
        IDAA_ASSIGN_OR_RETURN(double d, out[c].ToDouble());
        const Stats& s = stats[c];
        double scaled = 0.0;
        if (method == "zscore") {
          double mean = s.n ? s.sum / s.n : 0.0;
          double var = s.n ? s.sum_sq / s.n - mean * mean : 0.0;
          double sd = var > 0 ? std::sqrt(var) : 1.0;
          scaled = (d - mean) / sd;
        } else {
          double span = s.max - s.min;
          scaled = span > 0 ? (d - s.min) / span : 0.0;
        }
        out[c] = Value::Double(scaled);
      }
      out_rows->push_back(std::move(out));
    }
    return SummaryRow({"ROWS", "COLUMNS", "METHOD"},
                      {Value::Integer(static_cast<int64_t>(out_rows->size())),
                       Value::Integer(static_cast<int64_t>(columns.size())),
                       Value::Varchar(method)});
  }
};

// ---------------------------------------------------------------------------

class DiscretizeOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "DISCRETIZE"; }
  std::string description() const override {
    return "equal-width binning of a numeric column";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, Schema* out_schema,
                              std::vector<Row>* out_rows) override {
    IDAA_ASSIGN_OR_RETURN(std::string column, GetParam(params, "column"));
    IDAA_ASSIGN_OR_RETURN(size_t col, in_schema.ColumnIndex(column));
    IDAA_ASSIGN_OR_RETURN(int64_t bins, GetIntParam(params, "bins", 10));
    if (bins < 1) return Status::InvalidArgument("bins must be >= 1");

    double lo = 0, hi = 0;
    bool first = true;
    for (const Row& row : rows) {
      if (row[col].is_null()) continue;
      IDAA_ASSIGN_OR_RETURN(double d, row[col].ToDouble());
      if (first) {
        lo = hi = d;
        first = false;
      }
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    double width = (hi - lo) / static_cast<double>(bins);
    if (width <= 0) width = 1.0;

    std::vector<ColumnDef> out_cols = in_schema.columns();
    out_cols.push_back(
        {Catalog::NormalizeName(column) + "_BIN", DataType::kInteger, true});
    *out_schema = Schema(std::move(out_cols));

    out_rows->reserve(rows.size());
    for (const Row& row : rows) {
      Row out = row;
      if (row[col].is_null()) {
        out.push_back(Value::Null());
      } else {
        IDAA_ASSIGN_OR_RETURN(double d, row[col].ToDouble());
        int64_t bin = static_cast<int64_t>((d - lo) / width);
        bin = std::clamp<int64_t>(bin, 0, bins - 1);
        out.push_back(Value::Integer(bin));
      }
      out_rows->push_back(std::move(out));
    }
    return SummaryRow(
        {"ROWS", "BINS", "LOW", "HIGH"},
        {Value::Integer(static_cast<int64_t>(out_rows->size())),
         Value::Integer(bins), Value::Double(lo), Value::Double(hi)});
  }
};

// ---------------------------------------------------------------------------

class ImputeOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "IMPUTE"; }
  std::string description() const override {
    return "replace NULLs with column mean (numeric) or mode (varchar)";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, Schema* out_schema,
                              std::vector<Row>* out_rows) override {
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> columns,
                          ResolveColumns(in_schema, columns_list));

    std::map<size_t, Value> replacement;
    for (size_t c : columns) {
      const ColumnDef& def = in_schema.Column(c);
      if (def.type == DataType::kVarchar) {
        std::map<std::string, size_t> counts;
        for (const Row& row : rows) {
          if (!row[c].is_null()) ++counts[row[c].AsVarchar()];
        }
        std::string mode;
        size_t best = 0;
        for (const auto& [value, count] : counts) {
          if (count > best) {
            best = count;
            mode = value;
          }
        }
        replacement[c] = Value::Varchar(mode);
      } else {
        double sum = 0;
        size_t n = 0;
        for (const Row& row : rows) {
          if (row[c].is_null()) continue;
          IDAA_ASSIGN_OR_RETURN(double d, row[c].ToDouble());
          sum += d;
          ++n;
        }
        double mean = n ? sum / n : 0.0;
        Value v = Value::Double(mean);
        if (def.type != DataType::kDouble) {
          IDAA_ASSIGN_OR_RETURN(v, v.CastTo(def.type));
        }
        replacement[c] = v;
      }
    }

    *out_schema = in_schema;
    size_t imputed = 0;
    out_rows->reserve(rows.size());
    for (const Row& row : rows) {
      Row out = row;
      for (size_t c : columns) {
        if (out[c].is_null()) {
          out[c] = replacement[c];
          ++imputed;
        }
      }
      out_rows->push_back(std::move(out));
    }
    return SummaryRow({"ROWS", "IMPUTED_VALUES"},
                      {Value::Integer(static_cast<int64_t>(out_rows->size())),
                       Value::Integer(static_cast<int64_t>(imputed))});
  }
};

// ---------------------------------------------------------------------------

class OneHotOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "ONEHOT"; }
  std::string description() const override {
    return "expand a categorical column into 0/1 indicator columns";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, Schema* out_schema,
                              std::vector<Row>* out_rows) override {
    IDAA_ASSIGN_OR_RETURN(std::string column, GetParam(params, "column"));
    IDAA_ASSIGN_OR_RETURN(size_t col, in_schema.ColumnIndex(column));
    IDAA_ASSIGN_OR_RETURN(int64_t max_values,
                          GetIntParam(params, "max_values", 32));

    std::map<std::string, size_t> categories;  // value -> indicator index
    for (const Row& row : rows) {
      if (row[col].is_null()) continue;
      std::string key = row[col].ToString();
      if (!categories.count(key)) {
        if (static_cast<int64_t>(categories.size()) >= max_values) {
          return Status::InvalidArgument(
              "column has more than max_values distinct values");
        }
        categories.emplace(key, categories.size());
      }
    }

    std::vector<ColumnDef> out_cols = in_schema.columns();
    std::vector<std::string> ordered(categories.size());
    for (const auto& [value, idx] : categories) ordered[idx] = value;
    for (const std::string& value : ordered) {
      std::string safe;
      for (char ch : value) {
        safe += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
      }
      out_cols.push_back({Catalog::NormalizeName(column) + "_" + ToUpper(safe),
                          DataType::kInteger, true});
    }
    *out_schema = Schema(std::move(out_cols));

    out_rows->reserve(rows.size());
    for (const Row& row : rows) {
      Row out = row;
      std::string key = row[col].is_null() ? "" : row[col].ToString();
      for (const std::string& value : ordered) {
        out.push_back(Value::Integer(!row[col].is_null() && key == value));
      }
      out_rows->push_back(std::move(out));
    }
    return SummaryRow({"ROWS", "CATEGORIES"},
                      {Value::Integer(static_cast<int64_t>(out_rows->size())),
                       Value::Integer(static_cast<int64_t>(ordered.size()))});
  }
};

// ---------------------------------------------------------------------------

class SampleOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "SAMPLE"; }
  std::string description() const override {
    return "Bernoulli row sampling";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, Schema* out_schema,
                              std::vector<Row>* out_rows) override {
    IDAA_ASSIGN_OR_RETURN(double fraction,
                          GetDoubleParam(params, "fraction", 0.1));
    IDAA_ASSIGN_OR_RETURN(int64_t seed, GetIntParam(params, "seed", 42));
    if (fraction < 0.0 || fraction > 1.0) {
      return Status::InvalidArgument("fraction must be in [0,1]");
    }
    *out_schema = in_schema;
    Rng rng(static_cast<uint64_t>(seed));
    for (const Row& row : rows) {
      if (rng.Bernoulli(fraction)) out_rows->push_back(row);
    }
    return SummaryRow({"INPUT_ROWS", "SAMPLED_ROWS"},
                      {Value::Integer(static_cast<int64_t>(rows.size())),
                       Value::Integer(static_cast<int64_t>(out_rows->size()))});
  }
};

// ---------------------------------------------------------------------------

class SummarizeOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "SUMMARIZE"; }
  std::string description() const override {
    return "per-column data audit: count, nulls, distinct, min/max, "
           "mean/stddev";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    std::vector<size_t> columns;
    std::string columns_list = GetParamOr(params, "columns", "");
    if (columns_list.empty()) {
      for (size_t c = 0; c < in_schema.NumColumns(); ++c) columns.push_back(c);
    } else {
      IDAA_ASSIGN_OR_RETURN(columns, ResolveColumns(in_schema, columns_list));
    }
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> rows, ctx.ReadTable(input));

    Schema out_schema({{"COLUMN", DataType::kVarchar, false},
                       {"TYPE", DataType::kVarchar, false},
                       {"N", DataType::kInteger, false},
                       {"NULLS", DataType::kInteger, false},
                       {"DISTINCT", DataType::kInteger, false},
                       {"MIN", DataType::kVarchar, true},
                       {"MAX", DataType::kVarchar, true},
                       {"MEAN", DataType::kDouble, true},
                       {"STDDEV", DataType::kDouble, true}});
    std::vector<Row> out_rows;
    for (size_t c : columns) {
      const ColumnDef& def = in_schema.Column(c);
      size_t nulls = 0, n = 0;
      double sum = 0, sum_sq = 0;
      Value min_v, max_v;
      std::set<std::string> distinct;
      bool numeric = IsNumeric(def.type);
      for (const Row& row : rows) {
        const Value& v = row[c];
        if (v.is_null()) {
          ++nulls;
          continue;
        }
        ++n;
        distinct.insert(v.ToString());
        if (min_v.is_null()) {
          min_v = v;
          max_v = v;
        } else {
          auto lo = v.Compare(min_v);
          if (lo.ok() && *lo < 0) min_v = v;
          auto hi = v.Compare(max_v);
          if (hi.ok() && *hi > 0) max_v = v;
        }
        if (numeric) {
          auto d = v.ToDouble();
          if (d.ok()) {
            sum += *d;
            sum_sq += *d * *d;
          }
        }
      }
      Value mean = Value::Null(), stddev = Value::Null();
      if (numeric && n > 0) {
        double mu = sum / static_cast<double>(n);
        double var = sum_sq / static_cast<double>(n) - mu * mu;
        mean = Value::Double(mu);
        stddev = Value::Double(std::sqrt(std::max(0.0, var)));
      }
      out_rows.push_back(
          {Value::Varchar(def.name), Value::Varchar(DataTypeToString(def.type)),
           Value::Integer(static_cast<int64_t>(n)),
           Value::Integer(static_cast<int64_t>(nulls)),
           Value::Integer(static_cast<int64_t>(distinct.size())),
           min_v.is_null() ? Value::Null() : Value::Varchar(min_v.ToString()),
           max_v.is_null() ? Value::Null() : Value::Varchar(max_v.ToString()),
           mean, stddev});
    }

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }
    return ResultSet(out_schema, std::move(out_rows));
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeNormalizeOperator() {
  return std::make_unique<NormalizeOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeDiscretizeOperator() {
  return std::make_unique<DiscretizeOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeImputeOperator() {
  return std::make_unique<ImputeOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeOneHotOperator() {
  return std::make_unique<OneHotOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeSampleOperator() {
  return std::make_unique<SampleOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeSummarizeOperator() {
  return std::make_unique<SummarizeOperator>();
}

}  // namespace idaa::analytics
