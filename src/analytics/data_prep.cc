#include "analytics/data_prep.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "analytics/batch_input.h"
#include "analytics/parallel.h"
#include "common/string_util.h"

namespace idaa::analytics {

namespace {

/// Common scaffolding: read input (morsel-parallel on the batch path, with
/// the scan pin held until the transform is done), validate output name,
/// hand rows to a transform, write the produced rows into a fresh output
/// AOT. Transforms receive a pool only on the batch path; with pool ==
/// nullptr they must behave exactly like the original serial code.
class TableToTableOperator : public AnalyticsOperator {
 public:
  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(std::string output, GetParam(params, "output"));
    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));

    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    // Columnar-capable transforms read the input as flat column vectors;
    // everyone else (and any input with a non-columnar type) gets rows.
    std::vector<Row> rows;
    accel::ColumnarRows in_columnar;
    bool have_columnar = false;
    if (in != nullptr && WantsColumnarInput(params, in_schema)) {
      auto gathered = in->GatherColumnar(ctx.trace());
      if (gathered.ok()) {
        in_columnar = std::move(*gathered);
        have_columnar = true;
      }
    }
    if (!have_columnar) {
      if (in != nullptr) {
        rows = in->GatherRows(ctx.trace());
      } else {
        IDAA_ASSIGN_OR_RETURN(rows, ctx.ReadTable(input));
      }
    }
    const size_t in_count = have_columnar ? in_columnar.num_rows : rows.size();

    Schema out_schema;
    std::vector<Row> out_rows;
    accel::ColumnarRows out_columnar;
    std::optional<Result<ResultSet>> summary;
    {
      TraceSpan span(ctx.trace(),
                     "analytics." + ToLower(name()) + ".transform");
      span.Attr("batch_path", in != nullptr ? "true" : "false");
      span.Attr("rows", static_cast<uint64_t>(in_count));
      if (in != nullptr) {
        span.Attr("partial_merges",
                  static_cast<uint64_t>(NumChunks(in_count)));
      }
      summary = Transform(ctx, params, in_schema, rows,
                          in != nullptr ? in->pool() : nullptr, &out_schema,
                          &out_rows, &out_columnar,
                          have_columnar ? &in_columnar : nullptr);
    }
    if (!summary->ok()) return summary->status();
    in.reset();  // release the scan pin before materializing the output AOT

    IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
    if (!out_columnar.columns.empty()) {
      IDAA_RETURN_IF_ERROR(ctx.AppendColumnar(output, out_columnar));
    } else {
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }
    return std::move(*summary);
  }

 protected:
  /// Produce output schema + rows and a summary result set. `pool` is
  /// non-null only on the batch path; transforms keep per-chunk partial
  /// states and merge them in ascending chunk order so the batch result is
  /// identical for any thread count. A transform may stage its output in
  /// `out_columnar` instead of `out_rows` (batch path only — stored state
  /// must be identical to the rows the serial arm would produce); when
  /// `out_columnar` has columns, Run appends it via the columnar path.
  /// When the transform opted into columnar input (WantsColumnarInput) and
  /// the gather succeeded, `in_columnar` is non-null and `rows` is empty;
  /// its row order matches the serial row order exactly.
  virtual Result<ResultSet> Transform(AnalyticsContext& ctx,
                                      const ParamMap& params,
                                      const Schema& in_schema,
                                      const std::vector<Row>& rows,
                                      ThreadPool* pool, Schema* out_schema,
                                      std::vector<Row>* out_rows,
                                      accel::ColumnarRows* out_columnar,
                                      accel::ColumnarRows* in_columnar) = 0;

  /// Opt-in to a columnar input gather on the batch path. Implementations
  /// must only accept parameter/schema combinations their columnar arm
  /// fully handles (including surfacing the same errors as the row arm).
  virtual bool WantsColumnarInput(const ParamMap& /*params*/,
                                  const Schema& /*in_schema*/) const {
    return false;
  }

  static ResultSet SummaryRow(std::vector<std::string> names,
                              std::vector<Value> values) {
    std::vector<ColumnDef> cols;
    for (size_t i = 0; i < names.size(); ++i) {
      DataType type = DataType::kVarchar;
      if (values[i].is_integer()) type = DataType::kInteger;
      if (values[i].is_double()) type = DataType::kDouble;
      cols.push_back({names[i], type, true});
    }
    ResultSet out{Schema(std::move(cols))};
    out.Append(std::move(values));
    return out;
  }

  /// Non-null, non-VARCHAR values always convert; transforms gate their
  /// parallel arms on "no VARCHAR column selected" so this never fails
  /// inside a chunk task (the serial fallback owns the error surface).
  static double MustDouble(const Value& v) {
    auto d = v.ToDouble();
    return d.ok() ? *d : 0.0;
  }
};

// ---------------------------------------------------------------------------

class NormalizeOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "NORMALIZE"; }
  std::string description() const override {
    return "z-score or min-max scaling of numeric columns";
  }

 protected:
  bool WantsColumnarInput(const ParamMap& params,
                          const Schema& in_schema) const override {
    // Only when every selected column is numeric — VARCHAR selections must
    // flow through the serial row loop, which owns the error message.
    auto columns_list = GetParam(params, "columns");
    if (!columns_list.ok()) return false;
    auto columns = ResolveColumns(in_schema, *columns_list);
    if (!columns.ok()) return false;
    for (size_t c : *columns) {
      if (in_schema.Column(c).type == DataType::kVarchar) return false;
    }
    return true;
  }

  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, ThreadPool* pool,
                              Schema* out_schema,
                              std::vector<Row>* out_rows,
                              accel::ColumnarRows* out_columnar,
                              accel::ColumnarRows* in_columnar) override {
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> columns,
                          ResolveColumns(in_schema, columns_list));
    std::string method = ToLower(GetParamOr(params, "method", "zscore"));
    if (method != "zscore" && method != "minmax") {
      return Status::InvalidArgument("unknown normalization method: " + method);
    }
    for (size_t c : columns) {
      if (in_schema.Column(c).type == DataType::kVarchar) {
        pool = nullptr;  // serial loop below reports the ToDouble error
      }
    }

    // Column statistics: per-chunk min/max/sum/sum-sq partials merged in
    // ascending chunk order (batch path), or the original row loop.
    struct Stats {
      double sum = 0, sum_sq = 0, min = 0, max = 0;
      size_t n = 0;
    };
    std::map<size_t, Stats> stats;
    for (size_t c : columns) stats[c] = Stats{};
    if (pool != nullptr) {
      const size_t n =
          in_columnar != nullptr ? in_columnar->num_rows : rows.size();
      std::vector<std::vector<Stats>> partials(
          NumChunks(n), std::vector<Stats>(columns.size()));
      auto observe = [](Stats& s, double d) {
        if (s.n == 0) {
          s.min = d;
          s.max = d;
        }
        s.min = std::min(s.min, d);
        s.max = std::max(s.max, d);
        s.sum += d;
        s.sum_sq += d * d;
        ++s.n;
      };
      if (in_columnar != nullptr) {
        // Flat-vector accumulation: per column, rows ascend within each
        // fixed chunk exactly as in the row loop, so partials are
        // bit-identical to the rows-based batch arm.
        ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
          std::vector<Stats>& part = partials[chunk];
          for (size_t j = 0; j < columns.size(); ++j) {
            const accel::ColumnarRows::Col& col =
                in_columnar->columns[columns[j]];
            const bool dbl =
                in_schema.Column(columns[j]).type == DataType::kDouble;
            for (size_t r = begin; r < end; ++r) {
              if (!col.nulls.empty() && col.nulls[r]) continue;
              observe(part[j],
                      dbl ? col.doubles[r] : static_cast<double>(col.ints[r]));
            }
          }
        });
      } else {
        ParallelChunks(pool, n, [&](size_t chunk, size_t begin, size_t end) {
          std::vector<Stats>& part = partials[chunk];
          for (size_t r = begin; r < end; ++r) {
            for (size_t j = 0; j < columns.size(); ++j) {
              const Value& v = rows[r][columns[j]];
              if (v.is_null()) continue;
              observe(part[j], MustDouble(v));
            }
          }
        });
      }
      for (const std::vector<Stats>& part : partials) {
        for (size_t j = 0; j < columns.size(); ++j) {
          if (part[j].n == 0) continue;
          Stats& s = stats[columns[j]];
          if (s.n == 0) {
            s.min = part[j].min;
            s.max = part[j].max;
          }
          s.min = std::min(s.min, part[j].min);
          s.max = std::max(s.max, part[j].max);
          s.sum += part[j].sum;
          s.sum_sq += part[j].sum_sq;
          s.n += part[j].n;
        }
      }
    } else {
      for (const Row& row : rows) {
        for (size_t c : columns) {
          if (row[c].is_null()) continue;
          IDAA_ASSIGN_OR_RETURN(double d, row[c].ToDouble());
          Stats& s = stats[c];
          if (s.n == 0) {
            s.min = d;
            s.max = d;
          }
          s.min = std::min(s.min, d);
          s.max = std::max(s.max, d);
          s.sum += d;
          s.sum_sq += d * d;
          ++s.n;
        }
      }
    }

    // Output schema: normalized columns become DOUBLE, everything else kept.
    std::vector<ColumnDef> out_cols = in_schema.columns();
    for (size_t c : columns) {
      if (!IsNumeric(out_cols[c].type)) {
        return Status::InvalidArgument("column " + out_cols[c].name +
                                       " is not numeric");
      }
      out_cols[c].type = DataType::kDouble;
    }
    *out_schema = Schema(std::move(out_cols));

    // Each output row depends only on its input row and the final stats, so
    // the chunked rewrite is exact (not just epsilon) per stats value.
    auto scale = [&](const Stats& s, double d) {
      if (method == "zscore") {
        double mean = s.n ? s.sum / s.n : 0.0;
        double var = s.n ? s.sum_sq / s.n - mean * mean : 0.0;
        double sd = var > 0 ? std::sqrt(var) : 1.0;
        return (d - mean) / sd;
      }
      double span = s.max - s.min;
      return span > 0 ? (d - s.min) / span : 0.0;
    };
    // Batch path: stage the output column-major when every output column
    // has a columnar-insert representation — values go straight from the
    // chunk workers into flat typed vectors, no per-row Row/Value boxing.
    bool columnar_ok = pool != nullptr;
    for (const ColumnDef& def : out_schema->columns()) {
      if (def.type != DataType::kDouble && def.type != DataType::kInteger &&
          def.type != DataType::kVarchar) {
        columnar_ok = false;
      }
    }
    if (in_columnar != nullptr) {
      // Columnar in, columnar out: pass-through columns move wholesale;
      // normalized columns are rescaled flat-vector to flat-vector.
      const size_t n = in_columnar->num_rows;
      const size_t ncols = out_schema->NumColumns();
      std::vector<uint8_t> is_norm(ncols, 0);
      for (size_t c : columns) is_norm[c] = 1;
      out_columnar->num_rows = n;
      out_columnar->columns.resize(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        if (!is_norm[c]) {
          out_columnar->columns[c] = std::move(in_columnar->columns[c]);
          continue;
        }
        accel::ColumnarRows::Col& dst = out_columnar->columns[c];
        dst.nulls = in_columnar->columns[c].nulls;
        dst.doubles.resize(n);
      }
      ParallelChunks(pool, n, [&](size_t, size_t begin, size_t end) {
        for (size_t c : columns) {
          const accel::ColumnarRows::Col& src = in_columnar->columns[c];
          accel::ColumnarRows::Col& dst = out_columnar->columns[c];
          const bool dbl = in_schema.Column(c).type == DataType::kDouble;
          for (size_t r = begin; r < end; ++r) {
            if (!src.nulls.empty() && src.nulls[r]) continue;
            dst.doubles[r] = scale(
                stats.at(c),
                dbl ? src.doubles[r] : static_cast<double>(src.ints[r]));
          }
        }
      });
    } else if (columnar_ok) {
      const size_t ncols = out_schema->NumColumns();
      std::vector<uint8_t> is_norm(ncols, 0);
      for (size_t c : columns) is_norm[c] = 1;
      out_columnar->num_rows = rows.size();
      out_columnar->columns.resize(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        accel::ColumnarRows::Col& col = out_columnar->columns[c];
        col.nulls.assign(rows.size(), 0);
        switch (out_schema->Column(c).type) {
          case DataType::kDouble:
            col.doubles.resize(rows.size());
            break;
          case DataType::kInteger:
            col.ints.resize(rows.size());
            break;
          default:
            col.strings.resize(rows.size());
        }
      }
      // Chunks write disjoint index ranges of each staged vector.
      ParallelChunks(pool, rows.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          for (size_t c = 0; c < ncols; ++c) {
            const Value& v = rows[r][c];
            accel::ColumnarRows::Col& col = out_columnar->columns[c];
            if (v.is_null()) {
              col.nulls[r] = 1;
              continue;
            }
            if (is_norm[c]) {
              col.doubles[r] = scale(stats.at(c), MustDouble(v));
              continue;
            }
            switch (out_schema->Column(c).type) {
              case DataType::kDouble:
                col.doubles[r] = v.AsDouble();
                break;
              case DataType::kInteger:
                col.ints[r] = v.AsInteger();
                break;
              default:
                col.strings[r] = v.AsVarchar();
            }
          }
        }
      });
    } else if (pool != nullptr) {
      out_rows->assign(rows.size(), Row());
      ParallelChunks(pool, rows.size(),
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t r = begin; r < end; ++r) {
                         Row out = rows[r];
                         for (size_t c : columns) {
                           if (out[c].is_null()) continue;
                           out[c] = Value::Double(
                               scale(stats.at(c), MustDouble(out[c])));
                         }
                         (*out_rows)[r] = std::move(out);
                       }
                     });
    } else {
      out_rows->reserve(rows.size());
      for (const Row& row : rows) {
        Row out = row;
        for (size_t c : columns) {
          if (out[c].is_null()) continue;
          IDAA_ASSIGN_OR_RETURN(double d, out[c].ToDouble());
          out[c] = Value::Double(scale(stats[c], d));
        }
        out_rows->push_back(std::move(out));
      }
    }
    size_t out_count = in_columnar != nullptr
                           ? in_columnar->num_rows
                           : (columnar_ok ? rows.size() : out_rows->size());
    return SummaryRow({"ROWS", "COLUMNS", "METHOD"},
                      {Value::Integer(static_cast<int64_t>(out_count)),
                       Value::Integer(static_cast<int64_t>(columns.size())),
                       Value::Varchar(method)});
  }
};

// ---------------------------------------------------------------------------

class DiscretizeOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "DISCRETIZE"; }
  std::string description() const override {
    return "equal-width binning of a numeric column";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, ThreadPool* pool,
                              Schema* out_schema,
                              std::vector<Row>* out_rows,
                              accel::ColumnarRows* /*out_columnar*/,
                              accel::ColumnarRows* /*in_columnar*/) override {
    IDAA_ASSIGN_OR_RETURN(std::string column, GetParam(params, "column"));
    IDAA_ASSIGN_OR_RETURN(size_t col, in_schema.ColumnIndex(column));
    IDAA_ASSIGN_OR_RETURN(int64_t bins, GetIntParam(params, "bins", 10));
    if (bins < 1) return Status::InvalidArgument("bins must be >= 1");
    if (in_schema.Column(col).type == DataType::kVarchar) {
      pool = nullptr;  // serial loop below reports the ToDouble error
    }

    // Min/max: per-chunk partials merge exactly, so the batch-path range
    // (and therefore every bin) is bit-identical to the serial scan.
    double lo = 0, hi = 0;
    bool first = true;
    if (pool != nullptr) {
      struct Range {
        double lo = 0, hi = 0;
        bool any = false;
      };
      std::vector<Range> partials(NumChunks(rows.size()));
      ParallelChunks(pool, rows.size(),
                     [&](size_t chunk, size_t begin, size_t end) {
                       Range& part = partials[chunk];
                       for (size_t r = begin; r < end; ++r) {
                         if (rows[r][col].is_null()) continue;
                         double d = MustDouble(rows[r][col]);
                         if (!part.any) {
                           part.lo = part.hi = d;
                           part.any = true;
                         }
                         part.lo = std::min(part.lo, d);
                         part.hi = std::max(part.hi, d);
                       }
                     });
      for (const auto& part : partials) {
        if (!part.any) continue;
        if (first) {
          lo = part.lo;
          hi = part.hi;
          first = false;
        }
        lo = std::min(lo, part.lo);
        hi = std::max(hi, part.hi);
      }
    } else {
      for (const Row& row : rows) {
        if (row[col].is_null()) continue;
        IDAA_ASSIGN_OR_RETURN(double d, row[col].ToDouble());
        if (first) {
          lo = hi = d;
          first = false;
        }
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    }
    double width = (hi - lo) / static_cast<double>(bins);
    if (width <= 0) width = 1.0;

    std::vector<ColumnDef> out_cols = in_schema.columns();
    out_cols.push_back(
        {Catalog::NormalizeName(column) + "_BIN", DataType::kInteger, true});
    *out_schema = Schema(std::move(out_cols));

    auto bin_of = [&](double d) {
      int64_t bin = static_cast<int64_t>((d - lo) / width);
      return std::clamp<int64_t>(bin, 0, bins - 1);
    };
    if (pool != nullptr) {
      out_rows->assign(rows.size(), Row());
      ParallelChunks(pool, rows.size(),
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t r = begin; r < end; ++r) {
                         Row out = rows[r];
                         if (rows[r][col].is_null()) {
                           out.push_back(Value::Null());
                         } else {
                           out.push_back(Value::Integer(
                               bin_of(MustDouble(rows[r][col]))));
                         }
                         (*out_rows)[r] = std::move(out);
                       }
                     });
    } else {
      out_rows->reserve(rows.size());
      for (const Row& row : rows) {
        Row out = row;
        if (row[col].is_null()) {
          out.push_back(Value::Null());
        } else {
          IDAA_ASSIGN_OR_RETURN(double d, row[col].ToDouble());
          out.push_back(Value::Integer(bin_of(d)));
        }
        out_rows->push_back(std::move(out));
      }
    }
    return SummaryRow(
        {"ROWS", "BINS", "LOW", "HIGH"},
        {Value::Integer(static_cast<int64_t>(out_rows->size())),
         Value::Integer(bins), Value::Double(lo), Value::Double(hi)});
  }
};

// ---------------------------------------------------------------------------

class ImputeOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "IMPUTE"; }
  std::string description() const override {
    return "replace NULLs with column mean (numeric) or mode (varchar)";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, ThreadPool* pool,
                              Schema* out_schema,
                              std::vector<Row>* out_rows,
                              accel::ColumnarRows* /*out_columnar*/,
                              accel::ColumnarRows* /*in_columnar*/) override {
    IDAA_ASSIGN_OR_RETURN(std::string columns_list,
                          GetParam(params, "columns"));
    IDAA_ASSIGN_OR_RETURN(std::vector<size_t> columns,
                          ResolveColumns(in_schema, columns_list));

    // Replacement values: VARCHAR mode counts are additive, so the chunked
    // merge is exact; numeric means merge per-chunk sums (epsilon vs the
    // serial row-order sum, identical across thread counts).
    std::map<size_t, Value> replacement;
    for (size_t c : columns) {
      const ColumnDef& def = in_schema.Column(c);
      if (def.type == DataType::kVarchar) {
        std::map<std::string, size_t> counts;
        if (pool != nullptr) {
          std::vector<std::map<std::string, size_t>> partials(
              NumChunks(rows.size()));
          ParallelChunks(pool, rows.size(),
                         [&](size_t chunk, size_t begin, size_t end) {
                           auto& part = partials[chunk];
                           for (size_t r = begin; r < end; ++r) {
                             if (!rows[r][c].is_null()) {
                               ++part[rows[r][c].AsVarchar()];
                             }
                           }
                         });
          for (const auto& part : partials) {
            for (const auto& [value, count] : part) counts[value] += count;
          }
        } else {
          for (const Row& row : rows) {
            if (!row[c].is_null()) ++counts[row[c].AsVarchar()];
          }
        }
        std::string mode;
        size_t best = 0;
        for (const auto& [value, count] : counts) {
          if (count > best) {
            best = count;
            mode = value;
          }
        }
        replacement[c] = Value::Varchar(mode);
      } else {
        double sum = 0;
        size_t n = 0;
        if (pool != nullptr) {
          struct Partial {
            double sum = 0;
            size_t n = 0;
          };
          std::vector<Partial> partials(NumChunks(rows.size()));
          ParallelChunks(pool, rows.size(),
                         [&](size_t chunk, size_t begin, size_t end) {
                           Partial& part = partials[chunk];
                           for (size_t r = begin; r < end; ++r) {
                             if (rows[r][c].is_null()) continue;
                             part.sum += MustDouble(rows[r][c]);
                             ++part.n;
                           }
                         });
          for (const Partial& part : partials) {
            sum += part.sum;
            n += part.n;
          }
        } else {
          for (const Row& row : rows) {
            if (row[c].is_null()) continue;
            IDAA_ASSIGN_OR_RETURN(double d, row[c].ToDouble());
            sum += d;
            ++n;
          }
        }
        double mean = n ? sum / n : 0.0;
        Value v = Value::Double(mean);
        if (def.type != DataType::kDouble) {
          IDAA_ASSIGN_OR_RETURN(v, v.CastTo(def.type));
        }
        replacement[c] = v;
      }
    }

    *out_schema = in_schema;
    size_t imputed = 0;
    if (pool != nullptr) {
      out_rows->assign(rows.size(), Row());
      std::vector<size_t> imputed_per_chunk(NumChunks(rows.size()), 0);
      ParallelChunks(pool, rows.size(),
                     [&](size_t chunk, size_t begin, size_t end) {
                       size_t count = 0;
                       for (size_t r = begin; r < end; ++r) {
                         Row out = rows[r];
                         for (size_t c : columns) {
                           if (out[c].is_null()) {
                             out[c] = replacement.at(c);
                             ++count;
                           }
                         }
                         (*out_rows)[r] = std::move(out);
                       }
                       imputed_per_chunk[chunk] = count;
                     });
      for (size_t count : imputed_per_chunk) imputed += count;
    } else {
      out_rows->reserve(rows.size());
      for (const Row& row : rows) {
        Row out = row;
        for (size_t c : columns) {
          if (out[c].is_null()) {
            out[c] = replacement[c];
            ++imputed;
          }
        }
        out_rows->push_back(std::move(out));
      }
    }
    return SummaryRow({"ROWS", "IMPUTED_VALUES"},
                      {Value::Integer(static_cast<int64_t>(out_rows->size())),
                       Value::Integer(static_cast<int64_t>(imputed))});
  }
};

// ---------------------------------------------------------------------------

class OneHotOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "ONEHOT"; }
  std::string description() const override {
    return "expand a categorical column into 0/1 indicator columns";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, ThreadPool* pool,
                              Schema* out_schema,
                              std::vector<Row>* out_rows,
                              accel::ColumnarRows* /*out_columnar*/,
                              accel::ColumnarRows* /*in_columnar*/) override {
    IDAA_ASSIGN_OR_RETURN(std::string column, GetParam(params, "column"));
    IDAA_ASSIGN_OR_RETURN(size_t col, in_schema.ColumnIndex(column));
    IDAA_ASSIGN_OR_RETURN(int64_t max_values,
                          GetIntParam(params, "max_values", 32));

    // Category discovery in first-appearance order. Per-chunk appearance
    // lists concatenated in ascending chunk order reproduce the serial
    // first-appearance order exactly; the max_values check runs on the
    // merged set, so both paths accept/reject identically.
    std::map<std::string, size_t> categories;  // value -> indicator index
    if (pool != nullptr) {
      struct Partial {
        std::vector<std::string> order;
        std::set<std::string> seen;
      };
      std::vector<Partial> partials(NumChunks(rows.size()));
      ParallelChunks(pool, rows.size(),
                     [&](size_t chunk, size_t begin, size_t end) {
                       Partial& part = partials[chunk];
                       for (size_t r = begin; r < end; ++r) {
                         if (rows[r][col].is_null()) continue;
                         std::string key = rows[r][col].ToString();
                         if (part.seen.insert(key).second) {
                           part.order.push_back(std::move(key));
                         }
                       }
                     });
      for (const Partial& part : partials) {
        for (const std::string& key : part.order) {
          if (!categories.count(key)) {
            if (static_cast<int64_t>(categories.size()) >= max_values) {
              return Status::InvalidArgument(
                  "column has more than max_values distinct values");
            }
            categories.emplace(key, categories.size());
          }
        }
      }
    } else {
      for (const Row& row : rows) {
        if (row[col].is_null()) continue;
        std::string key = row[col].ToString();
        if (!categories.count(key)) {
          if (static_cast<int64_t>(categories.size()) >= max_values) {
            return Status::InvalidArgument(
                "column has more than max_values distinct values");
          }
          categories.emplace(key, categories.size());
        }
      }
    }

    std::vector<ColumnDef> out_cols = in_schema.columns();
    std::vector<std::string> ordered(categories.size());
    for (const auto& [value, idx] : categories) ordered[idx] = value;
    for (const std::string& value : ordered) {
      std::string safe;
      for (char ch : value) {
        safe += std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_';
      }
      out_cols.push_back({Catalog::NormalizeName(column) + "_" + ToUpper(safe),
                          DataType::kInteger, true});
    }
    *out_schema = Schema(std::move(out_cols));

    auto expand = [&](const Row& row) {
      Row out = row;
      std::string key = row[col].is_null() ? "" : row[col].ToString();
      for (const std::string& value : ordered) {
        out.push_back(Value::Integer(!row[col].is_null() && key == value));
      }
      return out;
    };
    if (pool != nullptr) {
      out_rows->assign(rows.size(), Row());
      ParallelChunks(pool, rows.size(),
                     [&](size_t, size_t begin, size_t end) {
                       for (size_t r = begin; r < end; ++r) {
                         (*out_rows)[r] = expand(rows[r]);
                       }
                     });
    } else {
      out_rows->reserve(rows.size());
      for (const Row& row : rows) out_rows->push_back(expand(row));
    }
    return SummaryRow({"ROWS", "CATEGORIES"},
                      {Value::Integer(static_cast<int64_t>(out_rows->size())),
                       Value::Integer(static_cast<int64_t>(ordered.size()))});
  }
};

// ---------------------------------------------------------------------------

class SampleOperator : public TableToTableOperator {
 public:
  std::string name() const override { return "SAMPLE"; }
  std::string description() const override {
    return "Bernoulli row sampling";
  }

 protected:
  Result<ResultSet> Transform(AnalyticsContext&, const ParamMap& params,
                              const Schema& in_schema,
                              const std::vector<Row>& rows, ThreadPool* pool,
                              Schema* out_schema,
                              std::vector<Row>* out_rows,
                              accel::ColumnarRows* /*out_columnar*/,
                              accel::ColumnarRows* /*in_columnar*/) override {
    (void)pool;  // the seeded RNG stream is sequential by construction; the
                 // batch path still parallelizes the input gather, and the
                 // serial draw keeps output bit-identical to the row path
    IDAA_ASSIGN_OR_RETURN(double fraction,
                          GetDoubleParam(params, "fraction", 0.1));
    IDAA_ASSIGN_OR_RETURN(int64_t seed, GetIntParam(params, "seed", 42));
    if (fraction < 0.0 || fraction > 1.0) {
      return Status::InvalidArgument("fraction must be in [0,1]");
    }
    *out_schema = in_schema;
    Rng rng(static_cast<uint64_t>(seed));
    for (const Row& row : rows) {
      if (rng.Bernoulli(fraction)) out_rows->push_back(row);
    }
    return SummaryRow({"INPUT_ROWS", "SAMPLED_ROWS"},
                      {Value::Integer(static_cast<int64_t>(rows.size())),
                       Value::Integer(static_cast<int64_t>(out_rows->size()))});
  }
};

// ---------------------------------------------------------------------------

class SummarizeOperator : public AnalyticsOperator {
 public:
  std::string name() const override { return "SUMMARIZE"; }
  std::string description() const override {
    return "per-column data audit: count, nulls, distinct, min/max, "
           "mean/stddev";
  }

  Result<std::vector<std::string>> InputTables(
      const ParamMap& params) const override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    return std::vector<std::string>{Catalog::NormalizeName(input)};
  }

  Result<ResultSet> Run(AnalyticsContext& ctx, const ParamMap& params) override {
    IDAA_ASSIGN_OR_RETURN(std::string input, GetParam(params, "input"));
    IDAA_ASSIGN_OR_RETURN(Schema in_schema, ctx.TableSchema(input));
    std::vector<size_t> columns;
    std::string columns_list = GetParamOr(params, "columns", "");
    if (columns_list.empty()) {
      for (size_t c = 0; c < in_schema.NumColumns(); ++c) columns.push_back(c);
    } else {
      IDAA_ASSIGN_OR_RETURN(columns, ResolveColumns(in_schema, columns_list));
    }

    std::unique_ptr<AnalyticsInput> in;
    if (ctx.batch_path_enabled()) {
      auto opened = ctx.OpenInput(input);
      if (opened.ok()) in = std::move(*opened);
    }
    std::vector<Row> rows;
    if (in != nullptr) {
      rows = in->GatherRows(ctx.trace());
    } else {
      IDAA_ASSIGN_OR_RETURN(rows, ctx.ReadTable(input));
    }

    Schema out_schema({{"COLUMN", DataType::kVarchar, false},
                       {"TYPE", DataType::kVarchar, false},
                       {"N", DataType::kInteger, false},
                       {"NULLS", DataType::kInteger, false},
                       {"DISTINCT", DataType::kInteger, false},
                       {"MIN", DataType::kVarchar, true},
                       {"MAX", DataType::kVarchar, true},
                       {"MEAN", DataType::kDouble, true},
                       {"STDDEV", DataType::kDouble, true}});

    // One independent task per audited column; within a column the scan is
    // the serial row loop, so the batch result is exactly the serial one.
    std::vector<Row> out_rows(columns.size());
    auto audit = [&](size_t j) {
      size_t c = columns[j];
      const ColumnDef& def = in_schema.Column(c);
      size_t nulls = 0, n = 0;
      double sum = 0, sum_sq = 0;
      Value min_v, max_v;
      std::set<std::string> distinct;
      bool numeric = IsNumeric(def.type);
      for (const Row& row : rows) {
        const Value& v = row[c];
        if (v.is_null()) {
          ++nulls;
          continue;
        }
        ++n;
        distinct.insert(v.ToString());
        if (min_v.is_null()) {
          min_v = v;
          max_v = v;
        } else {
          auto lo = v.Compare(min_v);
          if (lo.ok() && *lo < 0) min_v = v;
          auto hi = v.Compare(max_v);
          if (hi.ok() && *hi > 0) max_v = v;
        }
        if (numeric) {
          auto d = v.ToDouble();
          if (d.ok()) {
            sum += *d;
            sum_sq += *d * *d;
          }
        }
      }
      Value mean = Value::Null(), stddev = Value::Null();
      if (numeric && n > 0) {
        double mu = sum / static_cast<double>(n);
        double var = sum_sq / static_cast<double>(n) - mu * mu;
        mean = Value::Double(mu);
        stddev = Value::Double(std::sqrt(std::max(0.0, var)));
      }
      out_rows[j] =
          {Value::Varchar(def.name), Value::Varchar(DataTypeToString(def.type)),
           Value::Integer(static_cast<int64_t>(n)),
           Value::Integer(static_cast<int64_t>(nulls)),
           Value::Integer(static_cast<int64_t>(distinct.size())),
           min_v.is_null() ? Value::Null() : Value::Varchar(min_v.ToString()),
           max_v.is_null() ? Value::Null() : Value::Varchar(max_v.ToString()),
           mean, stddev};
    };
    {
      TraceSpan span(ctx.trace(), "analytics.summarize.audit");
      span.Attr("batch_path", in != nullptr ? "true" : "false");
      span.Attr("rows", static_cast<uint64_t>(rows.size()));
      ThreadPool* pool = in != nullptr ? in->pool() : nullptr;
      if (pool != nullptr && columns.size() > 1) {
        pool->ParallelForDynamic(
            columns.size(), std::min(pool->num_threads(), columns.size()),
            [&](size_t, size_t j) { audit(j); });
      } else {
        for (size_t j = 0; j < columns.size(); ++j) audit(j);
      }
    }
    in.reset();  // release the scan pin before materializing the output AOT

    std::string output = GetParamOr(params, "output", "");
    if (!output.empty()) {
      IDAA_RETURN_IF_ERROR(ctx.RecreateAot(output, out_schema));
      IDAA_RETURN_IF_ERROR(ctx.AppendRows(output, out_rows));
    }
    return ResultSet(out_schema, std::move(out_rows));
  }
};

}  // namespace

std::unique_ptr<AnalyticsOperator> MakeNormalizeOperator() {
  return std::make_unique<NormalizeOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeDiscretizeOperator() {
  return std::make_unique<DiscretizeOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeOneHotOperator() {
  return std::make_unique<OneHotOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeImputeOperator() {
  return std::make_unique<ImputeOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeSampleOperator() {
  return std::make_unique<SampleOperator>();
}
std::unique_ptr<AnalyticsOperator> MakeSummarizeOperator() {
  return std::make_unique<SummarizeOperator>();
}

}  // namespace idaa::analytics
