// ReplicationService: IDAA's incremental-update pipeline — subscribes to
// DB2 commits, batches captured changes, and applies them to the
// accelerator's replica tables. The legacy (pre-AOT) ELT flow pays this
// path once per pipeline stage; AOTs bypass it entirely.

#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "replication/apply_worker.h"
#include "replication/change_capture.h"

namespace idaa::replication {

class ReplicationService {
 public:
  ReplicationService(TransactionManager* tm, ReplicaResolver resolver,
                     federation::TransferChannel* channel,
                     MetricsRegistry* metrics,
                     LatencyHistogram* apply_latency = nullptr)
      : capture_(),
        worker_(tm, std::move(resolver), channel, metrics, apply_latency),
        tm_(tm) {}

  /// Register the commit listener with the transaction manager. Call once.
  void Attach();

  /// Start replicating a table (its initial snapshot load is the
  /// federation layer's job — ACCEL_ADD_TABLES).
  void RegisterTable(const std::string& normalized_name);
  void UnregisterTable(const std::string& normalized_name);
  bool IsReplicated(const std::string& normalized_name) const;

  /// Changes accumulated but not yet applied.
  size_t PendingChanges() const { return capture_.PendingCount(); }

  /// Apply everything pending, in batches of `batch_size()`.
  Result<ApplyStats> Flush();

  /// Batch size for automatic apply: once pending >= batch_size, the next
  /// commit triggers a flush. 0 disables automatic apply (manual Flush).
  void set_batch_size(size_t n) { batch_size_ = n; }
  size_t batch_size() const { return batch_size_; }

  /// Staleness: highest captured CSN minus highest applied CSN.
  Csn HighestCapturedCsn() const { return capture_.HighestCapturedCsn(); }
  Csn HighestAppliedCsn() const;

  /// Fan-out hook: called after each successfully applied batch with the
  /// distinct (normalized) table names it touched. The workload manager's
  /// result cache registers here so replica-visible changes evict exactly
  /// the affected tables' cached results.
  using InvalidationListener =
      std::function<void(const std::vector<std::string>& tables)>;
  void set_invalidation_listener(InvalidationListener listener) {
    invalidation_listener_ = std::move(listener);
  }

 private:
  ChangeCapture capture_;
  ApplyWorker worker_;
  TransactionManager* tm_;
  size_t batch_size_ = 256;
  InvalidationListener invalidation_listener_;
  mutable std::mutex mu_;
  Csn highest_applied_ = 0;
  bool flushing_ = false;
};

}  // namespace idaa::replication
