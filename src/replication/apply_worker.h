// ApplyWorker: pushes committed change batches through the metered DB2 ->
// accelerator channel and applies them to the replica column tables under a
// dedicated replication transaction per batch.

#pragma once

#include <functional>

#include "accel/accelerator.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "federation/transfer_channel.h"
#include "replication/change_capture.h"
#include "txn/transaction_manager.h"

namespace idaa::replication {

/// Resolves the replica route of a (normalized) table name — supplied by
/// the embedding system, which knows which attached accelerator hosts the
/// table. For a plain accelerator the route is one ColumnTable; a sharded
/// accelerator returns every shard's storage plus the partition-hash
/// router (see accel::ReplicaRoute), and the worker fans each change out
/// to its home shard (hash-partitioned) or to every copy (broadcast).
using ReplicaResolver =
    std::function<Result<accel::ReplicaRoute>(const std::string& table_name)>;

struct ApplyStats {
  size_t changes_applied = 0;
  size_t inserts = 0;
  size_t deletes = 0;
  size_t updates = 0;
  size_t misses = 0;  ///< delete/update images not found (should stay 0)
};

class ApplyWorker {
 public:
  /// `apply_latency`, when non-null, receives one sample (microseconds) per
  /// successfully applied batch.
  ApplyWorker(TransactionManager* tm, ReplicaResolver resolver,
              federation::TransferChannel* channel, MetricsRegistry* metrics,
              LatencyHistogram* apply_latency = nullptr)
      : tm_(tm), resolver_(std::move(resolver)), channel_(channel),
        metrics_(metrics), apply_latency_(apply_latency) {}

  /// Apply one batch atomically (single replication transaction; rolled
  /// back entirely on failure). Route pins are held for the whole batch,
  /// so a shard rebalance can never interleave with a half-applied batch.
  Result<ApplyStats> ApplyBatch(const std::vector<CommittedChange>& batch);

 private:
  TransactionManager* tm_;
  ReplicaResolver resolver_;
  federation::TransferChannel* channel_;
  MetricsRegistry* metrics_;
  LatencyHistogram* apply_latency_;
};

}  // namespace idaa::replication
