#include "replication/apply_worker.h"

namespace idaa::replication {

Result<ApplyStats> ApplyWorker::ApplyBatch(
    const std::vector<CommittedChange>& batch) {
  ApplyStats stats;
  if (batch.empty()) return stats;
  const uint64_t start_ns = TraceNowNs();

  // Resolve every target replica before shipping anything: an unreachable
  // accelerator must fail the batch *before* the boundary crossing so the
  // caller can requeue it without having metered phantom bytes.
  std::vector<accel::ColumnTable*> targets;
  targets.reserve(batch.size());
  for (const auto& cc : batch) {
    auto table_r = resolver_(cc.change.table_name);
    if (!table_r.ok()) return table_r.status();
    targets.push_back(*table_r);
  }

  // Meter the batch crossing the boundary (old+new images, like a real
  // log-shipping pipeline).
  std::vector<Row> wire_rows;
  for (const auto& cc : batch) {
    if (!cc.change.row.empty()) wire_rows.push_back(cc.change.row);
    if (!cc.change.old_row.empty()) wire_rows.push_back(cc.change.old_row);
  }
  IDAA_ASSIGN_OR_RETURN(auto delivered,
                        channel_->SendRowsToAccelerator(wire_rows));
  (void)delivered;

  Transaction* txn = tm_->Begin();
  auto fail = [&](Status status) -> Status {
    (void)tm_->Abort(txn);
    return status;
  };

  for (size_t i = 0; i < batch.size(); ++i) {
    const auto& cc = batch[i];
    const CapturedChange& change = cc.change;
    accel::ColumnTable* table = targets[i];
    switch (change.op) {
      case CapturedChange::Op::kInsert: {
        Status st = table->Insert({change.row}, txn->id());
        if (!st.ok()) return fail(st);
        ++stats.inserts;
        break;
      }
      case CapturedChange::Op::kDelete: {
        auto found = table->DeleteOneMatching(change.old_row, txn->id(),
                                              txn->snapshot_csn(), *tm_);
        if (!found.ok()) return fail(found.status());
        if (!*found) ++stats.misses;
        ++stats.deletes;
        break;
      }
      case CapturedChange::Op::kUpdate: {
        auto found = table->DeleteOneMatching(change.old_row, txn->id(),
                                              txn->snapshot_csn(), *tm_);
        if (!found.ok()) return fail(found.status());
        if (!*found) ++stats.misses;
        Status st = table->Insert({change.row}, txn->id());
        if (!st.ok()) return fail(st);
        ++stats.updates;
        break;
      }
    }
    ++stats.changes_applied;
  }
  IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
  metrics_->Add(metric::kReplicationChangesApplied, stats.changes_applied);
  metrics_->Increment(metric::kReplicationBatches);
  size_t bytes = 0;
  for (const Row& r : wire_rows) bytes += RowByteSize(r);
  metrics_->Add(metric::kReplicationBytesApplied, bytes);
  if (apply_latency_ != nullptr) {
    apply_latency_->Record((TraceNowNs() - start_ns) / 1000);
  }
  return stats;
}

}  // namespace idaa::replication
