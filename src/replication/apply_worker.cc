#include "replication/apply_worker.h"

#include <map>

namespace idaa::replication {

namespace {

/// Delete one row image along its route. Hash-partitioned: the home shard
/// is tried first; the others only as a fallback (a row can sit off its
/// home shard only transiently, e.g. mid-rebalance leftovers), so the
/// common case touches 1/N of the topology. Broadcast: every copy must
/// drop the image. Returns whether the image was found (broadcast: on
/// every copy).
Result<bool> RouteDelete(const accel::ReplicaRoute& route, const Row& image,
                         TxnId txn, Csn snapshot,
                         const TransactionManager& tm) {
  if (route.shard_of != nullptr) {
    size_t home = route.shard_of(image);
    IDAA_ASSIGN_OR_RETURN(
        bool found, route.targets[home]->DeleteOneMatching(image, txn,
                                                           snapshot, tm));
    if (found) return true;
    for (size_t i = 0; i < route.targets.size(); ++i) {
      if (i == home) continue;
      IDAA_ASSIGN_OR_RETURN(
          found,
          route.targets[i]->DeleteOneMatching(image, txn, snapshot, tm));
      if (found) return true;
    }
    return false;
  }
  bool found_everywhere = true;
  for (accel::ColumnTable* target : route.targets) {
    IDAA_ASSIGN_OR_RETURN(bool found,
                          target->DeleteOneMatching(image, txn, snapshot, tm));
    found_everywhere = found_everywhere && found;
  }
  return found_everywhere;
}

/// Insert one row along its route: home shard (hash-partitioned) or every
/// copy (broadcast).
Status RouteInsert(const accel::ReplicaRoute& route, const Row& row,
                   TxnId txn) {
  if (route.shard_of != nullptr) {
    return route.targets[route.shard_of(row)]->Insert({row}, txn);
  }
  for (accel::ColumnTable* target : route.targets) {
    IDAA_RETURN_IF_ERROR(target->Insert({row}, txn));
  }
  return Status::OK();
}

}  // namespace

Result<ApplyStats> ApplyWorker::ApplyBatch(
    const std::vector<CommittedChange>& batch) {
  ApplyStats stats;
  if (batch.empty()) return stats;
  const uint64_t start_ns = TraceNowNs();

  // Resolve every target route before shipping anything: an unreachable
  // accelerator (or shard) must fail the batch *before* the boundary
  // crossing so the caller can requeue it without having metered phantom
  // bytes. One route per distinct table; its pin is held until the batch
  // is applied (or abandoned), keeping the shard topology stable.
  std::map<std::string, accel::ReplicaRoute> routes;
  std::vector<const accel::ReplicaRoute*> targets;
  targets.reserve(batch.size());
  for (const auto& cc : batch) {
    auto it = routes.find(cc.change.table_name);
    if (it == routes.end()) {
      auto route_r = resolver_(cc.change.table_name);
      if (!route_r.ok()) return route_r.status();
      it = routes.emplace(cc.change.table_name, std::move(*route_r)).first;
    }
    targets.push_back(&it->second);
  }

  // Meter the batch crossing the boundary (old+new images, like a real
  // log-shipping pipeline).
  std::vector<Row> wire_rows;
  for (const auto& cc : batch) {
    if (!cc.change.row.empty()) wire_rows.push_back(cc.change.row);
    if (!cc.change.old_row.empty()) wire_rows.push_back(cc.change.old_row);
  }
  IDAA_ASSIGN_OR_RETURN(auto delivered,
                        channel_->SendRowsToAccelerator(wire_rows));
  (void)delivered;

  Transaction* txn = tm_->Begin();
  auto fail = [&](Status status) -> Status {
    (void)tm_->Abort(txn);
    return status;
  };

  for (size_t i = 0; i < batch.size(); ++i) {
    const auto& cc = batch[i];
    const CapturedChange& change = cc.change;
    const accel::ReplicaRoute& route = *targets[i];
    switch (change.op) {
      case CapturedChange::Op::kInsert: {
        Status st = RouteInsert(route, change.row, txn->id());
        if (!st.ok()) return fail(st);
        ++stats.inserts;
        break;
      }
      case CapturedChange::Op::kDelete: {
        auto found = RouteDelete(route, change.old_row, txn->id(),
                                 txn->snapshot_csn(), *tm_);
        if (!found.ok()) return fail(found.status());
        if (!*found) ++stats.misses;
        ++stats.deletes;
        break;
      }
      case CapturedChange::Op::kUpdate: {
        auto found = RouteDelete(route, change.old_row, txn->id(),
                                 txn->snapshot_csn(), *tm_);
        if (!found.ok()) return fail(found.status());
        if (!*found) ++stats.misses;
        Status st = RouteInsert(route, change.row, txn->id());
        if (!st.ok()) return fail(st);
        ++stats.updates;
        break;
      }
    }
    ++stats.changes_applied;
  }
  IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
  metrics_->Add(metric::kReplicationChangesApplied, stats.changes_applied);
  metrics_->Increment(metric::kReplicationBatches);
  size_t bytes = 0;
  for (const Row& r : wire_rows) bytes += RowByteSize(r);
  metrics_->Add(metric::kReplicationBytesApplied, bytes);
  if (apply_latency_ != nullptr) {
    apply_latency_->Record((TraceNowNs() - start_ns) / 1000);
  }
  return stats;
}

}  // namespace idaa::replication
