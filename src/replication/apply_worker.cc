#include "replication/apply_worker.h"

namespace idaa::replication {

Result<ApplyStats> ApplyWorker::ApplyBatch(
    const std::vector<CommittedChange>& batch) {
  ApplyStats stats;
  if (batch.empty()) return stats;
  const uint64_t start_ns = TraceNowNs();

  // Meter the batch crossing the boundary (old+new images, like a real
  // log-shipping pipeline).
  std::vector<Row> wire_rows;
  for (const auto& cc : batch) {
    if (!cc.change.row.empty()) wire_rows.push_back(cc.change.row);
    if (!cc.change.old_row.empty()) wire_rows.push_back(cc.change.old_row);
  }
  IDAA_ASSIGN_OR_RETURN(auto delivered,
                        channel_->SendRowsToAccelerator(wire_rows));
  (void)delivered;

  Transaction* txn = tm_->Begin();
  auto fail = [&](Status status) -> Status {
    (void)tm_->Abort(txn);
    return status;
  };

  for (const auto& cc : batch) {
    const CapturedChange& change = cc.change;
    auto table_r = resolver_(change.table_name);
    if (!table_r.ok()) return fail(table_r.status());
    accel::ColumnTable* table = *table_r;
    switch (change.op) {
      case CapturedChange::Op::kInsert: {
        Status st = table->Insert({change.row}, txn->id());
        if (!st.ok()) return fail(st);
        ++stats.inserts;
        break;
      }
      case CapturedChange::Op::kDelete: {
        auto found = table->DeleteOneMatching(change.old_row, txn->id(),
                                              txn->snapshot_csn(), *tm_);
        if (!found.ok()) return fail(found.status());
        if (!*found) ++stats.misses;
        ++stats.deletes;
        break;
      }
      case CapturedChange::Op::kUpdate: {
        auto found = table->DeleteOneMatching(change.old_row, txn->id(),
                                              txn->snapshot_csn(), *tm_);
        if (!found.ok()) return fail(found.status());
        if (!*found) ++stats.misses;
        Status st = table->Insert({change.row}, txn->id());
        if (!st.ok()) return fail(st);
        ++stats.updates;
        break;
      }
    }
    ++stats.changes_applied;
  }
  IDAA_RETURN_IF_ERROR(tm_->Commit(txn));
  metrics_->Add(metric::kReplicationChangesApplied, stats.changes_applied);
  metrics_->Increment(metric::kReplicationBatches);
  size_t bytes = 0;
  for (const Row& r : wire_rows) bytes += RowByteSize(r);
  metrics_->Add(metric::kReplicationBytesApplied, bytes);
  if (apply_latency_ != nullptr) {
    apply_latency_->Record((TraceNowNs() - start_ns) / 1000);
  }
  return stats;
}

}  // namespace idaa::replication
