#include "replication/change_capture.h"

#include <algorithm>

namespace idaa::replication {

void ChangeCapture::Subscribe(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  subscriptions_.insert(table_name);
}

void ChangeCapture::Unsubscribe(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  subscriptions_.erase(table_name);
  // Drop queued changes of the table.
  std::deque<CommittedChange> kept;
  for (auto& cc : pending_) {
    if (cc.change.table_name != table_name) kept.push_back(std::move(cc));
  }
  pending_ = std::move(kept);
}

bool ChangeCapture::IsSubscribed(const std::string& table_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscriptions_.count(table_name) > 0;
}

void ChangeCapture::OnCommit(const Transaction& txn, Csn commit_csn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CapturedChange& change : txn.captured_changes()) {
    if (!subscriptions_.count(change.table_name)) continue;
    pending_.push_back({change, commit_csn});
    highest_captured_ = std::max(highest_captured_, commit_csn);
  }
}

std::vector<CommittedChange> ChangeCapture::Drain(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CommittedChange> out;
  while (!pending_.empty() && out.size() < max) {
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return out;
}

void ChangeCapture::Requeue(std::vector<CommittedChange> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    pending_.push_front(std::move(*it));
  }
}

size_t ChangeCapture::PendingCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

Csn ChangeCapture::HighestCapturedCsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return highest_captured_;
}

}  // namespace idaa::replication
