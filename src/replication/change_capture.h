// ChangeCapture: collects the committed change stream of replicated DB2
// tables (the "log reader" of IDAA's incremental-update pipeline).

#pragma once

#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "txn/transaction.h"

namespace idaa::replication {

/// A committed change plus its commit CSN, ready to apply.
struct CommittedChange {
  CapturedChange change;
  Csn commit_csn = 0;
};

class ChangeCapture {
 public:
  /// Start capturing changes for a table (normalized name).
  void Subscribe(const std::string& table_name);
  void Unsubscribe(const std::string& table_name);
  bool IsSubscribed(const std::string& table_name) const;

  /// Feed a committed transaction's captured changes; changes of
  /// unsubscribed tables are dropped.
  void OnCommit(const Transaction& txn, Csn commit_csn);

  /// Drain up to `max` pending changes (FIFO).
  std::vector<CommittedChange> Drain(size_t max);

  /// Put a drained batch back at the FRONT of the queue, preserving order
  /// (apply failed — e.g. accelerator offline — so nothing is lost and the
  /// next Flush retries from the same point).
  void Requeue(std::vector<CommittedChange> batch);

  size_t PendingCount() const;

  /// Highest commit CSN ever enqueued (staleness tracking).
  Csn HighestCapturedCsn() const;

 private:
  mutable std::mutex mu_;
  std::set<std::string> subscriptions_;
  std::deque<CommittedChange> pending_;
  Csn highest_captured_ = 0;
};

}  // namespace idaa::replication
