#include "replication/replication_service.h"

#include <algorithm>

namespace idaa::replication {

void ReplicationService::Attach() {
  tm_->AddCommitListener([this](const Transaction& txn) {
    Csn csn = tm_->CommitCsnOf(txn.id());
    capture_.OnCommit(txn, csn);
    if (batch_size_ > 0 && capture_.PendingCount() >= batch_size_) {
      // Replication apply itself commits a transaction; the flushing_ flag
      // keeps the listener from recursing on that commit.
      bool expected = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        expected = flushing_;
        if (!flushing_) flushing_ = true;
      }
      if (!expected) {
        (void)Flush();
        std::lock_guard<std::mutex> lock(mu_);
        flushing_ = false;
      }
    }
  });
}

void ReplicationService::RegisterTable(const std::string& normalized_name) {
  capture_.Subscribe(normalized_name);
}

void ReplicationService::UnregisterTable(const std::string& normalized_name) {
  capture_.Unsubscribe(normalized_name);
}

bool ReplicationService::IsReplicated(
    const std::string& normalized_name) const {
  return capture_.IsSubscribed(normalized_name);
}

Result<ApplyStats> ReplicationService::Flush() {
  ApplyStats total;
  size_t batch_limit = batch_size_ > 0 ? batch_size_ : 4096;
  while (true) {
    std::vector<CommittedChange> batch = capture_.Drain(batch_limit);
    if (batch.empty()) break;
    Csn batch_high = 0;
    for (const auto& cc : batch) batch_high = std::max(batch_high, cc.commit_csn);
    auto applied = worker_.ApplyBatch(batch);
    if (!applied.ok()) {
      // Apply is all-or-nothing per batch (single rolled-back txn), so the
      // drained changes must go back on the queue: an accelerator outage
      // pauses replication, it must not lose the backlog.
      capture_.Requeue(std::move(batch));
      return applied.status();
    }
    if (invalidation_listener_) {
      std::vector<std::string> tables;
      for (const auto& cc : batch) {
        if (std::find(tables.begin(), tables.end(), cc.change.table_name) ==
            tables.end()) {
          tables.push_back(cc.change.table_name);
        }
      }
      invalidation_listener_(tables);
    }
    const ApplyStats& stats = *applied;
    total.changes_applied += stats.changes_applied;
    total.inserts += stats.inserts;
    total.deletes += stats.deletes;
    total.updates += stats.updates;
    total.misses += stats.misses;
    std::lock_guard<std::mutex> lock(mu_);
    highest_applied_ = std::max(highest_applied_, batch_high);
  }
  return total;
}

Csn ReplicationService::HighestAppliedCsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return highest_applied_;
}

}  // namespace idaa::replication
