// TransactionManager: global txid/CSN authority and MVCC visibility oracle.
//
// DB2 (locking, cursor stability) and the accelerator (snapshot isolation
// via per-row createxid/deletexid, the Netezza model) share this single
// source of transaction truth — that is precisely the integration the paper
// adds for accelerator-only tables.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "txn/transaction.h"

namespace idaa {

/// Listener invoked after a transaction commits (used by replication to
/// pick up the transaction's captured changes).
using CommitListener = std::function<void(const Transaction&)>;

class TransactionManager {
 public:
  TransactionManager() = default;

  /// Start a transaction. Its snapshot is the current last-committed CSN.
  Transaction* Begin();

  /// Commit: assigns a CSN, publishes it, fires commit listeners.
  Status Commit(Transaction* txn);

  /// Abort: runs the undo log in reverse, discards captured changes.
  Status Abort(Transaction* txn);

  /// Refresh the read snapshot of a still-active transaction to "now"
  /// (used between auto-committed statements; DB2 cursor stability reads
  /// the latest committed state, not a transaction-begin snapshot).
  void RefreshSnapshot(Transaction* txn);

  /// The CSN of the most recent commit.
  Csn LastCommittedCsn() const;

  /// CSN a transaction committed at, or kInfiniteCsn if not committed.
  Csn CommitCsnOf(TxnId txn_id) const;

  /// State of a transaction id (committed ids of forgotten txns report
  /// committed via the CSN map; unknown ids report aborted).
  TxnState StateOf(TxnId txn_id) const;

  /// MVCC visibility test used by the accelerator, implementing exactly the
  /// semantics the paper requires: a row version (created by `createxid`,
  /// deleted by `deletexid` or kInvalidTxnId) is visible to a reader with
  /// id `reader` and snapshot `snapshot_csn` iff
  ///   - it was created by the reader itself, or by a transaction that
  ///     committed at csn <= snapshot_csn, and
  ///   - it was not deleted by the reader itself nor by a transaction that
  ///     committed at csn <= snapshot_csn.
  bool IsVisible(TxnId createxid, TxnId deletexid, TxnId reader,
                 Csn snapshot_csn) const;

  /// Oldest snapshot CSN any active transaction may still read (used by the
  /// groom process to decide which deleted versions are reclaimable).
  Csn OldestActiveSnapshot() const;

  /// Memoizing visibility tester for one (reader, snapshot) pair: resolves
  /// each distinct transaction id against the manager once and caches the
  /// answer, so bulk scans do not take the manager lock per row. Valid for
  /// the duration of one statement (commit state of *other* transactions
  /// observed mid-scan stays frozen at first use, which snapshot semantics
  /// permit).
  class VisibilityChecker {
   public:
    VisibilityChecker(const TransactionManager* tm, TxnId reader, Csn snapshot)
        : tm_(tm), reader_(reader), snapshot_(snapshot) {}

    bool IsVisible(TxnId createxid, TxnId deletexid) const {
      if (!Resolve(createxid)) return false;
      if (deletexid == kInvalidTxnId) return true;
      return !Resolve(deletexid);
    }

   private:
    /// True when xid's effects are in scope: own transaction, or committed
    /// at csn <= snapshot.
    bool Resolve(TxnId xid) const {
      if (xid == reader_) return true;
      auto it = cache_.find(xid);
      if (it != cache_.end()) return it->second;
      Csn csn = tm_->CommitCsnOf(xid);
      bool in_scope = csn != kInfiniteCsn && csn <= snapshot_;
      cache_.emplace(xid, in_scope);
      return in_scope;
    }

    const TransactionManager* tm_;
    TxnId reader_;
    Csn snapshot_;
    mutable std::unordered_map<TxnId, bool> cache_;
  };

  void AddCommitListener(CommitListener listener);

  /// Number of transactions currently active.
  size_t NumActive() const;

 private:
  mutable std::mutex mu_;
  TxnId next_txn_id_ = 1;
  Csn last_csn_ = 0;
  std::vector<std::unique_ptr<Transaction>> all_txns_;  // owns them
  std::unordered_map<TxnId, Transaction*> active_;
  std::unordered_map<TxnId, Csn> commit_csn_;
  std::unordered_map<TxnId, TxnState> final_state_;
  std::vector<CommitListener> listeners_;
};

}  // namespace idaa
