// LockManager: table-level S/X locking for the DB2 row engine, modelling
// DB2's cursor-stability behaviour: share locks are released at the end of
// the statement, exclusive locks are held until commit/rollback.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/result.h"
#include "txn/transaction.h"

namespace idaa {

enum class LockMode : uint8_t { kShared, kExclusive };

class LockManager {
 public:
  /// Max time a request waits for a conflicting lock before failing with
  /// kConflict (crude deadlock resolution via timeout).
  explicit LockManager(
      std::chrono::milliseconds wait_timeout = std::chrono::milliseconds(200))
      : wait_timeout_(wait_timeout) {}

  /// Acquire a lock on `table_id` for `txn_id`. Re-entrant; upgrading S->X is
  /// supported when no other holder exists.
  Status Acquire(TxnId txn_id, uint64_t table_id, LockMode mode);

  /// Release the shared locks of a transaction (end of read statement —
  /// cursor stability). Exclusive locks stay.
  void ReleaseShared(TxnId txn_id);

  /// Release everything the transaction holds (commit/abort).
  void ReleaseAll(TxnId txn_id);

  /// Locks currently held by a transaction (testing/diagnostics).
  size_t NumHeld(TxnId txn_id) const;

 private:
  struct TableLock {
    std::set<TxnId> shared_holders;
    TxnId exclusive_holder = kInvalidTxnId;
  };

  bool CanGrant(const TableLock& lock, TxnId txn_id, LockMode mode) const;

  std::chrono::milliseconds wait_timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, TableLock> locks_;
};

}  // namespace idaa
