#include "txn/transaction_manager.h"

#include <algorithm>

namespace idaa {

Transaction* TransactionManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn = std::make_unique<Transaction>(next_txn_id_++, last_csn_);
  Transaction* ptr = txn.get();
  active_[ptr->id()] = ptr;
  all_txns_.push_back(std::move(txn));
  return ptr;
}

Status TransactionManager::Commit(Transaction* txn) {
  std::vector<CommitListener> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (txn->state_ != TxnState::kActive) {
      return Status::InvalidArgument("transaction is not active");
    }
    txn->state_ = TxnState::kCommitted;
    commit_csn_[txn->id()] = ++last_csn_;
    final_state_[txn->id()] = TxnState::kCommitted;
    active_.erase(txn->id());
    listeners = listeners_;
  }
  for (const auto& listener : listeners) listener(*txn);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (txn->state_ != TxnState::kActive) {
      return Status::InvalidArgument("transaction is not active");
    }
    txn->state_ = TxnState::kAborted;
    final_state_[txn->id()] = TxnState::kAborted;
    active_.erase(txn->id());
  }
  // Run undo actions in reverse order, outside the manager lock.
  for (auto it = txn->undo_log_.rbegin(); it != txn->undo_log_.rend(); ++it) {
    (*it)();
  }
  txn->undo_log_.clear();
  txn->captured_changes_.clear();
  return Status::OK();
}

void TransactionManager::RefreshSnapshot(Transaction* txn) {
  std::lock_guard<std::mutex> lock(mu_);
  txn->snapshot_csn_ = last_csn_;
}

Csn TransactionManager::LastCommittedCsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_csn_;
}

Csn TransactionManager::CommitCsnOf(TxnId txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = commit_csn_.find(txn_id);
  return it == commit_csn_.end() ? kInfiniteCsn : it->second;
}

TxnState TransactionManager::StateOf(TxnId txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.count(txn_id)) return TxnState::kActive;
  auto it = final_state_.find(txn_id);
  return it == final_state_.end() ? TxnState::kAborted : it->second;
}

bool TransactionManager::IsVisible(TxnId createxid, TxnId deletexid,
                                   TxnId reader, Csn snapshot_csn) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Creation visibility.
  bool created_visible = false;
  if (createxid == reader) {
    created_visible = true;
  } else {
    auto it = commit_csn_.find(createxid);
    created_visible = it != commit_csn_.end() && it->second <= snapshot_csn;
  }
  if (!created_visible) return false;
  // Deletion visibility.
  if (deletexid == kInvalidTxnId) return true;
  if (deletexid == reader) return false;  // own delete hides the row
  auto it = commit_csn_.find(deletexid);
  bool delete_visible = it != commit_csn_.end() && it->second <= snapshot_csn;
  return !delete_visible;
}

Csn TransactionManager::OldestActiveSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Csn oldest = last_csn_;
  for (const auto& [id, txn] : active_) {
    oldest = std::min(oldest, txn->snapshot_csn());
  }
  return oldest;
}

void TransactionManager::AddCommitListener(CommitListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(std::move(listener));
}

size_t TransactionManager::NumActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

}  // namespace idaa
