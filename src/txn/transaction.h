// Transaction: the shared DB2/accelerator transaction context.
//
// The paper: "With AOTs, IDAA has to be aware of the DB2 transaction context
// so that correct results are guaranteed, i.e., uncommitted data
// modifications of the own transaction are handled. At the same time,
// concurrent execution of multiple queries in a single transaction are also
// supported."
//
// A transaction carries (a) its id, propagated to the accelerator with every
// delegated statement so MVCC visibility can include the transaction's own
// uncommitted rows, (b) a snapshot commit-sequence-number for snapshot
// isolation on the accelerator, (c) an undo log for the DB2 row store, and
// (d) captured changes to replicated tables for the incremental-update
// pipeline.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/row.h"

namespace idaa {

using TxnId = uint64_t;
/// Commit sequence number; monotonically increasing, assigned at commit.
using Csn = uint64_t;

inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr Csn kInfiniteCsn = UINT64_MAX;

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// A change captured on a DB2 table inside a transaction, shipped to the
/// accelerator by the replication service after commit.
struct CapturedChange {
  enum class Op : uint8_t { kInsert, kDelete, kUpdate };
  Op op = Op::kInsert;
  std::string table_name;  ///< normalized
  uint64_t rid = 0;        ///< DB2 row id
  Row row;                 ///< new image (insert/update)
  Row old_row;             ///< old image (delete/update)
};

/// One client transaction. Created by TransactionManager::Begin().
/// Not thread-safe for concurrent DML from multiple threads; concurrent
/// *queries* in one transaction are supported (read paths are const).
class Transaction {
 public:
  Transaction(TxnId id, Csn snapshot_csn)
      : id_(id), snapshot_csn_(snapshot_csn) {}

  TxnId id() const { return id_; }
  /// The CSN horizon this transaction reads at (snapshot isolation on the
  /// accelerator): rows committed with csn <= snapshot are visible.
  Csn snapshot_csn() const { return snapshot_csn_; }
  TxnState state() const { return state_; }

  bool IsActive() const { return state_ == TxnState::kActive; }

  /// Register an undo action (run in reverse order on rollback).
  void AddUndo(std::function<void()> undo);

  /// Record a change to a replicated DB2 table (for incremental update).
  void CaptureChange(CapturedChange change);

  const std::vector<CapturedChange>& captured_changes() const {
    return captured_changes_;
  }

 private:
  friend class TransactionManager;

  TxnId id_;
  Csn snapshot_csn_;
  TxnState state_ = TxnState::kActive;
  std::mutex mu_;
  std::vector<std::function<void()>> undo_log_;
  std::vector<CapturedChange> captured_changes_;
};

}  // namespace idaa
