#include "txn/transaction.h"

namespace idaa {

void Transaction::AddUndo(std::function<void()> undo) {
  std::lock_guard<std::mutex> lock(mu_);
  undo_log_.push_back(std::move(undo));
}

void Transaction::CaptureChange(CapturedChange change) {
  std::lock_guard<std::mutex> lock(mu_);
  captured_changes_.push_back(std::move(change));
}

}  // namespace idaa
