#include "txn/lock_manager.h"

#include "common/string_util.h"

namespace idaa {

bool LockManager::CanGrant(const TableLock& lock, TxnId txn_id,
                           LockMode mode) const {
  if (mode == LockMode::kShared) {
    return lock.exclusive_holder == kInvalidTxnId ||
           lock.exclusive_holder == txn_id;
  }
  // Exclusive: no other exclusive holder and no other shared holder.
  if (lock.exclusive_holder != kInvalidTxnId &&
      lock.exclusive_holder != txn_id) {
    return false;
  }
  for (TxnId holder : lock.shared_holders) {
    if (holder != txn_id) return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn_id, uint64_t table_id, LockMode mode) {
  std::unique_lock<std::mutex> guard(mu_);
  TableLock& lock = locks_[table_id];
  auto deadline = std::chrono::steady_clock::now() + wait_timeout_;
  while (!CanGrant(lock, txn_id, mode)) {
    if (cv_.wait_until(guard, deadline) == std::cv_status::timeout &&
        !CanGrant(lock, txn_id, mode)) {
      return Status::Conflict(StrFormat(
          "lock timeout: txn %llu waiting for %s lock on table %llu",
          static_cast<unsigned long long>(txn_id),
          mode == LockMode::kShared ? "S" : "X",
          static_cast<unsigned long long>(table_id)));
    }
  }
  if (mode == LockMode::kShared) {
    lock.shared_holders.insert(txn_id);
  } else {
    lock.exclusive_holder = txn_id;
    lock.shared_holders.erase(txn_id);  // upgraded
  }
  return Status::OK();
}

void LockManager::ReleaseShared(TxnId txn_id) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (auto& [table_id, lock] : locks_) {
      lock.shared_holders.erase(txn_id);
    }
  }
  cv_.notify_all();
}

void LockManager::ReleaseAll(TxnId txn_id) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (auto& [table_id, lock] : locks_) {
      lock.shared_holders.erase(txn_id);
      if (lock.exclusive_holder == txn_id) {
        lock.exclusive_holder = kInvalidTxnId;
      }
    }
  }
  cv_.notify_all();
}

size_t LockManager::NumHeld(TxnId txn_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t count = 0;
  for (const auto& [table_id, lock] : locks_) {
    if (lock.shared_holders.count(txn_id) || lock.exclusive_holder == txn_id) {
      ++count;
    }
  }
  return count;
}

}  // namespace idaa
