#include "common/csv.h"

#include <sstream>

namespace idaa {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"' && current.empty()) {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (in_quotes) {
    return Status::IoError("unterminated quoted CSV field in line: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields, char delim) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += delim;
    const std::string& f = fields[i];
    bool needs_quote = f.find(delim) != std::string::npos ||
                       f.find('"') != std::string::npos ||
                       f.find('\n') != std::string::npos;
    if (!needs_quote) {
      out += f;
      continue;
    }
    out += '"';
    for (char c : f) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  }
  return out;
}

Result<Row> CsvFieldsToRow(const std::vector<std::string>& fields,
                           const Schema& schema) {
  if (fields.size() != schema.NumColumns()) {
    return Status::IoError("CSV field count mismatch: got " +
                           std::to_string(fields.size()) + ", expected " +
                           std::to_string(schema.NumColumns()));
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].empty()) {
      row.push_back(Value::Null());
      continue;
    }
    IDAA_ASSIGN_OR_RETURN(
        Value v, Value::Varchar(fields[i]).CastTo(schema.Column(i).type));
    row.push_back(std::move(v));
  }
  return row;
}

Result<std::vector<Row>> ParseCsvDocument(const std::string& body,
                                          const Schema& schema, char delim) {
  std::vector<Row> rows;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    IDAA_ASSIGN_OR_RETURN(auto fields, ParseCsvLine(line, delim));
    IDAA_ASSIGN_OR_RETURN(Row row, CsvFieldsToRow(fields, schema));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace idaa
