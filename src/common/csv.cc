#include "common/csv.h"

namespace idaa {

Status ParseCsvFieldsInto(const std::string& record, char delim,
                          std::vector<CsvField>* out) {
  size_t used = 0;
  auto next_slot = [&]() -> CsvField* {
    if (used == out->size()) out->emplace_back();
    CsvField& f = (*out)[used++];
    f.text.clear();
    f.quoted = false;
    return &f;
  };
  CsvField* current = next_slot();
  bool in_quotes = false;
  size_t i = 0;
  // Chars are consumed a whole span at a time (up to the next structural
  // char for the current state) instead of one by one — same field texts,
  // much cheaper on long unquoted runs.
  while (i < record.size()) {
    if (in_quotes) {
      // Everything up to the next quote is literal.
      size_t q = record.find('"', i);
      if (q == std::string::npos) {
        current->text.append(record, i, record.size() - i);
        i = record.size();
        break;  // leaves in_quotes set -> unterminated error below
      }
      current->text.append(record, i, q - i);
      if (q + 1 < record.size() && record[q + 1] == '"') {
        current->text += '"';
        i = q + 2;
      } else {
        in_quotes = false;
        i = q + 1;
      }
      continue;
    }
    if (record[i] == '"' && current->text.empty() && !current->quoted) {
      // Opening quote (only legal before any field text).
      in_quotes = true;
      current->quoted = true;
      ++i;
      continue;
    }
    // Unquoted span: runs to the next delimiter ('"' past the field start
    // is a literal character).
    size_t d = record.find(delim, i);
    if (d == std::string::npos) d = record.size();
    current->text.append(record, i, d - i);
    i = d;
    if (i < record.size()) {
      current = next_slot();
      ++i;
    }
  }
  out->resize(used);
  if (in_quotes) {
    return Status::IoError("unterminated quoted CSV field in record: " +
                           record);
  }
  return Status::OK();
}

Result<std::vector<CsvField>> ParseCsvFields(const std::string& record,
                                             char delim) {
  std::vector<CsvField> fields;
  IDAA_RETURN_IF_ERROR(ParseCsvFieldsInto(record, delim, &fields));
  return fields;
}

Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim) {
  IDAA_ASSIGN_OR_RETURN(std::vector<CsvField> fields,
                        ParseCsvFields(line, delim));
  std::vector<std::string> out;
  out.reserve(fields.size());
  for (CsvField& f : fields) out.push_back(std::move(f.text));
  return out;
}

namespace {

void AppendCsvField(const std::string& f, bool force_quote, char delim,
                    std::string* out) {
  bool needs_quote = force_quote || f.find(delim) != std::string::npos ||
                     f.find('"') != std::string::npos ||
                     f.find('\n') != std::string::npos ||
                     f.find('\r') != std::string::npos;
  if (!needs_quote) {
    *out += f;
    return;
  }
  *out += '"';
  for (char c : f) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

std::string FormatCsvLine(const std::vector<std::string>& fields, char delim) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += delim;
    AppendCsvField(fields[i], /*force_quote=*/false, delim, &out);
  }
  return out;
}

std::string FormatCsvRow(const Row& row, char delim) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += delim;
    const Value& v = row[i];
    if (v.is_null()) continue;  // NULL = empty unquoted field
    std::string text = v.ToString();
    // "" distinguishes the empty string from NULL.
    AppendCsvField(text, /*force_quote=*/text.empty(), delim, &out);
  }
  return out;
}

Result<Row> QuotedCsvFieldsToRow(const std::vector<CsvField>& fields,
                           const Schema& schema) {
  if (fields.size() != schema.NumColumns()) {
    return Status::IoError("CSV field count mismatch: got " +
                           std::to_string(fields.size()) + ", expected " +
                           std::to_string(schema.NumColumns()));
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].text.empty() && !fields[i].quoted) {
      row.push_back(Value::Null());
      continue;
    }
    IDAA_ASSIGN_OR_RETURN(
        Value v, Value::Varchar(fields[i].text).CastTo(schema.Column(i).type));
    row.push_back(std::move(v));
  }
  return row;
}

Result<Row> CsvFieldsToRow(const std::vector<std::string>& fields,
                           const Schema& schema) {
  std::vector<CsvField> wrapped;
  wrapped.reserve(fields.size());
  for (const std::string& f : fields) wrapped.push_back({f, false});
  return QuotedCsvFieldsToRow(wrapped, schema);
}

Result<std::optional<std::string>> CsvRecordScanner::Next() {
  const std::string& body = *body_;
  while (pos_ < body.size()) {
    size_t start = pos_;
    bool in_quotes = false;
    size_t end = std::string::npos;
    size_t i = pos_;
    // Jump between structural chars instead of walking every byte: outside
    // quotes only '\n' and '"' matter (a quote opens a field only directly
    // after the record start or a delimiter; elsewhere it is literal), and
    // inside quotes only the next '"'.
    while (i < body.size()) {
      if (in_quotes) {
        size_t q = body.find('"', i);
        if (q == std::string::npos) {
          i = body.size();
          break;  // unterminated; error below
        }
        if (q + 1 < body.size() && body[q + 1] == '"') {
          i = q + 2;  // doubled quote, stay in quotes
          continue;
        }
        in_quotes = false;
        i = q + 1;
        continue;
      }
      // memchr-backed finds; the next-quote position is cached across
      // records (scan positions only move forward) so quote-free bodies
      // pay one linear pass, not one find per record.
      if (!quote_valid_ || (next_quote_ != std::string::npos &&
                            next_quote_ < i)) {
        next_quote_ = body.find('"', i);
        quote_valid_ = true;
      }
      size_t nl = body.find('\n', i);
      if (next_quote_ == std::string::npos ||
          (nl != std::string::npos && nl < next_quote_)) {
        end = nl;  // may be npos: record runs to end of input
        break;
      }
      size_t q = next_quote_;
      if (q == start || body[q - 1] == delim_) in_quotes = true;
      i = q + 1;
    }
    if (in_quotes) {
      return Status::IoError("unterminated quoted CSV field at end of input");
    }
    std::string record;
    if (end == std::string::npos) {
      record = body.substr(start);
      pos_ = body.size();
    } else {
      record = body.substr(start, end - start);
      pos_ = end + 1;
    }
    // CRLF: the CR belongs to the line terminator, not the record.
    if (!record.empty() && record.back() == '\r') record.pop_back();
    if (record.empty()) continue;  // skip blank records
    return std::optional<std::string>(std::move(record));
  }
  return std::optional<std::string>();
}

Result<std::vector<Row>> ParseCsvDocument(const std::string& body,
                                          const Schema& schema, char delim) {
  std::vector<Row> rows;
  CsvRecordScanner scanner(&body, delim);
  while (true) {
    IDAA_ASSIGN_OR_RETURN(std::optional<std::string> record, scanner.Next());
    if (!record.has_value()) break;
    IDAA_ASSIGN_OR_RETURN(auto fields, ParseCsvFields(*record, delim));
    IDAA_ASSIGN_OR_RETURN(Row row, QuotedCsvFieldsToRow(fields, schema));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace idaa
