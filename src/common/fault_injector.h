// FaultInjector: deterministic, scriptable boundary faults. Tests and
// benches arm per-site fault specs (probability, error code, added latency)
// and the transfer channel / accelerator entry points consult the injector
// on every crossing. Seeded, so a failing run replays exactly.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace idaa {

/// Well-known fault sites. Accelerator entry points use "accel.<NAME>"
/// (see FaultInjector::AcceleratorSite).
namespace fault_site {
inline constexpr const char* kChannelToAccel = "channel.to_accel";
inline constexpr const char* kChannelFromAccel = "channel.from_accel";
inline constexpr const char* kChannelStatement = "channel.statement";
}  // namespace fault_site

/// What to inject at a site when armed.
struct FaultSpec {
  /// Chance each crossing fails, in [0, 1].
  double probability = 0.0;
  /// Error code of the injected failure (must be retryable to model a
  /// transient fault; terminal codes are allowed for targeted tests).
  StatusCode code = StatusCode::kChannelError;
  /// Extra latency added to every crossing at the site, even when the
  /// crossing succeeds — models a slow link.
  uint64_t latency_us = 0;
  /// Stop failing after this many injected failures (0 = unlimited).
  /// Lets tests script "fails twice, then recovers".
  uint64_t max_failures = 0;
};

/// Thread-safe, seeded fault injector. Disarmed sites cost one mutex
/// acquisition per crossing; the hot path carries no injector when the
/// pointer wired into the channel/accelerator is null.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  /// Site name for an accelerator's entry points: "accel.<name>".
  static std::string AcceleratorSite(const std::string& accel_name) {
    return "accel." + accel_name;
  }

  /// Arm (or re-arm) a site with `spec`. Resets the site's failure count.
  void Arm(const std::string& site, const FaultSpec& spec);

  /// Arm all three transfer-channel sites with the same spec.
  void ArmChannel(const FaultSpec& spec);

  /// Stop injecting at `site` (keeps its injected-failure count).
  void Disarm(const std::string& site);

  /// Disarm every site and zero all counts.
  void Reset();

  /// Called by instrumented code at each crossing: sleeps the armed
  /// latency, then fails with the armed code with the armed probability.
  Status MaybeFail(const std::string& site);

  /// Failures injected at `site` since it was last armed.
  uint64_t InjectedCount(const std::string& site) const;

  /// Failures injected across all sites since construction/Reset.
  uint64_t TotalInjected() const;

 private:
  struct Site {
    FaultSpec spec;
    uint64_t injected = 0;
  };

  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, Site> sites_;
  uint64_t total_injected_ = 0;
};

}  // namespace idaa
