#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace idaa {

RetryOutcome RetryWithBackoff(const RetryPolicy& policy, TraceContext tc,
                              const std::function<Status()>& attempt) {
  const uint64_t start_ns = TraceNowNs();
  const uint64_t deadline_ns =
      policy.deadline_us == 0 ? 0 : start_ns + policy.deadline_us * 1000;
  uint64_t backoff_us = policy.initial_backoff_us;
  RetryOutcome out;
  const int max_attempts = std::max(policy.max_attempts, 1);
  for (int attempt_no = 1;; ++attempt_no) {
    out.status = attempt();
    if (out.status.ok() || !out.status.retryable()) return out;
    // kUnavailable means the target is known-down; retrying locally will
    // not bring it back. Return so the caller can fail back immediately.
    if (out.status.code() == StatusCode::kUnavailable) return out;
    if (attempt_no >= max_attempts) return out;
    uint64_t sleep_us = std::min(backoff_us, policy.max_backoff_us);
    if (deadline_ns != 0) {
      const uint64_t now_ns = TraceNowNs();
      if (now_ns + sleep_us * 1000 >= deadline_ns) {
        out.status = Status::Timeout(
            "retry deadline exceeded after " + std::to_string(attempt_no) +
            " attempt(s): " + out.status.ToString());
        return out;
      }
    }
    {
      TraceSpan span(tc, "retry");
      span.Attr("attempt", static_cast<uint64_t>(attempt_no));
      span.Attr("backoff_us", sleep_us);
      span.Attr("error", out.status.ToString());
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
    }
    ++out.retries;
    backoff_us = static_cast<uint64_t>(
        static_cast<double>(backoff_us) * policy.backoff_multiplier);
    if (backoff_us > policy.max_backoff_us) backoff_us = policy.max_backoff_us;
  }
}

}  // namespace idaa
