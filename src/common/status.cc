#include "common/status.h"

namespace idaa {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kNotAuthorized:
      return "NotAuthorized";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kChannelError:
      return "ChannelError";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kChannelError || code == StatusCode::kTimeout;
}

bool Status::retryable() const { return IsRetryableCode(code_); }

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace idaa
