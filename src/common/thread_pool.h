// Fixed-size thread pool used by the accelerator for data-slice parallelism
// and by the loader for parallel ingest.

#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace idaa {

/// Simple fixed-size worker pool. Submit() returns a future; ParallelFor()
/// blocks until all shards complete.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Morsel-driven scheduling: `workers` pullers (clamped to [1, n]) each
  /// draw the next index from a shared atomic cursor until [0, n) is
  /// drained, then blocks until every index completed. A puller finishing
  /// a cheap index immediately takes the next, so skewed per-index costs
  /// no longer bound wall-clock the way one-task-per-shard fan-out does.
  /// fn(worker, index): `worker` < min(workers, n) lets callers keep
  /// per-worker state (partial aggregates, scratch buffers) lock-free.
  void ParallelForDynamic(size_t n, size_t workers,
                          const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace idaa
