#include "common/metrics.h"

#include "common/string_util.h"

namespace idaa {

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

uint64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::string MetricsRegistry::ToString() const {
  std::string out;
  for (const auto& [name, value] : Snapshot()) {
    out += StrFormat("%-40s = %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  return out;
}

uint64_t MetricsDelta::Delta(const std::string& name) const {
  uint64_t before = 0;
  for (const auto& [n, v] : base_) {
    if (n == name) {
      before = v;
      break;
    }
  }
  uint64_t now = registry_.Get(name);
  return now >= before ? now - before : 0;
}

}  // namespace idaa
