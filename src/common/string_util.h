// Small string helpers shared across modules.

#pragma once

#include <string>
#include <vector>

namespace idaa {

/// ASCII upper-case copy.
std::string ToUpper(const std::string& s);

/// ASCII lower-case copy.
std::string ToLower(const std::string& s);

/// Trim ASCII whitespace on both ends.
std::string Trim(const std::string& s);

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// SQL LIKE match with % (any run) and _ (any single char), case sensitive.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace idaa
