#include "common/value.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/string_util.h"

namespace idaa {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kVarchar:
      return "VARCHAR";
    case DataType::kDate:
      return "DATE";
    case DataType::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromString(const std::string& name) {
  std::string upper = ToUpper(name);
  if (upper == "BOOLEAN" || upper == "BOOL") return DataType::kBoolean;
  if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT" ||
      upper == "SMALLINT") {
    return DataType::kInteger;
  }
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL" ||
      upper == "DECFLOAT") {
    return DataType::kDouble;
  }
  if (upper == "VARCHAR" || upper == "CHAR" || upper == "STRING" ||
      upper == "TEXT") {
    return DataType::kVarchar;
  }
  if (upper == "DATE") return DataType::kDate;
  if (upper == "TIMESTAMP") return DataType::kTimestamp;
  return Status::InvalidArgument("unknown data type: " + name);
}

bool IsNumeric(DataType type) {
  switch (type) {
    case DataType::kInteger:
    case DataType::kDouble:
    case DataType::kDate:
    case DataType::kTimestamp:
      return true;
    default:
      return false;
  }
}

Result<double> Value::ToDouble() const {
  if (is_integer()) return static_cast<double>(AsInteger());
  if (is_double()) return AsDouble();
  if (is_boolean()) return AsBoolean() ? 1.0 : 0.0;
  if (is_date()) return static_cast<double>(AsDate());
  if (is_timestamp()) return static_cast<double>(AsTimestamp());
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

Result<DataType> Value::Type() const {
  if (is_null()) return Status::InvalidArgument("NULL has no dynamic type");
  if (is_boolean()) return DataType::kBoolean;
  if (is_integer()) return DataType::kInteger;
  if (is_double()) return DataType::kDouble;
  if (is_varchar()) return DataType::kVarchar;
  if (is_date()) return DataType::kDate;
  return DataType::kTimestamp;
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  switch (target) {
    case DataType::kBoolean:
      if (is_boolean()) return *this;
      if (is_integer()) return Value::Boolean(AsInteger() != 0);
      break;
    case DataType::kInteger: {
      if (is_integer()) return *this;
      if (is_double()) {
        return Value::Integer(static_cast<int64_t>(std::llround(AsDouble())));
      }
      if (is_boolean()) return Value::Integer(AsBoolean() ? 1 : 0);
      if (is_date()) return Value::Integer(AsDate());
      if (is_timestamp()) return Value::Integer(AsTimestamp());
      if (is_varchar()) {
        const std::string& s = AsVarchar();
        int64_t out = 0;
        auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
        if (ec == std::errc() && ptr == s.data() + s.size()) {
          return Value::Integer(out);
        }
        return Status::InvalidArgument("cannot cast '" + s + "' to INTEGER");
      }
      break;
    }
    case DataType::kDouble: {
      if (is_double()) return *this;
      if (is_integer()) return Value::Double(static_cast<double>(AsInteger()));
      if (is_boolean()) return Value::Double(AsBoolean() ? 1.0 : 0.0);
      if (is_date()) return Value::Double(static_cast<double>(AsDate()));
      if (is_timestamp()) {
        return Value::Double(static_cast<double>(AsTimestamp()));
      }
      if (is_varchar()) {
        const std::string& s = AsVarchar();
        try {
          size_t pos = 0;
          double out = std::stod(s, &pos);
          if (pos == s.size()) return Value::Double(out);
        } catch (...) {
          // fall through to the error below
        }
        return Status::InvalidArgument("cannot cast '" + s + "' to DOUBLE");
      }
      break;
    }
    case DataType::kVarchar:
      if (is_varchar()) return *this;
      return Value::Varchar(ToString());
    case DataType::kDate: {
      if (is_date()) return *this;
      if (is_integer()) {
        return Value::Date(static_cast<int32_t>(AsInteger()));
      }
      if (is_varchar()) {
        IDAA_ASSIGN_OR_RETURN(int32_t days, ParseDate(AsVarchar()));
        return Value::Date(days);
      }
      if (is_timestamp()) {
        return Value::Date(static_cast<int32_t>(AsTimestamp() / 86'400'000'000LL));
      }
      break;
    }
    case DataType::kTimestamp:
      if (is_timestamp()) return *this;
      if (is_integer()) return Value::Timestamp(AsInteger());
      if (is_date()) {
        return Value::Timestamp(static_cast<int64_t>(AsDate()) *
                                86'400'000'000LL);
      }
      break;
  }
  return Status::InvalidArgument("cannot cast " + ToString() + " to " +
                                 DataTypeToString(target));
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  return data_ < other.data_;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::InvalidArgument("NULL is not comparable");
  }
  // Numeric cross-type comparison via double.
  if (!is_varchar() && !other.is_varchar() && !is_boolean() &&
      !other.is_boolean()) {
    // Exact path for same-kind integers to avoid double rounding.
    if (is_integer() && other.is_integer()) {
      int64_t a = AsInteger(), b = other.AsInteger();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    IDAA_ASSIGN_OR_RETURN(double a, ToDouble());
    IDAA_ASSIGN_OR_RETURN(double b, other.ToDouble());
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_varchar() && other.is_varchar()) {
    int c = AsVarchar().compare(other.AsVarchar());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_boolean() && other.is_boolean()) {
    int a = AsBoolean() ? 1 : 0, b = other.AsBoolean() ? 1 : 0;
    return a - b;
  }
  return Status::InvalidArgument("incomparable values: " + ToString() + " vs " +
                                 other.ToString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_boolean()) return AsBoolean() ? "TRUE" : "FALSE";
  if (is_integer()) return std::to_string(AsInteger());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
    return buf;
  }
  if (is_varchar()) return AsVarchar();
  if (is_date()) return FormatDate(AsDate());
  return std::to_string(AsTimestamp());
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_boolean()) return 1;
  if (is_integer() || is_double() || is_timestamp()) return 8;
  if (is_date()) return 4;
  return AsVarchar().size() + 4;  // length prefix
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  std::hash<int64_t> hi;
  std::hash<double> hd;
  std::hash<std::string> hs;
  if (is_boolean()) return hi(AsBoolean() ? 1 : 0) ^ 0x1;
  if (is_integer()) return hi(AsInteger());
  if (is_double()) return hd(AsDouble());
  if (is_varchar()) return hs(AsVarchar());
  if (is_date()) return hi(AsDate()) ^ 0x5;
  return hi(AsTimestamp()) ^ 0x6;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

const int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

}  // namespace

Result<int32_t> ParseDate(const std::string& text) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &year, &month, &day) != 3) {
    return Status::InvalidArgument("invalid date literal: '" + text +
                                   "' (expected YYYY-MM-DD)");
  }
  if (month < 1 || month > 12 || day < 1) {
    return Status::InvalidArgument("invalid date literal: '" + text + "'");
  }
  int max_day = kDaysInMonth[month - 1] + (month == 2 && IsLeapYear(year));
  if (day > max_day) {
    return Status::InvalidArgument("invalid date literal: '" + text + "'");
  }
  // Days since 1970-01-01 (valid for years >= 1 with the proleptic calendar).
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += IsLeapYear(y) ? 366 : 365;
  } else {
    for (int y = year; y < 1970; ++y) days -= IsLeapYear(y) ? 366 : 365;
  }
  for (int m = 1; m < month; ++m) {
    days += kDaysInMonth[m - 1] + (m == 2 && IsLeapYear(year));
  }
  days += day - 1;
  return static_cast<int32_t>(days);
}

std::string FormatDate(int32_t days) {
  int year = 1970;
  int64_t remaining = days;
  while (remaining < 0) {
    --year;
    remaining += IsLeapYear(year) ? 366 : 365;
  }
  while (true) {
    int in_year = IsLeapYear(year) ? 366 : 365;
    if (remaining < in_year) break;
    remaining -= in_year;
    ++year;
  }
  int month = 1;
  while (true) {
    int in_month = kDaysInMonth[month - 1] + (month == 2 && IsLeapYear(year));
    if (remaining < in_month) break;
    remaining -= in_month;
    ++month;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month,
                static_cast<int>(remaining) + 1);
  return buf;
}

}  // namespace idaa
