// DataType and Value: the scalar type system shared by the DB2 row engine
// and the accelerator column engine.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace idaa {

/// SQL column types in the implemented subset.
enum class DataType : uint8_t {
  kBoolean = 0,
  kInteger,    ///< 64-bit signed integer (covers SMALLINT/INT/BIGINT).
  kDouble,     ///< 64-bit IEEE float (covers REAL/DOUBLE/DECFLOAT).
  kVarchar,    ///< Variable-length UTF-8 string.
  kDate,       ///< Days since 1970-01-01, stored as int32.
  kTimestamp,  ///< Microseconds since 1970-01-01T00:00:00Z, stored as int64.
};

/// "INTEGER", "VARCHAR", ... (SQL spelling).
const char* DataTypeToString(DataType type);

/// Parse a SQL type name ("INT", "BIGINT", "VARCHAR", "DOUBLE", ...).
Result<DataType> DataTypeFromString(const std::string& name);

/// True if the type is INTEGER, DOUBLE, DATE or TIMESTAMP (orderable numerics).
bool IsNumeric(DataType type);

/// A single SQL scalar value, possibly NULL. NULL values remember no type;
/// typing is carried by the enclosing Schema.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool v) { return Value(Payload(v)); }
  static Value Integer(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value Varchar(std::string v) { return Value(Payload(std::move(v))); }
  static Value Date(int32_t days) { return Value(Payload(DateRep{days})); }
  static Value Timestamp(int64_t micros) {
    return Value(Payload(TimestampRep{micros}));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_boolean() const { return std::holds_alternative<bool>(data_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_varchar() const { return std::holds_alternative<std::string>(data_); }
  bool is_date() const { return std::holds_alternative<DateRep>(data_); }
  bool is_timestamp() const {
    return std::holds_alternative<TimestampRep>(data_);
  }

  bool AsBoolean() const { return std::get<bool>(data_); }
  int64_t AsInteger() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsVarchar() const { return std::get<std::string>(data_); }
  int32_t AsDate() const { return std::get<DateRep>(data_).days; }
  int64_t AsTimestamp() const { return std::get<TimestampRep>(data_).micros; }

  /// Numeric view: INTEGER/DOUBLE/DATE/TIMESTAMP/BOOLEAN as double.
  /// Returns error for VARCHAR/NULL.
  Result<double> ToDouble() const;

  /// The dynamic type of a non-null value; error for NULL.
  Result<DataType> Type() const;

  /// Lossless-where-possible coercion to `target`. INTEGER<->DOUBLE,
  /// anything->VARCHAR (formatting), VARCHAR->numeric (parsing). NULL stays
  /// NULL. Errors on non-convertible input.
  Result<Value> CastTo(DataType target) const;

  /// Three-valued-logic equality on the SQL level is handled by the
  /// expression evaluator; this operator is *storage* equality where
  /// NULL == NULL (used by containers/tests).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total storage order: NULL first, then by type index, then by value
  /// (used for ORDER BY and zone maps; SQL comparisons use Compare()).
  bool operator<(const Value& other) const;

  /// SQL comparison of two non-null values of compatible types:
  /// -1, 0, +1. Error if either is NULL or types are incomparable.
  Result<int> Compare(const Value& other) const;

  /// Display string: "NULL", "42", "3.5", "'abc'"-less raw text.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes; used for transfer metering.
  size_t ByteSize() const;

  /// Stable hash, for hash joins / group by / distribution. NULLs hash equal.
  size_t Hash() const;

 private:
  struct DateRep {
    int32_t days;
    bool operator==(const DateRep&) const = default;
    auto operator<=>(const DateRep&) const = default;
  };
  struct TimestampRep {
    int64_t micros;
    bool operator==(const TimestampRep&) const = default;
    auto operator<=>(const TimestampRep&) const = default;
  };
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string, DateRep, TimestampRep>;

  explicit Value(Payload payload) : data_(std::move(payload)) {}

  Payload data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Parse "YYYY-MM-DD" into days since epoch.
Result<int32_t> ParseDate(const std::string& text);

/// Format days since epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

}  // namespace idaa
