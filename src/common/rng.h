// Deterministic random generation for workloads. All randomness in the
// library flows through Rng so experiments are reproducible.

#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace idaa {

/// Seeded PRNG with the distributions the workload generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal scaled: mean + stddev * N(0,1).
  double Gaussian(double mean, double stddev);

  /// Bernoulli with probability p.
  bool Bernoulli(double p);

  /// Random lowercase ASCII string of length `len`.
  std::string RandomString(size_t len);

  /// Pick a uniformly random element index for a container of size n.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1)); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed integers over [1, n] with skew s (s=0 -> uniform).
/// Uses the classic rejection-inversion-free CDF table (n is expected to be
/// modest, <= a few million).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double skew, uint64_t seed = 42);

  /// Next sample in [1, n].
  uint64_t Next();

 private:
  std::mt19937_64 engine_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace idaa
