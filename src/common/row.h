// Row and ResultSet: tuple representation and query results.

#pragma once

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace idaa {

/// A tuple. Position i corresponds to Schema column i.
using Row = std::vector<Value>;

/// Approximate serialized size of a row (used for transfer metering).
size_t RowByteSize(const Row& row);

/// Cast every value in `row` to the column types of `schema` (e.g. INTEGER
/// literal into a DOUBLE column). Errors on non-castable values.
Result<Row> CoerceRowToSchema(const Row& row, const Schema& schema);

/// Materialized query result: a schema plus rows, as returned to clients by
/// both the DB2 engine and the accelerator.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(Schema schema) : schema_(std::move(schema)) {}
  ResultSet(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  void Append(Row row) { rows_.push_back(std::move(row)); }

  /// Total byte size of all rows (payload only).
  size_t ByteSize() const;

  /// Value at (row, col) — bounds-checked in debug builds only.
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  /// Render as an aligned text table (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace idaa
