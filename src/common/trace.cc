#include "common/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "common/string_util.h"

namespace idaa {

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// QueryTrace
// ---------------------------------------------------------------------------

size_t QueryTrace::BeginSpan(const std::string& name, size_t parent) {
  uint64_t now = TraceNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = name;
  span.parent = parent < spans_.size() ? parent : kNoParent;
  span.start_ns = now;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void QueryTrace::EndSpan(size_t id) {
  uint64_t now = TraceNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size() || !spans_[id].open) return;
  spans_[id].open = false;
  spans_[id].duration_ns = now >= spans_[id].start_ns
                               ? now - spans_[id].start_ns
                               : 0;
}

void QueryTrace::SetAttribute(size_t id, const std::string& key,
                              std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  for (auto& [k, v] : spans_[id].attributes) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  spans_[id].attributes.emplace_back(key, std::move(value));
}

void QueryTrace::SetAttribute(size_t id, const std::string& key,
                              uint64_t value) {
  SetAttribute(id, key, std::to_string(value));
}

void QueryTrace::AddBoundaryBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  boundary_bytes_ += bytes;
}

uint64_t QueryTrace::boundary_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return boundary_bytes_;
}

size_t QueryTrace::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<QueryTrace::Span> QueryTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

uint64_t QueryTrace::SpanDurationNs(size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return 0;
  const Span& span = spans_[id];
  // A still-open span reports its elapsed time so far.
  return span.open ? TraceNowNs() - span.start_ns : span.duration_ns;
}

std::vector<QueryTrace::RenderedSpan> QueryTrace::RenderRows() const {
  std::vector<Span> spans = Snapshot();
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == kNoParent) {
      roots.push_back(i);
    } else {
      children[spans[i].parent].push_back(i);
    }
  }
  std::vector<RenderedSpan> out;
  out.reserve(spans.size());
  // Iterative pre-order DFS; a stack of (span, depth), children pushed in
  // reverse so they pop in creation order.
  std::vector<std::pair<size_t, size_t>> stack;
  for (size_t r = roots.size(); r-- > 0;) stack.emplace_back(roots[r], 0);
  while (!stack.empty()) {
    auto [i, depth] = stack.back();
    stack.pop_back();
    RenderedSpan row;
    row.depth = depth;
    row.name = spans[i].name;
    row.duration_us = spans[i].duration_ns / 1000;
    std::string attrs;
    for (const auto& [k, v] : spans[i].attributes) {
      if (!attrs.empty()) attrs += " ";
      attrs += k + "=" + v;
    }
    row.attributes = std::move(attrs);
    out.push_back(std::move(row));
    for (size_t c = children[i].size(); c-- > 0;) {
      stack.emplace_back(children[i][c], depth + 1);
    }
  }
  return out;
}

std::string QueryTrace::Render() const {
  std::string out;
  for (const RenderedSpan& row : RenderRows()) {
    out.append(row.depth * 2, ' ');
    out += row.name;
    out += StrFormat("  %lluus", static_cast<unsigned long long>(row.duration_us));
    if (!row.attributes.empty()) out += "  [" + row.attributes + "]";
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TraceSpan::TraceSpan(QueryTrace* trace, const std::string& name, size_t parent)
    : trace_(trace) {
  if (trace_ != nullptr) id_ = trace_->BeginSpan(name, parent);
}

void TraceSpan::End() {
  if (trace_ != nullptr && !ended_) trace_->EndSpan(id_);
  ended_ = true;
}

void TraceSpan::Attr(const std::string& key, std::string value) {
  if (trace_ != nullptr) trace_->SetAttribute(id_, key, std::move(value));
}

void TraceSpan::Attr(const std::string& key, uint64_t value) {
  if (trace_ != nullptr) trace_->SetAttribute(id_, key, value);
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

size_t LatencyHistogram::BucketOf(uint64_t value) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  return static_cast<size_t>(std::bit_width(value));
}

void LatencyHistogram::Record(uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[BucketOf(value)] += 1;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

size_t LatencyHistogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t LatencyHistogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

uint64_t LatencyHistogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

uint64_t LatencyHistogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double LatencyHistogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample (1-based, nearest-rank method).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += counts_[b];
    if (cumulative >= rank) {
      // Bucket upper bound, clamped into the observed range so single
      // samples and extremes report exactly.
      uint64_t upper = b == 0 ? 0
                      : b >= 64
                          ? UINT64_MAX
                          : (uint64_t{1} << b) - 1;
      return std::clamp(upper, min_, max_);
    }
  }
  return max_;
}

void LatencyHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string LatencyHistogram::ToString() const {
  return StrFormat(
      "count=%llu min=%llu p50=%llu p95=%llu p99=%llu max=%llu mean=%.1f",
      static_cast<unsigned long long>(Count()),
      static_cast<unsigned long long>(Min()),
      static_cast<unsigned long long>(P50()),
      static_cast<unsigned long long>(P95()),
      static_cast<unsigned long long>(P99()),
      static_cast<unsigned long long>(Max()), Mean());
}

// ---------------------------------------------------------------------------
// HistogramRegistry
// ---------------------------------------------------------------------------

LatencyHistogram& HistogramRegistry::GetOrCreate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::vector<std::pair<std::string, HistogramRegistry::Summary>>
HistogramRegistry::Snapshot() const {
  std::vector<std::pair<std::string, const LatencyHistogram*>> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      items.emplace_back(name, histogram.get());
    }
  }
  std::vector<std::pair<std::string, Summary>> out;
  out.reserve(items.size());
  for (const auto& [name, histogram] : items) {
    Summary s;
    s.count = histogram->Count();
    s.min = histogram->Min();
    s.max = histogram->Max();
    s.p50 = histogram->P50();
    s.p95 = histogram->P95();
    s.p99 = histogram->P99();
    s.mean = histogram->Mean();
    out.emplace_back(name, s);
  }
  return out;
}

std::string HistogramRegistry::ToString() const {
  std::string out;
  for (const auto& [name, s] : Snapshot()) {
    out += StrFormat(
        "%-40s = count=%llu min=%llu p50=%llu p95=%llu p99=%llu max=%llu "
        "mean=%.1f\n",
        name.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.min),
        static_cast<unsigned long long>(s.p50),
        static_cast<unsigned long long>(s.p95),
        static_cast<unsigned long long>(s.p99),
        static_cast<unsigned long long>(s.max), s.mean);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SlowQueryLog
// ---------------------------------------------------------------------------

void SlowQueryLog::set_threshold_us(uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_us_ = us;
  enabled_ = true;
}

uint64_t SlowQueryLog::threshold_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_us_;
}

bool SlowQueryLog::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void SlowQueryLog::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (entries_.size() > capacity_) entries_.pop_front();
}

bool SlowQueryLog::MaybeRecord(const std::string& sql, uint64_t duration_us,
                               uint64_t boundary_bytes, std::string trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || duration_us < threshold_us_) return false;
  Entry entry;
  entry.sql = sql;
  entry.duration_us = duration_us;
  entry.boundary_bytes = boundary_bytes;
  entry.trace = std::move(trace);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
  return true;
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

size_t SlowQueryLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace idaa
