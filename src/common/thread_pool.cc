#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace idaa {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::ParallelForDynamic(
    size_t n, size_t workers, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  workers = std::max<size_t>(1, std::min(workers, n));
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(Submit([cursor, n, w, &fn] {
      while (true) {
        size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(w, i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace idaa
