// Status: error model used across the library (Arrow/RocksDB idiom).
// No exceptions cross public API boundaries; fallible functions return
// Status or Result<T> (see common/result.h).

#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace idaa {

/// Error categories surfaced by the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< Catalog object, row, or resource does not exist.
  kAlreadyExists,     ///< Object with that name/id already exists.
  kSyntaxError,       ///< SQL text failed to lex/parse.
  kSemanticError,     ///< SQL bound against the catalog is invalid.
  kNotAuthorized,     ///< Governance: privilege check failed.
  kNotSupported,      ///< Valid request outside the implemented subset.
  kConflict,          ///< Lock conflict / write-write conflict / deadlock.
  kConstraintViolation,  ///< NOT NULL or type constraint violated.
  kInternal,          ///< Invariant broken inside the library.
  kIoError,           ///< File/CSV level failure.
  // -- retryable (transient) codes: boundary faults the federation layer
  //    may retry with backoff and, for reads on accelerated tables, fail
  //    back to DB2 (see IsRetryableCode).
  kUnavailable,   ///< Accelerator offline/recovering or breaker open.
  kChannelError,  ///< Transient DB2 <-> accelerator transfer failure.
  kTimeout,       ///< Deadline exceeded (usually while retrying).
};

/// Human-readable name of a StatusCode (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// True for codes representing transient faults at the DB2/accelerator
/// boundary. The federation layer may retry these with backoff; under
/// ENABLE WITH FAILBACK a read on an accelerated table re-executes on DB2.
bool IsRetryableCode(StatusCode code);

/// Result of a fallible operation: a code plus a context message.
/// Cheap to copy in the OK case (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status NotAuthorized(std::string msg) {
    return Status(StatusCode::kNotAuthorized, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ChannelError(std::string msg) {
    return Status(StatusCode::kChannelError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsNotAuthorized() const { return code_ == StatusCode::kNotAuthorized; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  /// True for transient boundary faults (kUnavailable, kChannelError,
  /// kTimeout) that a caller may retry or fail back to DB2.
  bool retryable() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagate a non-OK Status to the caller.
#define IDAA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::idaa::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace idaa
