#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace idaa {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::string Rng::RandomString(size_t len) {
  std::string out(len, 'a');
  for (char& c : out) {
    c = static_cast<char>('a' + Uniform(0, 25));
  }
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double skew, uint64_t seed)
    : engine_(seed), cdf_(n) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), skew);
  }
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), skew) / sum;
    cdf_[i - 1] = acc;
  }
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

uint64_t ZipfGenerator::Next() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  double u = dist(engine_);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace idaa
