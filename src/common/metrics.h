// MetricsRegistry: named monotonic counters used to meter data movement
// between DB2 and the accelerator — the quantity the paper's AOT design
// minimizes. Every byte crossing the federation boundary, every replicated
// change and every loaded record increments a counter here.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace idaa {

/// Well-known counter names (modules may add their own).
namespace metric {
inline constexpr const char* kFederationBytesToAccel = "federation.bytes_to_accel";
inline constexpr const char* kFederationBytesFromAccel =
    "federation.bytes_from_accel";
inline constexpr const char* kFederationRoundTrips = "federation.round_trips";
inline constexpr const char* kReplicationBytesApplied =
    "replication.bytes_applied";
inline constexpr const char* kReplicationChangesApplied =
    "replication.changes_applied";
inline constexpr const char* kReplicationBatches = "replication.batches";
inline constexpr const char* kLoaderBytesIngested = "loader.bytes_ingested";
inline constexpr const char* kLoaderRowsIngested = "loader.rows_ingested";
inline constexpr const char* kLoaderRowsRejected = "loader.rows_rejected";
inline constexpr const char* kLoaderBatchesCommitted =
    "loader.batches_committed";
inline constexpr const char* kLoaderRetries = "loader.retries";
inline constexpr const char* kDb2RowsMaterialized = "db2.rows_materialized";
inline constexpr const char* kDb2BytesMaterialized = "db2.bytes_materialized";
inline constexpr const char* kAccelRowsScanned = "accel.rows_scanned";
inline constexpr const char* kAccelRowsSkippedZoneMap =
    "accel.rows_skipped_zone_map";
// Rows whose predicate was evaluated directly on an encoded zone (RLE /
// frame-of-reference) vs. rows that needed a scratch decode first.
inline constexpr const char* kAccelRowsEncodedEval =
    "accel.rows_encoded_eval";
inline constexpr const char* kAccelRowsDecodeFallback =
    "accel.rows_decode_fallback";
inline constexpr const char* kDb2RowsScanned = "db2.rows_scanned";
inline constexpr const char* kGovernanceChecks = "governance.checks";
inline constexpr const char* kQueriesRoutedToAccel = "router.queries_to_accel";
inline constexpr const char* kQueriesRoutedToDb2 = "router.queries_to_db2";
inline constexpr const char* kFederationRetries = "federation.retries";
inline constexpr const char* kFederationFailbacks = "federation.failbacks";
inline constexpr const char* kBreakerTrips = "federation.breaker_trips";
inline constexpr const char* kBreakerProbes = "federation.breaker_probes";
inline constexpr const char* kFaultsInjected = "fault.injected";
// Workload management (admission control + statement caches).
inline constexpr const char* kWlmAdmitted = "wlm.admitted";
inline constexpr const char* kWlmQueued = "wlm.queued";
inline constexpr const char* kWlmShedQueueFull = "wlm.shed_queue_full";
inline constexpr const char* kWlmShedDeadline = "wlm.shed_deadline";
inline constexpr const char* kPlanCacheHits = "wlm.plan_cache_hits";
inline constexpr const char* kPlanCacheMisses = "wlm.plan_cache_misses";
inline constexpr const char* kResultCacheHits = "wlm.result_cache_hits";
inline constexpr const char* kResultCacheMisses = "wlm.result_cache_misses";
inline constexpr const char* kResultCacheStores = "wlm.result_cache_stores";
inline constexpr const char* kResultCacheInvalidations =
    "wlm.result_cache_invalidations";
}  // namespace metric

/// Thread-safe registry of named uint64 counters.
class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (creating it at zero first).
  void Add(const std::string& name, uint64_t delta);

  /// Increment by one.
  void Increment(const std::string& name) { Add(name, 1); }

  /// Current value (0 if never touched).
  uint64_t Get(const std::string& name) const;

  /// Reset every counter to zero.
  void Reset();

  /// Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Render the snapshot as "name = value" lines.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
};

/// Scoped delta reader: captures counter values at construction and reports
/// the difference on Delta(). Handy in benches.
class MetricsDelta {
 public:
  explicit MetricsDelta(const MetricsRegistry& registry)
      : registry_(registry), base_(registry.Snapshot()) {}

  /// Value of `name` accumulated since construction.
  uint64_t Delta(const std::string& name) const;

 private:
  const MetricsRegistry& registry_;
  std::vector<std::pair<std::string, uint64_t>> base_;
};

}  // namespace idaa
