#include "common/schema.h"

#include "common/string_util.h"

namespace idaa {

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto idx = FindColumn(name);
  if (!idx) return Status::NotFound("column not found: " + name);
  return *idx;
}

Status Schema::AddColumn(ColumnDef column) {
  if (FindColumn(column.name)) {
    return Status::AlreadyExists("duplicate column name: " + column.name);
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::ConstraintViolation(
        StrFormat("row has %zu values, schema has %zu columns", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (!columns_[i].nullable) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           columns_[i].name);
      }
      continue;
    }
    if (!ValueMatchesType(row[i], columns_[i].type)) {
      return Status::ConstraintViolation(
          "value " + row[i].ToString() + " does not match type " +
          DataTypeToString(columns_[i].type) + " of column " + columns_[i].name);
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeToString(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

bool ValueMatchesType(const Value& value, DataType type) {
  if (value.is_null()) return true;
  switch (type) {
    case DataType::kBoolean:
      return value.is_boolean();
    case DataType::kInteger:
      return value.is_integer();
    case DataType::kDouble:
      return value.is_double();
    case DataType::kVarchar:
      return value.is_varchar();
    case DataType::kDate:
      return value.is_date();
    case DataType::kTimestamp:
      return value.is_timestamp();
  }
  return false;
}

}  // namespace idaa
