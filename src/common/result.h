// Result<T>: value-or-Status, the return type of fallible producers.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace idaa {

/// Holds either a T (success) or a non-OK Status (failure).
///
/// Usage:
///   Result<int> Parse(...);
///   IDAA_ASSIGN_OR_RETURN(int v, Parse(...));
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK Status without a value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK Status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value; undefined if !ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Move the value out, or return a default if error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();  // only meaningful when !value_
};

#define IDAA_CONCAT_IMPL(a, b) a##b
#define IDAA_CONCAT(a, b) IDAA_CONCAT_IMPL(a, b)

/// Assign the value of a Result expression to `lhs`, or propagate its error.
#define IDAA_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto IDAA_CONCAT(_res_, __LINE__) = (expr);                 \
  if (!IDAA_CONCAT(_res_, __LINE__).ok())                     \
    return IDAA_CONCAT(_res_, __LINE__).status();             \
  lhs = std::move(IDAA_CONCAT(_res_, __LINE__)).value()

}  // namespace idaa
