// Bounded exponential-backoff retry around DB2 <-> accelerator boundary
// crossings. Only retryable codes (see IsRetryableCode) are retried;
// terminal errors return immediately. Each retry is visible in the query
// trace as a "retry" span carrying the attempt number, the backoff slept
// and the error that caused it.

#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/trace.h"

namespace idaa {

/// Backoff schedule and bounds for RetryWithBackoff.
struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 4;
  /// Sleep before the first retry; multiplied per retry thereafter.
  uint64_t initial_backoff_us = 200;
  double backoff_multiplier = 4.0;
  /// Cap on a single backoff sleep.
  uint64_t max_backoff_us = 50000;
  /// Overall wall-clock budget across attempts and sleeps (0 = none).
  /// Exhaustion surfaces as kTimeout even if attempts remain.
  uint64_t deadline_us = 0;
};

/// Terminal status of a retry loop plus how many retries it took.
struct RetryOutcome {
  Status status;
  uint32_t retries = 0;
};

/// Runs `attempt` up to policy.max_attempts times, sleeping exponentially
/// between tries, until it returns OK, a terminal error, or the deadline
/// passes. kUnavailable short-circuits: it means the target is known to be
/// down (offline state or open breaker), so burning the backoff schedule
/// on it is pointless — the caller decides between failback and error.
RetryOutcome RetryWithBackoff(const RetryPolicy& policy, TraceContext tc,
                              const std::function<Status()>& attempt);

}  // namespace idaa
