// Minimal RFC-4180-ish CSV codec used by the IDAA Loader simulator.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"

namespace idaa {

/// Parse one CSV line into fields. Supports double-quoted fields with
/// embedded commas and doubled quotes. Errors on unterminated quotes.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim = ',');

/// Format fields as one CSV line (quoting where needed).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim = ',');

/// Convert textual CSV fields into typed values per `schema`.
/// Empty fields become NULL. Errors on unparseable values.
Result<Row> CsvFieldsToRow(const std::vector<std::string>& fields,
                           const Schema& schema);

/// Parse an entire CSV document body (no header) into rows.
Result<std::vector<Row>> ParseCsvDocument(const std::string& body,
                                          const Schema& schema,
                                          char delim = ',');

}  // namespace idaa
