// Minimal RFC-4180-ish CSV codec used by the IDAA Loader simulator.
//
// Two layers:
//   * Record layer — CsvRecordScanner splits a document body into raw
//     records, respecting quotes (a quoted field may contain the delimiter,
//     doubled quotes, and embedded CR/LF) and treating CRLF and LF line
//     ends identically. Blank records are skipped.
//   * Field layer — ParseCsvFields splits one record into fields and
//     remembers which fields were quoted, so an unquoted empty field (SQL
//     NULL) is distinguishable from a quoted empty string ("").

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"

namespace idaa {

/// One parsed CSV field: its text plus whether it was quoted in the input.
/// An empty unquoted field is SQL NULL; an empty quoted field ("") is the
/// empty string.
struct CsvField {
  std::string text;
  bool quoted = false;

  bool operator==(const CsvField&) const = default;
};

/// Parse one CSV record into fields. Supports double-quoted fields with
/// embedded delimiters, doubled quotes and embedded newlines. Errors on
/// unterminated quotes.
Result<std::vector<CsvField>> ParseCsvFields(const std::string& record,
                                             char delim = ',');

/// Allocation-reusing variant of ParseCsvFields: parses into `*out`,
/// recycling its slots (and their string capacity) across calls. The hot
/// path for the parallel loader, where one scratch vector serves a whole
/// chunk of records.
Status ParseCsvFieldsInto(const std::string& record, char delim,
                          std::vector<CsvField>* out);

/// Legacy string-only view of ParseCsvFields (drops the quoted flags).
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char delim = ',');

/// Format fields as one CSV line (quoting where needed, including fields
/// containing CR or LF so the line round-trips through the record scanner).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim = ',');

/// Format one typed row as a CSV record that round-trips through
/// ParseCsvFields + CsvFieldsToRow: NULL renders as an empty unquoted
/// field, an empty VARCHAR as "", and text is quoted when it contains the
/// delimiter, a quote, CR or LF.
std::string FormatCsvRow(const Row& row, char delim = ',');

/// Convert textual CSV fields into typed values per `schema`.
/// Empty fields become NULL. Errors on unparseable values.
Result<Row> CsvFieldsToRow(const std::vector<std::string>& fields,
                           const Schema& schema);

/// Quote-aware conversion: empty *unquoted* fields become NULL, empty
/// quoted fields become the empty string (a cast error for non-VARCHAR
/// columns). Errors on arity mismatch or unparseable values. (Named
/// distinctly from CsvFieldsToRow so braced initializer lists stay
/// unambiguous at legacy call sites.)
Result<Row> QuotedCsvFieldsToRow(const std::vector<CsvField>& fields,
                                 const Schema& schema);

/// Splits a CSV document body into raw records. Quote-aware: a quoted
/// field may span lines, so an embedded newline does not end the record.
/// CRLF and LF both terminate records; blank records are skipped. The
/// body must outlive the scanner.
class CsvRecordScanner {
 public:
  explicit CsvRecordScanner(const std::string* body, char delim = ',')
      : body_(body), delim_(delim) {}

  /// Next raw record (without its terminating newline), or nullopt at end
  /// of input. Errors on a quote left open at end of input.
  Result<std::optional<std::string>> Next();

 private:
  const std::string* body_;
  char delim_;
  size_t pos_ = 0;
  size_t next_quote_ = 0;     // cached body_->find('"') result
  bool quote_valid_ = false;  // whether next_quote_ is current
};

/// Parse an entire CSV document body (no header) into rows. Records may
/// contain quoted embedded newlines.
Result<std::vector<Row>> ParseCsvDocument(const std::string& body,
                                          const Schema& schema,
                                          char delim = ',');

}  // namespace idaa
