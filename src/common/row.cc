#include "common/row.h"

#include <algorithm>

#include "common/string_util.h"

namespace idaa {

size_t RowByteSize(const Row& row) {
  size_t total = 0;
  for (const Value& v : row) total += v.ByteSize();
  return total;
}

Result<Row> CoerceRowToSchema(const Row& row, const Schema& schema) {
  if (row.size() != schema.NumColumns()) {
    return Status::ConstraintViolation(
        StrFormat("row has %zu values, schema has %zu columns", row.size(),
                  schema.NumColumns()));
  }
  Row out;
  out.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null() || ValueMatchesType(row[i], schema.Column(i).type)) {
      out.push_back(row[i]);
    } else {
      IDAA_ASSIGN_OR_RETURN(Value cast, row[i].CastTo(schema.Column(i).type));
      out.push_back(std::move(cast));
    }
  }
  return out;
}

size_t ResultSet::ByteSize() const {
  size_t total = 0;
  for (const Row& r : rows_) total += RowByteSize(r);
  return total;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.NumColumns());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    widths[c] = schema_.Column(c).name.size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.NumColumns());
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& vals) {
    for (size_t c = 0; c < vals.size(); ++c) {
      out += "| ";
      out += vals[c];
      out.append(widths[c] - vals[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::vector<std::string> header;
  header.reserve(schema_.NumColumns());
  for (const auto& col : schema_.columns()) header.push_back(col.name);
  append_row(header);
  for (size_t c = 0; c < widths.size(); ++c) {
    out += "+";
    out.append(widths[c] + 2, '-');
  }
  out += "+\n";
  for (size_t r = 0; r < shown; ++r) append_row(cells[r]);
  if (rows_.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

}  // namespace idaa
