// Query tracing & profiling: the observability layer the perf work reports
// against. Three pieces:
//
//   * QueryTrace / TraceSpan — per-statement tree of scoped spans (name,
//     wall-clock duration, attributes such as rows and boundary bytes,
//     parent linkage). Thread-safe so accelerator slice workers can attach
//     spans to the statement that spawned them. Rendered by EXPLAIN ANALYZE
//     and by the slow-query log.
//   * LatencyHistogram / HistogramRegistry — thread-safe latency
//     distributions (p50/p95/p99), exportable next to
//     MetricsRegistry::Snapshot().
//   * SlowQueryLog — ring buffer of statements whose latency met a
//     configurable threshold, each with its rendered trace and the bytes it
//     moved across the DB2 <-> accelerator boundary.

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace idaa {

/// Monotonic wall clock in nanoseconds (steady_clock).
uint64_t TraceNowNs();

/// Well-known histogram names (modules may add their own; per-statement
/// latency histograms are named "sql.latency.<kind>").
namespace histo {
inline constexpr const char* kReplicationBatchApplyUs =
    "replication.batch_apply_us";
inline constexpr const char* kSqlLatencyPrefix = "sql.latency.";
inline constexpr const char* kWlmQueuedUs = "wlm.queued_us";
}  // namespace histo

/// One statement's trace: a tree of timed spans. Spans are identified by
/// their index in creation order; parent linkage makes the tree. All
/// methods are thread-safe (slice scans add spans from worker threads).
class QueryTrace {
 public:
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  struct Span {
    std::string name;
    size_t parent = kNoParent;
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
    bool open = true;
    std::vector<std::pair<std::string, std::string>> attributes;
  };

  /// A span rendered for display: depth in the tree plus formatted fields.
  struct RenderedSpan {
    size_t depth = 0;
    std::string name;
    uint64_t duration_us = 0;
    std::string attributes;  ///< "k=v k2=v2" (may be empty)
  };

  /// Open a span; returns its id. Invalid parent ids are treated as root.
  size_t BeginSpan(const std::string& name, size_t parent = kNoParent);

  /// Close a span (idempotent; unknown ids ignored).
  void EndSpan(size_t id);

  void SetAttribute(size_t id, const std::string& key, std::string value);
  void SetAttribute(size_t id, const std::string& key, uint64_t value);

  /// Bytes that crossed the DB2 <-> accelerator boundary on behalf of this
  /// statement (accumulated by the TransferChannel).
  void AddBoundaryBytes(uint64_t bytes);
  uint64_t boundary_bytes() const;

  size_t NumSpans() const;
  std::vector<Span> Snapshot() const;
  uint64_t SpanDurationNs(size_t id) const;

  /// Depth-first pre-order walk of the span tree (children in creation
  /// order), one entry per span.
  std::vector<RenderedSpan> RenderRows() const;

  /// Multi-line stage tree, two spaces of indent per level:
  ///   statement  1234us  [rows=5]
  ///     route  2us  [target=ACCELERATOR ...]
  std::string Render() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  uint64_t boundary_bytes_ = 0;
};

/// Nullable trace handle threaded through the execution path: the trace (or
/// nullptr when the statement is not traced) plus the span new work should
/// attach under. Copy freely; it is two words.
struct TraceContext {
  QueryTrace* trace = nullptr;
  size_t parent = QueryTrace::kNoParent;
};

/// RAII scoped span. All operations are no-ops when the trace is null, so
/// instrumented code needs no branching.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(QueryTrace* trace, const std::string& name,
            size_t parent = QueryTrace::kNoParent);
  TraceSpan(const TraceContext& ctx, const std::string& name)
      : TraceSpan(ctx.trace, name, ctx.parent) {}
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Close the span early (idempotent; the destructor is then a no-op).
  void End();

  void Attr(const std::string& key, std::string value);
  void Attr(const std::string& key, uint64_t value);

  size_t id() const { return id_; }
  /// Context for child work under this span.
  TraceContext context() const { return {trace_, id_}; }
  explicit operator bool() const { return trace_ != nullptr; }

 private:
  QueryTrace* trace_ = nullptr;
  size_t id_ = QueryTrace::kNoParent;
  bool ended_ = false;
};

/// Thread-safe latency distribution with power-of-two buckets. Percentiles
/// are bucket upper bounds clamped into [min, max], so a single-sample
/// histogram reports that sample exactly and percentiles are monotone.
class LatencyHistogram {
 public:
  void Record(uint64_t value);

  size_t Count() const;
  uint64_t Sum() const;
  uint64_t Min() const;  ///< 0 when empty
  uint64_t Max() const;
  double Mean() const;  ///< 0.0 when empty

  /// Estimated value at percentile `p` in [0, 100]; 0 when empty.
  uint64_t Percentile(double p) const;
  uint64_t P50() const { return Percentile(50.0); }
  uint64_t P95() const { return Percentile(95.0); }
  uint64_t P99() const { return Percentile(99.0); }

  void Reset();

  /// "count=7 min=1 p50=4 p95=30 p99=30 max=31 mean=9.4"
  std::string ToString() const;

 private:
  static constexpr size_t kNumBuckets = 65;  ///< bucket b holds [2^(b-1), 2^b)
  static size_t BucketOf(uint64_t value);

  mutable std::mutex mu_;
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Named latency histograms, exportable next to MetricsRegistry::Snapshot().
class HistogramRegistry {
 public:
  /// The histogram named `name`, created empty on first use. The returned
  /// reference stays valid for the registry's lifetime.
  LatencyHistogram& GetOrCreate(const std::string& name);

  /// Snapshot summaries of all histograms, sorted by name.
  struct Summary {
    size_t count = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    double mean = 0.0;
  };
  std::vector<std::pair<std::string, Summary>> Snapshot() const;

  /// Render the snapshot as "name = count=... p50=..." lines.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Ring buffer of statements at/above a latency threshold, with their
/// rendered traces. Disabled until set_threshold_us() is called.
class SlowQueryLog {
 public:
  struct Entry {
    std::string sql;
    uint64_t duration_us = 0;
    uint64_t boundary_bytes = 0;  ///< DB2 <-> accelerator bytes moved
    std::string trace;            ///< rendered stage tree
  };

  /// Record statements with duration_us >= `us`. 0 records everything.
  void set_threshold_us(uint64_t us);
  uint64_t threshold_us() const;
  bool enabled() const;

  /// Keep at most `n` entries (oldest evicted first; default 128).
  void set_capacity(size_t n);

  /// Apply the threshold; returns whether the statement was recorded.
  bool MaybeRecord(const std::string& sql, uint64_t duration_us,
                   uint64_t boundary_bytes, std::string trace);

  std::vector<Entry> Entries() const;
  size_t Size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  uint64_t threshold_us_ = UINT64_MAX;
  bool enabled_ = false;
  size_t capacity_ = 128;
};

}  // namespace idaa
