#include "common/fault_injector.h"

#include <chrono>
#include <thread>

namespace idaa {

void FaultInjector::Arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.spec = spec;
  s.injected = 0;
}

void FaultInjector::ArmChannel(const FaultSpec& spec) {
  Arm(fault_site::kChannelToAccel, spec);
  Arm(fault_site::kChannelFromAccel, spec);
  Arm(fault_site::kChannelStatement, spec);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.spec = FaultSpec{};
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  total_injected_ = 0;
}

Status FaultInjector::MaybeFail(const std::string& site) {
  uint64_t latency_us = 0;
  StatusCode code = StatusCode::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return Status::OK();
    Site& s = it->second;
    latency_us = s.spec.latency_us;
    if (s.spec.probability > 0.0 &&
        (s.spec.max_failures == 0 || s.injected < s.spec.max_failures) &&
        rng_.Bernoulli(s.spec.probability)) {
      code = s.spec.code;
      ++s.injected;
      ++total_injected_;
    }
  }
  // Sleep outside the lock so a slow site does not serialize other sites.
  if (latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, "injected fault at " + site);
}

uint64_t FaultInjector::InjectedCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_injected_;
}

}  // namespace idaa
