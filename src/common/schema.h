// Schema: ordered, named, typed columns; shared by both engines.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace idaa {

/// One column definition.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInteger;
  bool nullable = true;

  bool operator==(const ColumnDef&) const = default;
};

/// Ordered list of columns; column names are matched case-insensitively.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& Column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of a column by (case-insensitive) name, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Index of a column by name, error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Append a column; error if the name already exists.
  Status AddColumn(ColumnDef column);

  /// Validate a row against this schema: arity, types (after NULL check),
  /// NOT NULL constraints. Values of wrong-but-castable type are NOT coerced
  /// here; callers cast first.
  Status ValidateRow(const std::vector<Value>& row) const;

  /// "(a INTEGER NOT NULL, b VARCHAR)".
  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<ColumnDef> columns_;
};

/// True if `value` may be stored in a column of `type` (NULL always fits,
/// INTEGER fits DOUBLE columns after cast — this checks exact storage type).
bool ValueMatchesType(const Value& value, DataType type);

}  // namespace idaa
