#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace idaa {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

namespace {

bool LikeMatchImpl(const char* text, const char* pattern) {
  while (*pattern) {
    if (*pattern == '%') {
      // Collapse consecutive wildcards, then try every suffix.
      while (*pattern == '%') ++pattern;
      if (!*pattern) return true;
      for (const char* t = text; *t; ++t) {
        if (LikeMatchImpl(t, pattern)) return true;
      }
      return false;
    }
    if (!*text) return false;
    if (*pattern != '_' && *pattern != *text) return false;
    ++pattern;
    ++text;
  }
  return *text == '\0';
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return LikeMatchImpl(text.c_str(), pattern.c_str());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace idaa
