#include "db2/row_store.h"

namespace idaa::db2 {

Result<uint64_t> StoredTable::Insert(Row row) {
  IDAA_RETURN_IF_ERROR(schema_.ValidateRow(row));
  StoredRow stored;
  stored.rid = next_rid_++;
  stored.values = std::move(row);
  if (has_index_) {
    index_.emplace(stored.values[0].AsInteger(), stored.rid);
  }
  rows_.push_back(std::move(stored));
  return rows_.back().rid;
}

std::vector<uint64_t> StoredTable::IndexLookup(const Value& key) const {
  std::vector<uint64_t> rids;
  if (!has_index_ || key.is_null()) return rids;
  auto as_int = key.CastTo(DataType::kInteger);
  if (!as_int.ok()) return rids;
  auto [begin, end] = index_.equal_range(as_int->AsInteger());
  for (auto it = begin; it != end; ++it) {
    size_t slot = static_cast<size_t>(it->second - 1);
    if (!rows_[slot].deleted) rids.push_back(it->second);
  }
  return rids;
}

void StoredTable::IndexErase(int64_t key, uint64_t rid) {
  auto [begin, end] = index_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      index_.erase(it);
      return;
    }
  }
}

Result<size_t> StoredTable::SlotOf(uint64_t rid) const {
  // RIDs are dense and start at 1; the slot index is rid-1.
  if (rid == 0 || rid > rows_.size() || rows_[rid - 1].rid != rid) {
    return Status::NotFound("RID not found: " + std::to_string(rid));
  }
  return static_cast<size_t>(rid - 1);
}

Status StoredTable::Undelete(uint64_t rid) {
  IDAA_ASSIGN_OR_RETURN(size_t slot, SlotOf(rid));
  rows_[slot].deleted = false;
  return Status::OK();
}

Status StoredTable::Update(uint64_t rid, Row row) {
  IDAA_RETURN_IF_ERROR(schema_.ValidateRow(row));
  IDAA_ASSIGN_OR_RETURN(size_t slot, SlotOf(rid));
  if (rows_[slot].deleted) {
    return Status::NotFound("row was deleted: " + std::to_string(rid));
  }
  if (has_index_) {
    int64_t old_key = rows_[slot].values[0].AsInteger();
    int64_t new_key = row[0].AsInteger();
    if (old_key != new_key) {
      IndexErase(old_key, rid);
      index_.emplace(new_key, rid);
    }
  }
  rows_[slot].values = std::move(row);
  return Status::OK();
}

Status StoredTable::Delete(uint64_t rid) {
  IDAA_ASSIGN_OR_RETURN(size_t slot, SlotOf(rid));
  if (rows_[slot].deleted) {
    return Status::NotFound("row already deleted: " + std::to_string(rid));
  }
  rows_[slot].deleted = true;
  return Status::OK();
}

Result<Row> StoredTable::Get(uint64_t rid) const {
  IDAA_ASSIGN_OR_RETURN(size_t slot, SlotOf(rid));
  if (rows_[slot].deleted) {
    return Status::NotFound("row was deleted: " + std::to_string(rid));
  }
  return rows_[slot].values;
}

std::vector<StoredRow> StoredTable::ScanLive() const {
  std::vector<StoredRow> out;
  out.reserve(rows_.size());
  for (const StoredRow& r : rows_) {
    if (!r.deleted) out.push_back(r);
  }
  return out;
}

size_t StoredTable::NumLiveRows() const {
  size_t count = 0;
  for (const StoredRow& r : rows_) {
    if (!r.deleted) ++count;
  }
  return count;
}

Status RowStore::CreateTable(uint64_t table_id, const Schema& schema) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(table_id)) {
    return Status::AlreadyExists("table id already exists: " +
                                 std::to_string(table_id));
  }
  tables_[table_id] = std::make_unique<StoredTable>(schema);
  return Status::OK();
}

Status RowStore::DropTable(uint64_t table_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tables_.erase(table_id)) {
    return Status::NotFound("table id not found: " + std::to_string(table_id));
  }
  return Status::OK();
}

Result<StoredTable*> RowStore::GetTable(uint64_t table_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return Status::NotFound("table id not found: " + std::to_string(table_id));
  }
  return it->second.get();
}

Result<const StoredTable*> RowStore::GetTable(uint64_t table_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return Status::NotFound("table id not found: " + std::to_string(table_id));
  }
  return const_cast<const StoredTable*>(it->second.get());
}

bool RowStore::HasTable(uint64_t table_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(table_id) > 0;
}

}  // namespace idaa::db2
