// Db2Engine: the simulated DB2 for z/OS front end — system of record,
// lock-based transactions (cursor stability), row-store DML, volcano query
// execution. Statements touching accelerator-only tables never reach this
// engine; the federation layer delegates them (see federation/).

#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/row.h"
#include "common/trace.h"
#include "engine/select_runtime.h"
#include "db2/row_store.h"
#include "sql/binder.h"
#include "txn/lock_manager.h"
#include "txn/transaction_manager.h"

namespace idaa::db2 {

class Db2Engine {
 public:
  Db2Engine(Catalog* catalog, TransactionManager* txn_manager,
            MetricsRegistry* metrics)
      : catalog_(catalog), txn_manager_(txn_manager), metrics_(metrics) {}

  /// Allocate row-store storage for a (non-AOT) table already registered in
  /// the catalog.
  Status CreateTableStorage(const TableInfo& info);

  Status DropTableStorage(const TableInfo& info);

  /// SELECT under cursor stability: S locks for the duration of the
  /// statement, scan of the committed state. With a trace context, records
  /// lock-wait time and a per-table scan span naming the access path
  /// (hash index vs. table scan).
  Result<ResultSet> ExecuteSelect(const sql::BoundSelect& plan,
                                  Transaction* txn, TraceContext tc = {});

  /// Insert fully-materialized rows (from VALUES or an already-executed
  /// source query). Validates against the schema, takes an X lock, records
  /// undo, captures changes when the table is replicated to the accelerator.
  Result<size_t> InsertRows(const TableInfo& info, std::vector<Row> rows,
                            Transaction* txn);

  Result<size_t> ExecuteUpdate(const sql::BoundUpdate& plan, Transaction* txn);
  Result<size_t> ExecuteDelete(const sql::BoundDelete& plan, Transaction* txn);

  /// Snapshot of a table's live rows (initial accelerator load).
  Result<std::vector<Row>> TableSnapshot(const TableInfo& info,
                                         Transaction* txn);

  LockManager& lock_manager() { return lock_manager_; }
  RowStore& row_store() { return row_store_; }

 private:
  /// Whether changes to this table must be captured for replication.
  bool NeedsCapture(const TableInfo& info) const {
    return info.kind == TableKind::kAccelerated;
  }

  Catalog* catalog_;
  TransactionManager* txn_manager_;
  MetricsRegistry* metrics_;
  RowStore row_store_;
  LockManager lock_manager_;
};

}  // namespace idaa::db2
