// RowStore: the DB2-side storage engine. A classic slotted row layout is
// simulated as an RID-addressed vector of tuples per table. Reads under
// cursor stability see the latest committed state (the engine layer holds
// locks; the store itself is versioning-free, unlike the accelerator).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"

namespace idaa::db2 {

/// One stored tuple.
struct StoredRow {
  uint64_t rid = 0;
  Row values;
  bool deleted = false;  ///< tombstone; RIDs stay stable
};

/// Storage for one table. If the first column is a NOT NULL INTEGER, a
/// hash index on it is maintained automatically (the implicit primary-key
/// index that gives DB2 its OLTP point-lookup strength).
class StoredTable {
 public:
  explicit StoredTable(Schema schema) : schema_(std::move(schema)) {
    has_index_ = schema_.NumColumns() > 0 &&
                 schema_.Column(0).type == DataType::kInteger &&
                 !schema_.Column(0).nullable;
  }

  const Schema& schema() const { return schema_; }

  bool has_index() const { return has_index_; }

  /// RIDs of live rows whose first column equals `key` (empty if no index
  /// or no match).
  std::vector<uint64_t> IndexLookup(const Value& key) const;

  /// Append a row, returns its RID. Row must match the schema.
  Result<uint64_t> Insert(Row row);

  /// Re-insert a row under a previously assigned RID (undo of delete).
  Status Undelete(uint64_t rid);

  /// Overwrite the values of a live row.
  Status Update(uint64_t rid, Row row);

  /// Tombstone a live row.
  Status Delete(uint64_t rid);

  /// Fetch a live row.
  Result<Row> Get(uint64_t rid) const;

  /// All live rows (with RIDs). The caller owns the copy — a statement-level
  /// stable scan under the table's S lock.
  std::vector<StoredRow> ScanLive() const;

  size_t NumLiveRows() const;
  size_t NumSlots() const { return rows_.size(); }

 private:
  Result<size_t> SlotOf(uint64_t rid) const;
  void IndexErase(int64_t key, uint64_t rid);

  Schema schema_;
  uint64_t next_rid_ = 1;
  std::vector<StoredRow> rows_;
  bool has_index_ = false;
  std::unordered_multimap<int64_t, uint64_t> index_;  // col0 value -> rid
};

/// All DB2-resident tables, keyed by catalog table id.
class RowStore {
 public:
  Status CreateTable(uint64_t table_id, const Schema& schema);
  Status DropTable(uint64_t table_id);
  Result<StoredTable*> GetTable(uint64_t table_id);
  Result<const StoredTable*> GetTable(uint64_t table_id) const;
  bool HasTable(uint64_t table_id) const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<StoredTable>> tables_;
};

}  // namespace idaa::db2
