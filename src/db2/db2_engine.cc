#include "db2/db2_engine.h"

#include "sql/expression_eval.h"

namespace idaa::db2 {

using sql::EvalExpr;
using sql::EvalPredicate;

namespace {

/// If the predicate implies `first-column = <literal>` (top-level AND
/// conjunct), return the literal — the access path chooser for the implicit
/// primary-key hash index.
const Value* FindIndexKey(const sql::BoundExpr* predicate) {
  if (predicate == nullptr) return nullptr;
  if (predicate->kind == sql::BoundExprKind::kBinary &&
      predicate->binary_op == sql::BinaryOp::kAnd) {
    const Value* left = FindIndexKey(predicate->children[0].get());
    if (left != nullptr) return left;
    return FindIndexKey(predicate->children[1].get());
  }
  if (predicate->kind == sql::BoundExprKind::kBinary &&
      predicate->binary_op == sql::BinaryOp::kEq) {
    const sql::BoundExpr& lhs = *predicate->children[0];
    const sql::BoundExpr& rhs = *predicate->children[1];
    if (lhs.kind == sql::BoundExprKind::kColumn && lhs.index == 0 &&
        rhs.kind == sql::BoundExprKind::kLiteral && !rhs.literal.is_null()) {
      return &rhs.literal;
    }
    if (rhs.kind == sql::BoundExprKind::kColumn && rhs.index == 0 &&
        lhs.kind == sql::BoundExprKind::kLiteral && !lhs.literal.is_null()) {
      return &lhs.literal;
    }
  }
  return nullptr;
}

}  // namespace

Status Db2Engine::CreateTableStorage(const TableInfo& info) {
  return row_store_.CreateTable(info.table_id, info.schema);
}

Status Db2Engine::DropTableStorage(const TableInfo& info) {
  return row_store_.DropTable(info.table_id);
}

Result<ResultSet> Db2Engine::ExecuteSelect(const sql::BoundSelect& plan,
                                           Transaction* txn, TraceContext tc) {
  // Cursor stability: S locks held for the statement only.
  {
    TraceSpan lock_span(tc, "db2.lock_wait");
    lock_span.Attr("tables", static_cast<uint64_t>(plan.tables.size()));
    for (const auto& bt : plan.tables) {
      IDAA_RETURN_IF_ERROR(lock_manager_.Acquire(txn->id(), bt.info->table_id,
                                                 LockMode::kShared));
    }
  }
  auto release = [&]() { lock_manager_.ReleaseShared(txn->id()); };

  exec::TableSource source = [&](size_t index) -> Result<std::vector<Row>> {
    const TableInfo* info = plan.tables[index].info;
    TraceSpan scan_span(tc, "db2.scan " + info->name);
    IDAA_ASSIGN_OR_RETURN(const StoredTable* table,
                          row_store_.GetTable(info->table_id));
    std::vector<Row> rows;
    // Index access path: first-column equality served from the hash index
    // (the runtime re-checks the full predicate on the fetched rows).
    const Value* key = table->has_index()
                           ? FindIndexKey(plan.tables[index].scan_predicate.get())
                           : nullptr;
    scan_span.Attr("access_path",
                   key != nullptr ? "primary-key hash index" : "table scan");
    if (key != nullptr) {
      for (uint64_t rid : table->IndexLookup(*key)) {
        auto row = table->Get(rid);
        if (row.ok()) rows.push_back(std::move(*row));
      }
      scan_span.Attr("rows", static_cast<uint64_t>(rows.size()));
      return rows;
    }
    auto stored = table->ScanLive();
    rows.reserve(stored.size());
    for (auto& sr : stored) rows.push_back(std::move(sr.values));
    scan_span.Attr("rows", static_cast<uint64_t>(rows.size()));
    return rows;
  };

  exec::ExecutorOptions options;
  options.metrics = metrics_;
  auto result = exec::ExecuteBoundSelect(plan, source, options);
  release();
  return result;
}

Result<size_t> Db2Engine::InsertRows(const TableInfo& info,
                                     std::vector<Row> rows, Transaction* txn) {
  IDAA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), info.table_id, LockMode::kExclusive));
  IDAA_ASSIGN_OR_RETURN(StoredTable* table, row_store_.GetTable(info.table_id));
  bool capture = NeedsCapture(info);
  size_t inserted = 0;
  for (Row& row : rows) {
    IDAA_ASSIGN_OR_RETURN(Row coerced, CoerceRowToSchema(row, info.schema));
    IDAA_ASSIGN_OR_RETURN(uint64_t rid, table->Insert(std::move(coerced)));
    ++inserted;
    txn->AddUndo([table, rid] { (void)table->Delete(rid); });
    if (capture) {
      CapturedChange change;
      change.op = CapturedChange::Op::kInsert;
      change.table_name = info.name;
      change.rid = rid;
      IDAA_ASSIGN_OR_RETURN(change.row, table->Get(rid));
      txn->CaptureChange(std::move(change));
    }
    if (metrics_ != nullptr) {
      metrics_->Increment(metric::kDb2RowsMaterialized);
      metrics_->Add(metric::kDb2BytesMaterialized, RowByteSize(row));
    }
  }
  return inserted;
}

Result<size_t> Db2Engine::ExecuteUpdate(const sql::BoundUpdate& plan,
                                        Transaction* txn) {
  const TableInfo& info = *plan.table;
  IDAA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), info.table_id, LockMode::kExclusive));
  IDAA_ASSIGN_OR_RETURN(StoredTable* table, row_store_.GetTable(info.table_id));
  bool capture = NeedsCapture(info);

  size_t updated = 0;
  for (const StoredRow& stored : table->ScanLive()) {
    if (plan.where) {
      IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*plan.where, stored.values));
      if (!pass) continue;
    }
    Row new_row = stored.values;
    for (const auto& [col, expr] : plan.assignments) {
      IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, stored.values));
      if (!v.is_null() && !ValueMatchesType(v, info.schema.Column(col).type)) {
        IDAA_ASSIGN_OR_RETURN(v, v.CastTo(info.schema.Column(col).type));
      }
      new_row[col] = std::move(v);
    }
    IDAA_RETURN_IF_ERROR(info.schema.ValidateRow(new_row));
    Row old_row = stored.values;
    IDAA_RETURN_IF_ERROR(table->Update(stored.rid, new_row));
    ++updated;
    uint64_t rid = stored.rid;
    txn->AddUndo([table, rid, old_row] { (void)table->Update(rid, old_row); });
    if (capture) {
      CapturedChange change;
      change.op = CapturedChange::Op::kUpdate;
      change.table_name = info.name;
      change.rid = rid;
      change.row = new_row;
      change.old_row = old_row;
      txn->CaptureChange(std::move(change));
    }
  }
  return updated;
}

Result<size_t> Db2Engine::ExecuteDelete(const sql::BoundDelete& plan,
                                        Transaction* txn) {
  const TableInfo& info = *plan.table;
  IDAA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), info.table_id, LockMode::kExclusive));
  IDAA_ASSIGN_OR_RETURN(StoredTable* table, row_store_.GetTable(info.table_id));
  bool capture = NeedsCapture(info);

  size_t deleted = 0;
  for (const StoredRow& stored : table->ScanLive()) {
    if (plan.where) {
      IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*plan.where, stored.values));
      if (!pass) continue;
    }
    IDAA_RETURN_IF_ERROR(table->Delete(stored.rid));
    ++deleted;
    uint64_t rid = stored.rid;
    txn->AddUndo([table, rid] { (void)table->Undelete(rid); });
    if (capture) {
      CapturedChange change;
      change.op = CapturedChange::Op::kDelete;
      change.table_name = info.name;
      change.rid = rid;
      change.old_row = stored.values;
      txn->CaptureChange(std::move(change));
    }
  }
  return deleted;
}

Result<std::vector<Row>> Db2Engine::TableSnapshot(const TableInfo& info,
                                                  Transaction* txn) {
  IDAA_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn->id(), info.table_id, LockMode::kShared));
  IDAA_ASSIGN_OR_RETURN(const StoredTable* table,
                        row_store_.GetTable(info.table_id));
  std::vector<Row> rows;
  for (auto& sr : table->ScanLive()) rows.push_back(std::move(sr.values));
  lock_manager_.ReleaseShared(txn->id());
  return rows;
}

}  // namespace idaa::db2
