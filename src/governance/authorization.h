// Authorization: users, privileges, GRANT/REVOKE. The paper's framework
// requirement: analytics code executes on the accelerator, but *data
// governance stays with DB2* — every delegated statement is authorized at
// the DB2 front door before it leaves, and audited.

#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace idaa::governance {

/// Privilege kinds on tables and procedures.
enum class Privilege : uint8_t {
  kSelect = 0,
  kInsert,
  kUpdate,
  kDelete,
  kExecute,  ///< procedures / analytics operators
};

const char* PrivilegeToString(Privilege p);
Result<Privilege> PrivilegeFromString(const std::string& name);

class AuthorizationManager {
 public:
  /// The administrator account that always passes checks.
  static constexpr const char* kAdmin = "SYSADM";

  /// Register a user. Idempotent.
  void CreateUser(const std::string& user);

  bool HasUser(const std::string& user) const;

  /// Grant `privilege` on `object` (table or procedure name) to `user`.
  Status Grant(const std::string& user, const std::string& object,
               Privilege privilege);

  Status Revoke(const std::string& user, const std::string& object,
                Privilege privilege);

  /// Check; returns kNotAuthorized with a descriptive message on failure.
  Status Check(const std::string& user, const std::string& object,
               Privilege privilege) const;

  /// All privileges a user holds on an object.
  std::vector<Privilege> PrivilegesOf(const std::string& user,
                                      const std::string& object) const;

  /// Drop all grants on an object (table dropped).
  void DropObject(const std::string& object);

 private:
  static std::string Key(const std::string& user, const std::string& object);

  mutable std::mutex mu_;
  std::set<std::string> users_;
  std::map<std::string, std::set<Privilege>> grants_;  // key: user|object
};

}  // namespace idaa::governance
