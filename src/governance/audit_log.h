// AuditLog: append-only record of every authorized/denied action, kept on
// the DB2 side even for statements that execute on the accelerator.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace idaa::governance {

struct AuditEntry {
  uint64_t sequence = 0;
  std::string user;
  std::string action;     ///< e.g. "SELECT", "CALL KMEANS", "GRANT"
  std::string object;     ///< table / procedure
  bool allowed = true;
  std::string detail;     ///< routing decision, row counts, error text
};

class AuditLog {
 public:
  void Record(const std::string& user, const std::string& action,
              const std::string& object, bool allowed,
              const std::string& detail = "");

  /// Copy of all entries (tests / inspection).
  std::vector<AuditEntry> Entries() const;

  size_t Size() const;

  /// Entries for one user.
  std::vector<AuditEntry> EntriesForUser(const std::string& user) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  uint64_t next_sequence_ = 1;
  std::vector<AuditEntry> entries_;
};

}  // namespace idaa::governance
