#include "governance/authorization.h"

#include "common/string_util.h"

namespace idaa::governance {

const char* PrivilegeToString(Privilege p) {
  switch (p) {
    case Privilege::kSelect: return "SELECT";
    case Privilege::kInsert: return "INSERT";
    case Privilege::kUpdate: return "UPDATE";
    case Privilege::kDelete: return "DELETE";
    case Privilege::kExecute: return "EXECUTE";
  }
  return "?";
}

Result<Privilege> PrivilegeFromString(const std::string& name) {
  std::string upper = ToUpper(name);
  if (upper == "SELECT") return Privilege::kSelect;
  if (upper == "INSERT") return Privilege::kInsert;
  if (upper == "UPDATE") return Privilege::kUpdate;
  if (upper == "DELETE") return Privilege::kDelete;
  if (upper == "EXECUTE") return Privilege::kExecute;
  return Status::InvalidArgument("unknown privilege: " + name);
}

std::string AuthorizationManager::Key(const std::string& user,
                                      const std::string& object) {
  return ToUpper(user) + "|" + ToUpper(object);
}

void AuthorizationManager::CreateUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  users_.insert(ToUpper(user));
}

bool AuthorizationManager::HasUser(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  return users_.count(ToUpper(user)) > 0 || ToUpper(user) == kAdmin;
}

Status AuthorizationManager::Grant(const std::string& user,
                                   const std::string& object,
                                   Privilege privilege) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!users_.count(ToUpper(user)) && ToUpper(user) != kAdmin) {
    return Status::NotFound("user not found: " + user);
  }
  grants_[Key(user, object)].insert(privilege);
  return Status::OK();
}

Status AuthorizationManager::Revoke(const std::string& user,
                                    const std::string& object,
                                    Privilege privilege) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(Key(user, object));
  if (it == grants_.end() || !it->second.erase(privilege)) {
    return Status::NotFound(std::string("grant not found: ") +
                            PrivilegeToString(privilege) + " on " + object +
                            " for " + user);
  }
  return Status::OK();
}

Status AuthorizationManager::Check(const std::string& user,
                                   const std::string& object,
                                   Privilege privilege) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ToUpper(user) == kAdmin) return Status::OK();
  auto it = grants_.find(Key(user, object));
  if (it != grants_.end() && it->second.count(privilege)) {
    return Status::OK();
  }
  return Status::NotAuthorized("user " + user + " lacks " +
                               PrivilegeToString(privilege) + " on " + object);
}

std::vector<Privilege> AuthorizationManager::PrivilegesOf(
    const std::string& user, const std::string& object) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(Key(user, object));
  if (it == grants_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void AuthorizationManager::DropObject(const std::string& object) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string suffix = "|";
  suffix += ToUpper(object);
  for (auto it = grants_.begin(); it != grants_.end();) {
    const std::string& key = it->first;
    if (key.size() >= suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
      it = grants_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace idaa::governance
