#include "governance/audit_log.h"

#include "common/string_util.h"

namespace idaa::governance {

void AuditLog::Record(const std::string& user, const std::string& action,
                      const std::string& object, bool allowed,
                      const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  AuditEntry entry;
  entry.sequence = next_sequence_++;
  entry.user = ToUpper(user);
  entry.action = action;
  entry.object = object;
  entry.allowed = allowed;
  entry.detail = detail;
  entries_.push_back(std::move(entry));
}

std::vector<AuditEntry> AuditLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t AuditLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<AuditEntry> AuditLog::EntriesForUser(
    const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEntry> out;
  std::string upper = ToUpper(user);
  for (const auto& e : entries_) {
    if (e.user == upper) out.push_back(e);
  }
  return out;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace idaa::governance
