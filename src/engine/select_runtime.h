// Shared SELECT runtime: the coordinator-side operators used by both
// engines — joins (hash-accelerated, volcano iterators), aggregation,
// HAVING, ORDER BY, projection, DISTINCT and LIMIT.
//
// The engines differ in their *scan* layers (which is where the paper's
// performance asymmetry lives): DB2 feeds raw row-store scans and lets this
// runtime apply scan predicates row-at-a-time; the accelerator feeds
// pre-filtered rows from its parallel, zone-map-pruned, vectorized column
// scans and disables predicate re-evaluation.

#pragma once

#include <functional>

#include "common/metrics.h"
#include "common/result.h"
#include "common/row.h"
#include "sql/binder.h"

namespace idaa::exec {

/// Supplies the rows of plan.tables[table_index].
using TableSource =
    std::function<Result<std::vector<Row>>(size_t table_index)>;

struct ExecutorOptions {
  /// If set, scanned rows are accounted under `scan_counter`.
  MetricsRegistry* metrics = nullptr;
  const char* scan_counter = metric::kDb2RowsScanned;
  /// When false the sources have already applied plan.tables[i].scan_predicate
  /// (accelerator push-down) and the runtime must not re-evaluate it.
  bool apply_scan_predicates = true;
};

/// Execute a bound SELECT against the provided table sources.
Result<ResultSet> ExecuteBoundSelect(const sql::BoundSelect& plan,
                                     const TableSource& source,
                                     const ExecutorOptions& options = {});

/// Post-join processing only: aggregation, HAVING, ORDER BY, projection,
/// DISTINCT and LIMIT over already-joined combined rows.
Result<ResultSet> FinishSelect(const sql::BoundSelect& plan,
                               std::vector<Row> combined_rows);

/// An equi-join key pair extracted from an ON predicate (combined-layout
/// column indexes; left is below the join boundary, right above).
struct EquiKey {
  size_t left_index;
  size_t right_index;
};

/// Split an ON predicate into hashable equi keys crossing the boundary
/// [right_offset, right_end) and residual conjuncts that must be evaluated
/// per candidate pair.
void ExtractEquiKeys(const sql::BoundExpr& on, size_t right_offset,
                     size_t right_end, std::vector<EquiKey>* keys,
                     std::vector<const sql::BoundExpr*>* residual);

/// The tail of FinishSelect for engines that aggregate at the storage
/// layer (accelerator slice-parallel aggregation): applies HAVING, ORDER
/// BY, projection, DISTINCT and LIMIT to rows already in the post-
/// aggregation layout [group keys..., aggregate results...] (or the plain
/// combined layout for non-aggregating plans).
Result<ResultSet> FinalizeSelect(const sql::BoundSelect& plan,
                                 std::vector<Row> post_rows);

/// Rows a single-table scan must produce before LIMIT alone truncates the
/// result: plan.limit when no post-scan operator can reorder, merge or
/// drop rows (no join, aggregation, DISTINCT, ORDER BY, HAVING or residual
/// WHERE). nullopt → the scan must be exhaustive. Lets a scan that applies
/// its predicates in-storage stop early (late materialization of at most
/// LIMIT rows).
std::optional<size_t> ScanOutputCap(const sql::BoundSelect& plan);

}  // namespace idaa::exec
