#include "engine/select_runtime.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>

#include "sql/expression_eval.h"

namespace idaa::exec {

using sql::BoundExpr;
using sql::BoundExprKind;
using sql::BoundSelect;
using sql::BoundTable;
using sql::EvalExpr;
using sql::EvalPredicate;

namespace {

// ---------------------------------------------------------------------------
// Volcano iterators
// ---------------------------------------------------------------------------

/// Row-at-a-time iterator. Next() yields nullopt at end of stream.
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  virtual Result<std::optional<Row>> Next() = 0;
};

using RowIteratorPtr = std::unique_ptr<RowIterator>;

/// Source over a materialized vector, applying a scan predicate.
class ScanIterator : public RowIterator {
 public:
  ScanIterator(std::vector<Row> rows, const BoundExpr* predicate,
               MetricsRegistry* metrics, const char* counter)
      : rows_(std::move(rows)),
        predicate_(predicate),
        metrics_(metrics),
        counter_(counter) {}

  Result<std::optional<Row>> Next() override {
    while (pos_ < rows_.size()) {
      Row& row = rows_[pos_++];
      if (metrics_ != nullptr) metrics_->Increment(counter_);
      if (predicate_ != nullptr) {
        IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, row));
        if (!pass) continue;
      }
      return std::optional<Row>(std::move(row));
    }
    return std::optional<Row>();
  }

 private:
  std::vector<Row> rows_;
  const BoundExpr* predicate_;
  MetricsRegistry* metrics_;
  const char* counter_;
  size_t pos_ = 0;
};

class FilterIterator : public RowIterator {
 public:
  FilterIterator(RowIteratorPtr child, const BoundExpr* predicate)
      : child_(std::move(child)), predicate_(predicate) {}

  Result<std::optional<Row>> Next() override {
    while (true) {
      IDAA_ASSIGN_OR_RETURN(auto row, child_->Next());
      if (!row) return std::optional<Row>();
      IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *row));
      if (pass) return row;
    }
  }

 private:
  RowIteratorPtr child_;
  const BoundExpr* predicate_;
};

/// Hash key for grouping / joining on a vector of values.
struct RowKeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) h = h * 1315423911ULL + v.Hash();
    return h;
  }
};

}  // namespace

/// Find `a = b` conjuncts splitting cleanly across the join boundary.
void ExtractEquiKeys(const BoundExpr& on, size_t right_offset,
                     size_t right_end, std::vector<EquiKey>* keys,
                     std::vector<const BoundExpr*>* residual) {
  if (on.kind == BoundExprKind::kBinary &&
      on.binary_op == sql::BinaryOp::kAnd) {
    ExtractEquiKeys(*on.children[0], right_offset, right_end, keys, residual);
    ExtractEquiKeys(*on.children[1], right_offset, right_end, keys, residual);
    return;
  }
  if (on.kind == BoundExprKind::kBinary && on.binary_op == sql::BinaryOp::kEq &&
      on.children[0]->kind == BoundExprKind::kColumn &&
      on.children[1]->kind == BoundExprKind::kColumn) {
    size_t a = on.children[0]->index;
    size_t b = on.children[1]->index;
    bool a_left = a < right_offset;
    bool b_left = b < right_offset;
    bool a_right = a >= right_offset && a < right_end;
    bool b_right = b >= right_offset && b < right_end;
    if (a_left && b_right) {
      keys->push_back({a, b});
      return;
    }
    if (b_left && a_right) {
      keys->push_back({b, a});
      return;
    }
  }
  residual->push_back(&on);
}

namespace {

/// Joins the child stream (left) with a materialized right side.
/// Inner/cross/left-outer; hash-accelerated when equi keys exist.
class JoinIterator : public RowIterator {
 public:
  JoinIterator(RowIteratorPtr left, std::vector<Row> right_rows,
               size_t right_offset, size_t right_width, sql::JoinType type,
               const BoundExpr* on)
      : left_(std::move(left)),
        right_rows_(std::move(right_rows)),
        right_offset_(right_offset),
        right_width_(right_width),
        type_(type),
        on_(on) {
    if (on_ != nullptr) {
      ExtractEquiKeys(*on_, right_offset_, right_offset_ + right_width_,
                      &equi_keys_, &residual_);
    }
    if (!equi_keys_.empty()) {
      for (size_t i = 0; i < right_rows_.size(); ++i) {
        std::vector<Value> key;
        key.reserve(equi_keys_.size());
        bool has_null = false;
        for (const EquiKey& k : equi_keys_) {
          const Value& v = right_rows_[i][k.right_index - right_offset_];
          if (v.is_null()) has_null = true;
          key.push_back(v);
        }
        if (has_null) continue;  // NULL never equi-joins
        hash_table_[std::move(key)].push_back(i);
      }
    }
  }

  Result<std::optional<Row>> Next() override {
    while (true) {
      if (!current_left_) {
        IDAA_ASSIGN_OR_RETURN(auto row, left_->Next());
        if (!row) return std::optional<Row>();
        current_left_ = std::move(row);
        matched_ = false;
        if (!equi_keys_.empty()) {
          // Reuse the scratch key buffer across probe rows (the per-row
          // vector allocation dominated the probe loop).
          probe_key_.clear();
          bool has_null = false;
          for (const EquiKey& k : equi_keys_) {
            const Value& v = (*current_left_)[k.left_index];
            if (v.is_null()) has_null = true;
            probe_key_.push_back(v);
          }
          candidates_ = nullptr;
          if (!has_null) {
            auto it = hash_table_.find(probe_key_);
            if (it != hash_table_.end()) candidates_ = &it->second;
          }
          candidate_pos_ = 0;
        } else {
          candidate_pos_ = 0;
        }
      }

      // Iterate over candidate right rows.
      while (true) {
        size_t right_index;
        if (!equi_keys_.empty()) {
          if (candidates_ == nullptr || candidate_pos_ >= candidates_->size()) {
            break;
          }
          right_index = (*candidates_)[candidate_pos_++];
        } else {
          if (candidate_pos_ >= right_rows_.size()) break;
          right_index = candidate_pos_++;
        }
        Row combined = *current_left_;
        combined.resize(right_offset_, Value::Null());
        const Row& right = right_rows_[right_index];
        combined.insert(combined.end(), right.begin(), right.end());
        bool pass = true;
        if (!residual_.empty()) {
          for (const BoundExpr* pred : residual_) {
            IDAA_ASSIGN_OR_RETURN(bool p, EvalPredicate(*pred, combined));
            if (!p) {
              pass = false;
              break;
            }
          }
        } else if (equi_keys_.empty() && on_ != nullptr) {
          IDAA_ASSIGN_OR_RETURN(pass, EvalPredicate(*on_, combined));
        }
        if (pass) {
          matched_ = true;
          return std::optional<Row>(std::move(combined));
        }
      }

      // Left row exhausted all candidates.
      if (type_ == sql::JoinType::kLeft && !matched_) {
        Row combined = std::move(*current_left_);
        combined.resize(right_offset_ + right_width_, Value::Null());
        current_left_.reset();
        return std::optional<Row>(std::move(combined));
      }
      current_left_.reset();
    }
  }

 private:
  RowIteratorPtr left_;
  std::vector<Row> right_rows_;
  size_t right_offset_;
  size_t right_width_;
  sql::JoinType type_;
  const BoundExpr* on_;
  std::vector<EquiKey> equi_keys_;
  std::vector<const BoundExpr*> residual_;
  std::unordered_map<std::vector<Value>, std::vector<size_t>, RowKeyHash>
      hash_table_;

  std::optional<Row> current_left_;
  const std::vector<size_t>* candidates_ = nullptr;
  size_t candidate_pos_ = 0;
  bool matched_ = false;
  std::vector<Value> probe_key_;  // scratch, reused across Next() calls
};

/// Drain an iterator into a vector.
Result<std::vector<Row>> Drain(RowIterator* it) {
  std::vector<Row> out;
  while (true) {
    IDAA_ASSIGN_OR_RETURN(auto row, it->Next());
    if (!row) break;
    out.push_back(std::move(*row));
  }
  return out;
}

}  // namespace

Result<ResultSet> FinishSelect(const BoundSelect& plan,
                               std::vector<Row> combined_rows) {
  std::vector<Row> post_rows;

  if (plan.has_aggregation) {
    // Hash aggregation over group keys.
    std::unordered_map<std::vector<Value>,
                       std::vector<sql::AggregateAccumulator>, RowKeyHash>
        groups;
    std::vector<std::vector<Value>> group_order;  // deterministic output
    for (const Row& row : combined_rows) {
      std::vector<Value> key;
      key.reserve(plan.group_keys.size());
      for (const auto& g : plan.group_keys) {
        IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
        key.push_back(std::move(v));
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        std::vector<sql::AggregateAccumulator> accs;
        accs.reserve(plan.aggregates.size());
        for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
        it = groups.emplace(key, std::move(accs)).first;
        group_order.push_back(key);
      }
      for (size_t i = 0; i < plan.aggregates.size(); ++i) {
        const auto& agg = plan.aggregates[i];
        if (agg.func == sql::AggFunc::kCountStar) {
          it->second[i].AccumulateRow();
        } else {
          IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*agg.arg, row));
          it->second[i].Accumulate(v);
        }
      }
    }
    // Global aggregation over an empty input still yields one row.
    if (groups.empty() && plan.group_keys.empty()) {
      std::vector<sql::AggregateAccumulator> accs;
      for (const auto& agg : plan.aggregates) accs.emplace_back(agg);
      groups.emplace(std::vector<Value>{}, std::move(accs));
      group_order.push_back({});
    }
    post_rows.reserve(groups.size());
    for (const auto& key : group_order) {
      auto it = groups.find(key);
      Row out = key;
      for (const auto& acc : it->second) out.push_back(acc.Finalize());
      post_rows.push_back(std::move(out));
    }
  } else {
    post_rows = std::move(combined_rows);
  }
  return FinalizeSelect(plan, std::move(post_rows));
}

Result<ResultSet> FinalizeSelect(const BoundSelect& plan,
                                 std::vector<Row> post_rows) {
  if (plan.having) {
    std::vector<Row> kept;
    for (Row& row : post_rows) {
      IDAA_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*plan.having, row));
      if (pass) kept.push_back(std::move(row));
    }
    post_rows = std::move(kept);
  }

  // ORDER BY over the pre-projection layout. Sort keys are evaluated once
  // per row (decorate-sort-undecorate), so an N-row sort costs N expression
  // evaluations instead of 2N log N; comparisons touch only cached Values.
  // NULLs sort high (DB2 semantics): last ascending, first descending.
  if (!plan.order_by.empty()) {
    const size_t nk = plan.order_by.size();
    std::vector<Value> keys;
    keys.reserve(post_rows.size() * nk);
    for (const Row& row : post_rows) {
      for (const auto& ob : plan.order_by) {
        IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*ob.expr, row));
        keys.push_back(std::move(v));
      }
    }
    std::vector<size_t> order(post_rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Status sort_error = Status::OK();
    // Ties break on the original index, which makes this a total order; a
    // full sort of it is exactly what stable_sort produces, and it lets a
    // LIMIT query select just the top rows below.
    auto cmp = [&](size_t a, size_t b) {
      if (!sort_error.ok()) return false;
      for (size_t k = 0; k < nk; ++k) {
        const Value& va = keys[a * nk + k];
        const Value& vb = keys[b * nk + k];
        if (va.is_null() && vb.is_null()) continue;
        int c;
        if (va.is_null()) {
          c = 1;  // NULL is high
        } else if (vb.is_null()) {
          c = -1;
        } else {
          auto r = va.Compare(vb);
          if (!r.ok()) {
            sort_error = r.status();
            return false;
          }
          c = *r;
        }
        if (c == 0) continue;
        return plan.order_by[k].ascending ? c < 0 : c > 0;
      }
      return a < b;
    };
    // With LIMIT and no DISTINCT only the top rows survive, so a partial
    // sort suffices and the rows beyond the limit are dropped before
    // projection.
    const bool top_k = plan.limit && !plan.distinct &&
                       static_cast<size_t>(*plan.limit) < order.size();
    if (top_k) {
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<size_t>(*plan.limit),
                        order.end(), cmp);
      order.resize(static_cast<size_t>(*plan.limit));
    } else {
      std::sort(order.begin(), order.end(), cmp);
    }
    IDAA_RETURN_IF_ERROR(sort_error);
    std::vector<Row> sorted;
    sorted.reserve(order.size());
    for (size_t i : order) sorted.push_back(std::move(post_rows[i]));
    post_rows = std::move(sorted);
  }

  // Project.
  ResultSet result(plan.output_schema);
  for (const Row& row : post_rows) {
    Row out;
    out.reserve(plan.select_exprs.size());
    for (const auto& e : plan.select_exprs) {
      IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, row));
      out.push_back(std::move(v));
    }
    result.Append(std::move(out));
  }

  // DISTINCT preserving first-occurrence order.
  if (plan.distinct) {
    std::unordered_map<std::vector<Value>, bool, RowKeyHash> seen;
    std::vector<Row> unique;
    for (Row& row : result.mutable_rows()) {
      if (seen.emplace(row, true).second) unique.push_back(std::move(row));
    }
    result = ResultSet(plan.output_schema, std::move(unique));
  }

  // LIMIT.
  if (plan.limit && result.NumRows() > static_cast<size_t>(*plan.limit)) {
    result.mutable_rows().resize(static_cast<size_t>(*plan.limit));
  }
  return result;
}

Result<ResultSet> ExecuteBoundSelect(const BoundSelect& plan,
                                     const TableSource& source,
                                     const ExecutorOptions& options) {
  // Table-less SELECT: one row of evaluated expressions.
  if (plan.tables.empty()) {
    return FinishSelect(plan, {Row{}});
  }

  // Build the pipeline: scan of the base table, then joins left-to-right.
  IDAA_ASSIGN_OR_RETURN(std::vector<Row> base_rows, source(0));
  RowIteratorPtr pipeline = std::make_unique<ScanIterator>(
      std::move(base_rows),
      options.apply_scan_predicates ? plan.tables[0].scan_predicate.get()
                                    : nullptr,
      options.metrics, options.scan_counter);

  for (size_t t = 1; t < plan.tables.size(); ++t) {
    const BoundTable& bt = plan.tables[t];
    IDAA_ASSIGN_OR_RETURN(std::vector<Row> right_raw, source(t));
    // Apply the right table's scan predicate while materializing.
    std::vector<Row> right_rows;
    right_rows.reserve(right_raw.size());
    for (Row& row : right_raw) {
      if (options.metrics != nullptr) {
        options.metrics->Increment(options.scan_counter);
      }
      if (options.apply_scan_predicates && bt.scan_predicate) {
        IDAA_ASSIGN_OR_RETURN(bool pass,
                              EvalPredicate(*bt.scan_predicate, row));
        if (!pass) continue;
      }
      right_rows.push_back(std::move(row));
    }
    pipeline = std::make_unique<JoinIterator>(
        std::move(pipeline), std::move(right_rows), bt.offset,
        bt.info->schema.NumColumns(), bt.join_type, bt.join_on.get());
  }

  if (plan.where) {
    pipeline =
        std::make_unique<FilterIterator>(std::move(pipeline), plan.where.get());
  }

  IDAA_ASSIGN_OR_RETURN(std::vector<Row> combined, Drain(pipeline.get()));
  return FinishSelect(plan, std::move(combined));
}

std::optional<size_t> ScanOutputCap(const sql::BoundSelect& plan) {
  if (plan.tables.size() != 1) return std::nullopt;
  if (plan.has_aggregation || plan.distinct) return std::nullopt;
  if (!plan.order_by.empty()) return std::nullopt;
  if (plan.where || plan.having) return std::nullopt;
  if (!plan.limit || *plan.limit < 0) return std::nullopt;
  return static_cast<size_t>(*plan.limit);
}

}  // namespace idaa::exec
