#include "sql/binder.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "sql/expression_eval.h"

namespace idaa::sql {

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kStddev: return "STDDEV";
    case AggFunc::kVariance: return "VARIANCE";
  }
  return "?";
}

std::string BoundExpr::Key() const {
  std::string out;
  switch (kind) {
    case BoundExprKind::kLiteral:
      out = "lit:" + literal.ToString();
      break;
    case BoundExprKind::kColumn:
      out = "col:" + std::to_string(index);
      break;
    case BoundExprKind::kSlotRef:
      out = "slot:" + std::to_string(index);
      break;
    case BoundExprKind::kUnary:
      out = unary_op == UnaryOp::kNeg ? "neg" : "not";
      break;
    case BoundExprKind::kBinary:
      out = std::string("bin:") + BinaryOpToString(binary_op);
      break;
    case BoundExprKind::kFunction:
      out = "fn:" + function_name;
      break;
    case BoundExprKind::kCase:
      out = has_else ? "case/else" : "case";
      break;
    case BoundExprKind::kInList:
      out = negated ? "notin" : "in";
      break;
    case BoundExprKind::kBetween:
      out = negated ? "notbetween" : "between";
      break;
    case BoundExprKind::kIsNull:
      out = negated ? "isnotnull" : "isnull";
      break;
    case BoundExprKind::kLike:
      out = negated ? "notlike" : "like";
      break;
    case BoundExprKind::kCast:
      out = std::string("cast:") + DataTypeToString(cast_type);
      break;
  }
  out += "(";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ",";
    out += children[i]->Key();
  }
  out += ")";
  return out;
}

BoundExprPtr BoundExpr::Clone() const {
  auto copy = std::make_unique<BoundExpr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->index = index;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  copy->function_name = function_name;
  copy->has_else = has_else;
  copy->negated = negated;
  copy->cast_type = cast_type;
  copy->result_type = result_type;
  copy->nullable = nullable;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

namespace {

/// Binding scope: the FROM-clause tables with their combined-layout offsets.
struct Scope {
  struct Entry {
    std::string effective_name;  // upper-cased alias or table name
    const Schema* schema;
    size_t offset;
  };
  std::vector<Entry> entries;

  /// Resolve a (possibly qualified) column to a combined-layout index.
  Result<std::pair<size_t, const ColumnDef*>> Resolve(
      const std::string& qualifier, const std::string& column) const {
    std::string want_table = Catalog::NormalizeName(qualifier);
    const ColumnDef* found_def = nullptr;
    size_t found_index = 0;
    int matches = 0;
    for (const Entry& e : entries) {
      if (!want_table.empty() && e.effective_name != want_table) continue;
      auto idx = e.schema->FindColumn(column);
      if (!idx) continue;
      ++matches;
      found_index = e.offset + *idx;
      found_def = &e.schema->Column(*idx);
    }
    if (matches == 0) {
      return Status::SemanticError(
          "column not found: " +
          (qualifier.empty() ? column : qualifier + "." + column));
    }
    if (matches > 1) {
      return Status::SemanticError("ambiguous column reference: " + column);
    }
    return std::make_pair(found_index, found_def);
  }
};

DataType InferArithType(BinaryOp op, const BoundExpr& lhs,
                        const BoundExpr& rhs) {
  if (op == BinaryOp::kConcatOp) return DataType::kVarchar;
  if (lhs.result_type == DataType::kDate && rhs.result_type == DataType::kDate &&
      op == BinaryOp::kSub) {
    return DataType::kInteger;
  }
  if (lhs.result_type == DataType::kDate) return DataType::kDate;
  if (lhs.result_type == DataType::kDouble ||
      rhs.result_type == DataType::kDouble) {
    return DataType::kDouble;
  }
  return DataType::kInteger;
}

DataType InferFunctionType(const std::string& fn,
                           const std::vector<BoundExprPtr>& args) {
  if (fn == "LENGTH" || fn == "SIGN" || fn == "YEAR" || fn == "MONTH" ||
      fn == "DAY") {
    return DataType::kInteger;
  }
  if (fn == "SQRT" || fn == "EXP" || fn == "LN" || fn == "LOG" ||
      fn == "POWER" || fn == "POW") {
    return DataType::kDouble;
  }
  if (fn == "UPPER" || fn == "LOWER" || fn == "UCASE" || fn == "LCASE" ||
      fn == "TRIM" || fn == "SUBSTR" || fn == "SUBSTRING" || fn == "CONCAT" ||
      fn == "REPLACE") {
    return DataType::kVarchar;
  }
  if (fn == "ABS" || fn == "FLOOR" || fn == "CEIL" || fn == "CEILING" ||
      fn == "ROUND" || fn == "MOD" || fn == "COALESCE" || fn == "NULLIF" ||
      fn == "LEAST" || fn == "GREATEST") {
    return args.empty() ? DataType::kDouble : args[0]->result_type;
  }
  return DataType::kDouble;
}

/// Does the (unbound) expression contain any aggregate function call?
bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunctionCall &&
      IsAggregateFunction(expr.function_name)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

Result<AggFunc> AggFuncFromName(const std::string& name, bool star_arg) {
  if (name == "COUNT") return star_arg ? AggFunc::kCountStar : AggFunc::kCount;
  if (name == "SUM") return AggFunc::kSum;
  if (name == "AVG") return AggFunc::kAvg;
  if (name == "MIN") return AggFunc::kMin;
  if (name == "MAX") return AggFunc::kMax;
  if (name == "STDDEV") return AggFunc::kStddev;
  if (name == "VARIANCE") return AggFunc::kVariance;
  return Status::SemanticError("unknown aggregate: " + name);
}

/// Bind an expression against a scope (no aggregates allowed).
Result<BoundExprPtr> BindExprScoped(const Expr& expr, const Scope& scope) {
  auto out = std::make_unique<BoundExpr>();
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      out->kind = BoundExprKind::kLiteral;
      out->literal = expr.literal;
      if (expr.literal.is_null()) {
        out->result_type = DataType::kVarchar;  // unconstrained; stays NULL
        out->nullable = true;
      } else {
        IDAA_ASSIGN_OR_RETURN(out->result_type, expr.literal.Type());
        out->nullable = false;
      }
      return out;
    }
    case ExprKind::kColumnRef: {
      IDAA_ASSIGN_OR_RETURN(auto hit,
                            scope.Resolve(expr.table_qualifier, expr.column_name));
      out->kind = BoundExprKind::kColumn;
      out->index = hit.first;
      out->result_type = hit.second->type;
      out->nullable = hit.second->nullable;
      return out;
    }
    case ExprKind::kStar:
      return Status::SemanticError("'*' is only valid in COUNT(*) or as a "
                                   "select item");
    case ExprKind::kUnary: {
      IDAA_ASSIGN_OR_RETURN(auto child, BindExprScoped(*expr.children[0], scope));
      out->kind = BoundExprKind::kUnary;
      out->unary_op = expr.unary_op;
      out->result_type = expr.unary_op == UnaryOp::kNot
                             ? DataType::kBoolean
                             : child->result_type;
      out->nullable = child->nullable;
      out->children.push_back(std::move(child));
      return out;
    }
    case ExprKind::kBinary: {
      IDAA_ASSIGN_OR_RETURN(auto lhs, BindExprScoped(*expr.children[0], scope));
      IDAA_ASSIGN_OR_RETURN(auto rhs, BindExprScoped(*expr.children[1], scope));
      out->kind = BoundExprKind::kBinary;
      out->binary_op = expr.binary_op;
      switch (expr.binary_op) {
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLt:
        case BinaryOp::kLtEq:
        case BinaryOp::kGt:
        case BinaryOp::kGtEq:
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          out->result_type = DataType::kBoolean;
          break;
        default:
          out->result_type = InferArithType(expr.binary_op, *lhs, *rhs);
      }
      out->nullable = lhs->nullable || rhs->nullable;
      out->children.push_back(std::move(lhs));
      out->children.push_back(std::move(rhs));
      return out;
    }
    case ExprKind::kFunctionCall: {
      if (IsAggregateFunction(expr.function_name)) {
        return Status::SemanticError(
            "aggregate " + expr.function_name +
            " is not allowed here (WHERE/JOIN/GROUP BY input)");
      }
      out->kind = BoundExprKind::kFunction;
      out->function_name = expr.function_name;
      for (const auto& arg : expr.children) {
        IDAA_ASSIGN_OR_RETURN(auto bound, BindExprScoped(*arg, scope));
        out->children.push_back(std::move(bound));
      }
      out->result_type = InferFunctionType(expr.function_name, out->children);
      out->nullable = true;
      return out;
    }
    case ExprKind::kCase: {
      out->kind = BoundExprKind::kCase;
      out->has_else = expr.has_else;
      DataType result = DataType::kVarchar;
      bool first_then = true;
      size_t pairs = (expr.children.size() - (expr.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < expr.children.size(); ++i) {
        IDAA_ASSIGN_OR_RETURN(auto bound,
                              BindExprScoped(*expr.children[i], scope));
        bool is_then = (i < 2 * pairs && i % 2 == 1) ||
                       (expr.has_else && i + 1 == expr.children.size());
        if (is_then && first_then) {
          result = bound->result_type;
          first_then = false;
        }
        out->children.push_back(std::move(bound));
      }
      out->result_type = result;
      out->nullable = true;
      return out;
    }
    case ExprKind::kInList:
    case ExprKind::kBetween:
    case ExprKind::kIsNull:
    case ExprKind::kLike: {
      out->kind = expr.kind == ExprKind::kInList    ? BoundExprKind::kInList
                  : expr.kind == ExprKind::kBetween ? BoundExprKind::kBetween
                  : expr.kind == ExprKind::kIsNull  ? BoundExprKind::kIsNull
                                                    : BoundExprKind::kLike;
      out->negated = expr.negated;
      for (const auto& child : expr.children) {
        IDAA_ASSIGN_OR_RETURN(auto bound, BindExprScoped(*child, scope));
        out->children.push_back(std::move(bound));
      }
      out->result_type = DataType::kBoolean;
      out->nullable = expr.kind != ExprKind::kIsNull;
      return out;
    }
    case ExprKind::kCast: {
      IDAA_ASSIGN_OR_RETURN(auto child, BindExprScoped(*expr.children[0], scope));
      out->kind = BoundExprKind::kCast;
      out->cast_type = expr.cast_type;
      out->result_type = expr.cast_type;
      out->nullable = child->nullable;
      out->children.push_back(std::move(child));
      return out;
    }
    case ExprKind::kParam:
      return Status::SemanticError(
          "unbound parameter marker '?'; bind values via "
          "Connection::Prepare/Bind before executing");
  }
  return Status::Internal("unhandled expression kind in binder");
}

/// Collect the set of combined-layout column indexes an expression touches.
void CollectColumnIndexes(const BoundExpr& expr, std::set<size_t>* out) {
  if (expr.kind == BoundExprKind::kColumn) out->insert(expr.index);
  for (const auto& child : expr.children) CollectColumnIndexes(*child, out);
}

/// Split a predicate tree into top-level AND conjuncts (bound form).
void SplitConjuncts(BoundExprPtr expr, std::vector<BoundExprPtr>* out) {
  if (expr->kind == BoundExprKind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->children[0]), out);
    SplitConjuncts(std::move(expr->children[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  BoundExprPtr acc = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    auto node = std::make_unique<BoundExpr>();
    node->kind = BoundExprKind::kBinary;
    node->binary_op = BinaryOp::kAnd;
    node->result_type = DataType::kBoolean;
    node->children.push_back(std::move(acc));
    node->children.push_back(std::move(conjuncts[i]));
    acc = std::move(node);
  }
  return acc;
}

/// Rewrites a combined-layout expression into a single-table layout by
/// subtracting the table's offset from every column index.
void ShiftColumns(BoundExpr* expr, size_t offset) {
  if (expr->kind == BoundExprKind::kColumn) expr->index -= offset;
  for (auto& child : expr->children) ShiftColumns(child.get(), offset);
}

/// Helper that binds post-aggregation expressions: matches group keys,
/// extracts aggregates, errors on stray columns.
class PostAggBinder {
 public:
  PostAggBinder(const Scope& scope, const std::vector<BoundExprPtr>& group_keys,
                std::vector<BoundAggregate>* aggregates)
      : scope_(scope), group_keys_(group_keys), aggregates_(aggregates) {
    for (size_t i = 0; i < group_keys.size(); ++i) {
      key_lookup_.emplace_back(group_keys[i]->Key(), i);
    }
  }

  Result<BoundExprPtr> Bind(const Expr& expr) {
    // Aggregate call -> slot reference past the group keys.
    if (expr.kind == ExprKind::kFunctionCall &&
        IsAggregateFunction(expr.function_name)) {
      return BindAggregate(expr);
    }
    // Try binding the whole subtree against the input scope; if it succeeds
    // and matches a group key, reference the key slot.
    if (!ContainsAggregate(expr)) {
      auto bound = BindExprScoped(expr, scope_);
      if (bound.ok()) {
        std::string key = (*bound)->Key();
        for (const auto& [k, slot] : key_lookup_) {
          if (k == key) {
            auto ref = std::make_unique<BoundExpr>();
            ref->kind = BoundExprKind::kSlotRef;
            ref->index = slot;
            ref->result_type = (*bound)->result_type;
            ref->nullable = (*bound)->nullable;
            return BoundExprPtr(std::move(ref));
          }
        }
        // Constant expressions are fine anywhere.
        std::set<size_t> cols;
        CollectColumnIndexes(**bound, &cols);
        if (cols.empty()) return std::move(*bound);
        return Status::SemanticError(
            "expression '" + expr.ToSql() +
            "' references columns that are neither grouped nor aggregated");
      }
    }
    // Recurse: rebuild the node around post-agg children.
    if (expr.children.empty()) {
      if (expr.kind == ExprKind::kLiteral) {
        return BindExprScoped(expr, scope_);
      }
      return Status::SemanticError(
          "column '" + expr.ToSql() + "' must appear in GROUP BY or inside an "
          "aggregate");
    }
    auto out = std::make_unique<BoundExpr>();
    switch (expr.kind) {
      case ExprKind::kUnary:
        out->kind = BoundExprKind::kUnary;
        out->unary_op = expr.unary_op;
        break;
      case ExprKind::kBinary:
        out->kind = BoundExprKind::kBinary;
        out->binary_op = expr.binary_op;
        break;
      case ExprKind::kFunctionCall:
        out->kind = BoundExprKind::kFunction;
        out->function_name = expr.function_name;
        break;
      case ExprKind::kCase:
        out->kind = BoundExprKind::kCase;
        out->has_else = expr.has_else;
        break;
      case ExprKind::kInList:
        out->kind = BoundExprKind::kInList;
        out->negated = expr.negated;
        break;
      case ExprKind::kBetween:
        out->kind = BoundExprKind::kBetween;
        out->negated = expr.negated;
        break;
      case ExprKind::kIsNull:
        out->kind = BoundExprKind::kIsNull;
        out->negated = expr.negated;
        break;
      case ExprKind::kLike:
        out->kind = BoundExprKind::kLike;
        out->negated = expr.negated;
        break;
      case ExprKind::kCast:
        out->kind = BoundExprKind::kCast;
        out->cast_type = expr.cast_type;
        break;
      default:
        return Status::SemanticError("unsupported expression over aggregates: " +
                                     expr.ToSql());
    }
    for (const auto& child : expr.children) {
      IDAA_ASSIGN_OR_RETURN(auto bound, Bind(*child));
      out->children.push_back(std::move(bound));
    }
    switch (out->kind) {
      case BoundExprKind::kBinary:
        switch (out->binary_op) {
          case BinaryOp::kEq:
          case BinaryOp::kNotEq:
          case BinaryOp::kLt:
          case BinaryOp::kLtEq:
          case BinaryOp::kGt:
          case BinaryOp::kGtEq:
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            out->result_type = DataType::kBoolean;
            break;
          default:
            out->result_type = InferArithType(out->binary_op, *out->children[0],
                                              *out->children[1]);
        }
        break;
      case BoundExprKind::kUnary:
        out->result_type = out->unary_op == UnaryOp::kNot
                               ? DataType::kBoolean
                               : out->children[0]->result_type;
        break;
      case BoundExprKind::kFunction:
        out->result_type = InferFunctionType(out->function_name, out->children);
        break;
      case BoundExprKind::kCase:
        out->result_type = out->children.size() >= 2
                               ? out->children[1]->result_type
                               : DataType::kVarchar;
        break;
      case BoundExprKind::kCast:
        out->result_type = out->cast_type;
        break;
      default:
        out->result_type = DataType::kBoolean;
    }
    out->nullable = true;
    return BoundExprPtr(std::move(out));
  }

  size_t num_keys() const { return group_keys_.size(); }

 private:
  Result<BoundExprPtr> BindAggregate(const Expr& expr) {
    BoundAggregate agg;
    bool star = !expr.children.empty() &&
                expr.children[0]->kind == ExprKind::kStar;
    if (expr.children.empty() && expr.function_name == "COUNT") star = true;
    IDAA_ASSIGN_OR_RETURN(agg.func, AggFuncFromName(expr.function_name, star));
    agg.distinct = expr.distinct;
    if (!star) {
      if (expr.children.size() != 1) {
        return Status::SemanticError(expr.function_name +
                                     " takes exactly one argument");
      }
      if (ContainsAggregate(*expr.children[0])) {
        return Status::SemanticError("nested aggregates are not allowed");
      }
      IDAA_ASSIGN_OR_RETURN(agg.arg, BindExprScoped(*expr.children[0], scope_));
    }
    switch (agg.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        agg.result_type = DataType::kInteger;
        break;
      case AggFunc::kAvg:
      case AggFunc::kStddev:
      case AggFunc::kVariance:
        agg.result_type = DataType::kDouble;
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        agg.result_type = agg.arg ? agg.arg->result_type : DataType::kInteger;
        break;
    }
    // Dedup identical aggregates.
    std::string key = std::string(AggFuncToString(agg.func)) +
                      (agg.distinct ? "/d" : "") +
                      (agg.arg ? agg.arg->Key() : "");
    size_t slot = aggregates_->size();
    for (size_t i = 0; i < agg_keys_.size(); ++i) {
      if (agg_keys_[i] == key) {
        slot = i;
        break;
      }
    }
    auto ref = std::make_unique<BoundExpr>();
    ref->kind = BoundExprKind::kSlotRef;
    ref->result_type = agg.result_type;
    ref->nullable = true;
    if (slot == aggregates_->size()) {
      agg_keys_.push_back(key);
      aggregates_->push_back(std::move(agg));
    }
    ref->index = group_keys_.size() + slot;
    return BoundExprPtr(std::move(ref));
  }

  const Scope& scope_;
  const std::vector<BoundExprPtr>& group_keys_;
  std::vector<BoundAggregate>* aggregates_;
  std::vector<std::pair<std::string, size_t>> key_lookup_;
  std::vector<std::string> agg_keys_;
};

std::string DeriveColumnName(const SelectItem& item, size_t position) {
  if (!item.alias.empty()) return Catalog::NormalizeName(item.alias);
  if (item.expr->kind == ExprKind::kColumnRef) {
    return Catalog::NormalizeName(item.expr->column_name);
  }
  return "C" + std::to_string(position + 1);
}

std::optional<size_t> AliasIndex(const std::vector<SelectItem>& items,
                                 const std::string& name) {
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].alias.empty() && EqualsIgnoreCase(items[i].alias, name)) {
      return i;
    }
  }
  return std::nullopt;
}

/// ORDER BY in an aggregating query: positions and aliases resolve through
/// the select list, everything else binds post-aggregation.
Result<BoundExprPtr> BindAggOrderBy(const Expr& expr,
                                    const std::vector<SelectItem>& items,
                                    PostAggBinder* post) {
  if (expr.kind == ExprKind::kLiteral && expr.literal.is_integer()) {
    int64_t pos = expr.literal.AsInteger();
    if (pos < 1 || static_cast<size_t>(pos) > items.size()) {
      return Status::SemanticError("ORDER BY position out of range");
    }
    return post->Bind(*items[pos - 1].expr);
  }
  if (expr.kind == ExprKind::kColumnRef && expr.table_qualifier.empty()) {
    if (auto idx = AliasIndex(items, expr.column_name)) {
      return post->Bind(*items[*idx].expr);
    }
  }
  return post->Bind(expr);
}

}  // namespace

Result<BoundSelect> Binder::BindSelect(const SelectStatement& stmt) const {
  BoundSelect out;
  out.distinct = stmt.distinct;
  out.limit = stmt.limit;

  // ---- FROM --------------------------------------------------------------
  Scope scope;
  bool has_left_join = false;
  size_t combined_width = 0;
  auto add_table = [&](const TableRef& ref, JoinType type) -> Status {
    auto info_r = catalog_.GetTable(ref.table_name);
    if (!info_r.ok()) return info_r.status();
    const TableInfo* info = *info_r;
    BoundTable bt;
    bt.info = info;
    bt.effective_name = Catalog::NormalizeName(ref.EffectiveName());
    bt.offset = combined_width;
    bt.join_type = type;
    for (const auto& existing : scope.entries) {
      if (existing.effective_name == bt.effective_name) {
        return Status::SemanticError("duplicate table name/alias in FROM: " +
                                     bt.effective_name);
      }
    }
    scope.entries.push_back({bt.effective_name, &info->schema, bt.offset});
    combined_width += info->schema.NumColumns();
    out.tables.push_back(std::move(bt));
    return Status::OK();
  };

  if (stmt.from) {
    IDAA_RETURN_IF_ERROR(add_table(*stmt.from, JoinType::kInner));
    for (const auto& join : stmt.joins) {
      if (join.type == JoinType::kLeft) has_left_join = true;
      IDAA_RETURN_IF_ERROR(add_table(join.table, join.type));
      if (join.on) {
        IDAA_ASSIGN_OR_RETURN(out.tables.back().join_on,
                              BindExprScoped(*join.on, scope));
      }
    }
  } else if (!stmt.joins.empty()) {
    return Status::SemanticError("JOIN without FROM");
  }

  // Combined schema may contain duplicate column names across tables; that
  // is fine for the layout but AddColumn rejects duplicates, so rebuild it
  // permissively.
  {
    Schema combined;
    std::vector<ColumnDef> cols;
    for (const auto& bt : out.tables) {
      for (const auto& col : bt.info->schema.columns()) {
        ColumnDef def = col;
        if (bt.join_type == JoinType::kLeft) def.nullable = true;
        // Qualify duplicates to keep names unique-ish for debugging.
        def.name = bt.effective_name + "." + col.name;
        cols.push_back(def);
      }
    }
    out.combined_schema = Schema(std::move(cols));
  }

  // ---- WHERE + pushdown ----------------------------------------------------
  if (stmt.where) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::SemanticError("aggregates are not allowed in WHERE");
    }
    IDAA_ASSIGN_OR_RETURN(BoundExprPtr where, BindExprScoped(*stmt.where, scope));
    if (!has_left_join && !out.tables.empty()) {
      std::vector<BoundExprPtr> conjuncts;
      SplitConjuncts(std::move(where), &conjuncts);
      std::vector<BoundExprPtr> residual;
      for (auto& conjunct : conjuncts) {
        std::set<size_t> cols;
        CollectColumnIndexes(*conjunct, &cols);
        // Find the unique table covering all referenced columns.
        const BoundTable* owner = nullptr;
        bool single_table = !cols.empty();
        for (size_t idx : cols) {
          const BoundTable* table = nullptr;
          for (const auto& bt : out.tables) {
            if (idx >= bt.offset &&
                idx < bt.offset + bt.info->schema.NumColumns()) {
              table = &bt;
              break;
            }
          }
          if (owner == nullptr) owner = table;
          if (table != owner) {
            single_table = false;
            break;
          }
        }
        if (single_table && owner != nullptr) {
          // Rewrite to the table's local layout and attach to its scan.
          BoundTable* mutable_owner = nullptr;
          for (auto& bt : out.tables) {
            if (&bt == owner) mutable_owner = &bt;
          }
          ShiftColumns(conjunct.get(), owner->offset);
          if (mutable_owner->scan_predicate) {
            std::vector<BoundExprPtr> merged;
            merged.push_back(std::move(mutable_owner->scan_predicate));
            merged.push_back(std::move(conjunct));
            mutable_owner->scan_predicate = CombineConjuncts(std::move(merged));
          } else {
            mutable_owner->scan_predicate = std::move(conjunct);
          }
        } else {
          residual.push_back(std::move(conjunct));
        }
      }
      out.where = CombineConjuncts(std::move(residual));
    } else {
      out.where = std::move(where);
    }
  }

  // ---- aggregation detection ------------------------------------------------
  bool any_aggregate = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (ContainsAggregate(*item.expr)) any_aggregate = true;
  }
  if (stmt.having && !any_aggregate) {
    return Status::SemanticError("HAVING requires GROUP BY or aggregates");
  }
  out.has_aggregation = any_aggregate;

  // ---- select list ----------------------------------------------------------
  // Expand stars first.
  std::vector<SelectItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      if (any_aggregate) {
        return Status::SemanticError("'*' cannot be combined with GROUP BY");
      }
      std::string qualifier =
          Catalog::NormalizeName(item.expr->table_qualifier);
      bool matched = false;
      for (const auto& bt : out.tables) {
        if (!qualifier.empty() && bt.effective_name != qualifier) continue;
        matched = true;
        for (const auto& col : bt.info->schema.columns()) {
          SelectItem expanded;
          expanded.expr = MakeColumnRef(bt.effective_name, col.name);
          expanded.alias = col.name;
          items.push_back(std::move(expanded));
        }
      }
      if (!matched) {
        return Status::SemanticError("no table matches '" + qualifier + ".*'");
      }
      continue;
    }
    SelectItem copy;
    copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    items.push_back(std::move(copy));
  }
  if (items.empty()) return Status::SemanticError("empty select list");

  if (any_aggregate) {
    for (const auto& g : stmt.group_by) {
      if (ContainsAggregate(*g)) {
        return Status::SemanticError("aggregates are not allowed in GROUP BY");
      }
      IDAA_ASSIGN_OR_RETURN(auto bound, BindExprScoped(*g, scope));
      out.group_keys.push_back(std::move(bound));
    }
    PostAggBinder post(scope, out.group_keys, &out.aggregates);
    for (size_t i = 0; i < items.size(); ++i) {
      IDAA_ASSIGN_OR_RETURN(auto bound, post.Bind(*items[i].expr));
      ColumnDef def;
      def.name = DeriveColumnName(items[i], i);
      def.type = bound->result_type;
      def.nullable = bound->nullable;
      out.select_exprs.push_back(std::move(bound));
      std::vector<ColumnDef> cols = out.output_schema.columns();
      cols.push_back(def);
      out.output_schema = Schema(std::move(cols));
    }
    if (stmt.having) {
      IDAA_ASSIGN_OR_RETURN(out.having, post.Bind(*stmt.having));
    }
    for (const auto& ob : stmt.order_by) {
      BoundOrderBy bound;
      bound.ascending = ob.ascending;
      IDAA_ASSIGN_OR_RETURN(bound.expr, BindAggOrderBy(*ob.expr, items, &post));
      out.order_by.push_back(std::move(bound));
    }
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      IDAA_ASSIGN_OR_RETURN(auto bound, BindExprScoped(*items[i].expr, scope));
      ColumnDef def;
      def.name = DeriveColumnName(items[i], i);
      def.type = bound->result_type;
      def.nullable = bound->nullable;
      out.select_exprs.push_back(std::move(bound));
      std::vector<ColumnDef> cols = out.output_schema.columns();
      cols.push_back(def);
      out.output_schema = Schema(std::move(cols));
    }
    for (const auto& ob : stmt.order_by) {
      BoundOrderBy bound;
      bound.ascending = ob.ascending;
      // ORDER BY <position> or <alias> or expression over the input.
      if (ob.expr->kind == ExprKind::kLiteral && ob.expr->literal.is_integer()) {
        int64_t pos = ob.expr->literal.AsInteger();
        if (pos < 1 || static_cast<size_t>(pos) > out.select_exprs.size()) {
          return Status::SemanticError("ORDER BY position out of range");
        }
        bound.expr = out.select_exprs[pos - 1]->Clone();
      } else if (ob.expr->kind == ExprKind::kColumnRef &&
                 ob.expr->table_qualifier.empty() &&
                 AliasIndex(items, ob.expr->column_name)) {
        bound.expr =
            out.select_exprs[*AliasIndex(items, ob.expr->column_name)]->Clone();
      } else {
        IDAA_ASSIGN_OR_RETURN(bound.expr, BindExprScoped(*ob.expr, scope));
      }
      out.order_by.push_back(std::move(bound));
    }
  }
  return out;
}

Result<BoundInsert> Binder::BindInsert(const InsertStatement& stmt) const {
  BoundInsert out;
  IDAA_ASSIGN_OR_RETURN(out.table, catalog_.GetTable(stmt.table_name));
  const Schema& schema = out.table->schema;

  if (stmt.columns.empty()) {
    out.column_mapping.resize(schema.NumColumns());
    for (size_t i = 0; i < schema.NumColumns(); ++i) out.column_mapping[i] = i;
  } else {
    for (const auto& name : stmt.columns) {
      IDAA_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
      out.column_mapping.push_back(idx);
    }
  }

  if (stmt.select) {
    auto select = std::make_unique<BoundSelect>();
    IDAA_ASSIGN_OR_RETURN(*select, BindSelect(*stmt.select));
    if (select->output_schema.NumColumns() != out.column_mapping.size()) {
      return Status::SemanticError(StrFormat(
          "INSERT source has %zu columns, target list has %zu",
          select->output_schema.NumColumns(), out.column_mapping.size()));
    }
    out.select = std::move(select);
    return out;
  }

  Scope empty_scope;
  for (const auto& value_row : stmt.values_rows) {
    if (value_row.size() != out.column_mapping.size()) {
      return Status::SemanticError("INSERT VALUES arity mismatch");
    }
    Row row(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < value_row.size(); ++i) {
      IDAA_ASSIGN_OR_RETURN(auto bound,
                            BindExprScoped(*value_row[i], empty_scope));
      IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*bound, Row{}));
      size_t target = out.column_mapping[i];
      if (!v.is_null() && !ValueMatchesType(v, schema.Column(target).type)) {
        IDAA_ASSIGN_OR_RETURN(v, v.CastTo(schema.Column(target).type));
      }
      row[target] = std::move(v);
    }
    IDAA_RETURN_IF_ERROR(schema.ValidateRow(row));
    out.values_rows.push_back(std::move(row));
  }
  if (out.values_rows.empty()) {
    return Status::SemanticError("INSERT requires VALUES or a SELECT source");
  }
  return out;
}

Result<BoundUpdate> Binder::BindUpdate(const UpdateStatement& stmt) const {
  BoundUpdate out;
  IDAA_ASSIGN_OR_RETURN(out.table, catalog_.GetTable(stmt.table_name));
  Scope scope;
  scope.entries.push_back(
      {Catalog::NormalizeName(stmt.table_name), &out.table->schema, 0});
  for (const auto& [col, expr] : stmt.assignments) {
    IDAA_ASSIGN_OR_RETURN(size_t idx, out.table->schema.ColumnIndex(col));
    if (ContainsAggregate(*expr)) {
      return Status::SemanticError("aggregates are not allowed in UPDATE SET");
    }
    IDAA_ASSIGN_OR_RETURN(auto bound, BindExprScoped(*expr, scope));
    out.assignments.emplace_back(idx, std::move(bound));
  }
  if (stmt.where) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::SemanticError("aggregates are not allowed in WHERE");
    }
    IDAA_ASSIGN_OR_RETURN(out.where, BindExprScoped(*stmt.where, scope));
  }
  return out;
}

Result<BoundDelete> Binder::BindDelete(const DeleteStatement& stmt) const {
  BoundDelete out;
  IDAA_ASSIGN_OR_RETURN(out.table, catalog_.GetTable(stmt.table_name));
  if (stmt.where) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::SemanticError("aggregates are not allowed in WHERE");
    }
    Scope scope;
    scope.entries.push_back(
        {Catalog::NormalizeName(stmt.table_name), &out.table->schema, 0});
    IDAA_ASSIGN_OR_RETURN(out.where, BindExprScoped(*stmt.where, scope));
  }
  return out;
}

Result<BoundExprPtr> Binder::BindScalar(const Expr& expr, const Schema& schema,
                                        const std::string& table_name) const {
  Scope scope;
  scope.entries.push_back({Catalog::NormalizeName(table_name), &schema, 0});
  if (ContainsAggregate(expr)) {
    return Status::SemanticError("aggregates are not allowed here");
  }
  return BindExprScoped(expr, scope);
}

std::vector<std::string> ReferencedTables(const SelectStatement& stmt) {
  std::vector<std::string> out;
  if (stmt.from) out.push_back(Catalog::NormalizeName(stmt.from->table_name));
  for (const auto& join : stmt.joins) {
    out.push_back(Catalog::NormalizeName(join.table.table_name));
  }
  return out;
}

std::vector<std::string> ReferencedTables(const Statement& stmt) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return ReferencedTables(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kInsert: {
      const auto& insert = static_cast<const InsertStatement&>(stmt);
      std::vector<std::string> out = {
          Catalog::NormalizeName(insert.table_name)};
      if (insert.select) {
        for (auto& t : ReferencedTables(*insert.select)) out.push_back(t);
      }
      return out;
    }
    case StatementKind::kUpdate:
      return {Catalog::NormalizeName(
          static_cast<const UpdateStatement&>(stmt).table_name)};
    case StatementKind::kDelete:
      return {Catalog::NormalizeName(
          static_cast<const DeleteStatement&>(stmt).table_name)};
    default:
      return {};
  }
}

}  // namespace idaa::sql
