// Abstract syntax tree for the implemented SQL subset.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace idaa::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kConcatOp,
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq,
  kAnd, kOr,
};

enum class UnaryOp : uint8_t { kNeg, kNot };

const char* BinaryOpToString(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kStar,        ///< bare * in select list or COUNT(*)
  kUnary,
  kBinary,
  kFunctionCall,
  kCase,
  kInList,
  kBetween,
  kIsNull,
  kLike,
  kCast,
  kParam,       ///< ? parameter marker; must be substituted before binding
};

/// Single variant-style AST node; `kind` selects which members are valid.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table_qualifier;  ///< may be empty
  std::string column_name;

  // kUnary
  UnaryOp unary_op = UnaryOp::kNeg;

  // kBinary
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunctionCall
  std::string function_name;  ///< upper-cased
  bool distinct = false;      ///< COUNT(DISTINCT x)

  // kCase: children = [when1, then1, when2, then2, ..., else?]
  bool has_else = false;

  // kInList / kBetween / kIsNull / kLike
  bool negated = false;

  // kCast
  DataType cast_type = DataType::kInteger;

  // kParam: 0-based position among the statement's parameter markers,
  // in source-text order.
  size_t param_index = 0;

  /// Operands; meaning depends on kind:
  ///  kUnary: [operand]; kBinary: [lhs, rhs]; kFunctionCall: args;
  ///  kInList: [probe, item...]; kBetween: [probe, lo, hi];
  ///  kIsNull: [operand]; kLike: [operand, pattern]; kCast: [operand].
  std::vector<ExprPtr> children;

  /// Render back to SQL text (parenthesized; round-trips through the parser).
  std::string ToSql() const;

  /// Deep copy.
  ExprPtr Clone() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeStar();
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args,
                         bool distinct = false);
ExprPtr MakeCast(ExprPtr operand, DataType type);
ExprPtr MakeParam(size_t index);

/// True for COUNT/SUM/AVG/MIN/MAX/STDDEV/VARIANCE by (upper-case) name.
bool IsAggregateFunction(const std::string& upper_name);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kGrant,
  kRevoke,
  kCall,
  kExplain,
};

/// Lower-case statement kind name ("select", "insert", ...), used e.g. for
/// per-statement-kind latency histogram names.
const char* StatementKindToString(StatementKind kind);

struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
  /// Round-trippable SQL text of the statement (used by the federation layer
  /// when shipping a statement to the accelerator).
  virtual std::string ToSql() const = 0;
};

using StatementPtr = std::unique_ptr<Statement>;

enum class JoinType : uint8_t { kInner, kLeft, kCross };

/// FROM-clause element: base table with optional alias.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< empty => table name
  std::string EffectiveName() const { return alias.empty() ? table_name : alias; }
};

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;  ///< null for CROSS
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty => derived from expression
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStatement : Statement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<TableRef> from;  ///< nullopt => SELECT <literals>
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  StatementKind kind() const override { return StatementKind::kSelect; }
  std::string ToSql() const override;
};

struct InsertStatement : Statement {
  std::string table_name;
  std::vector<std::string> columns;  ///< empty => all, in schema order
  /// Either literal rows ...
  std::vector<std::vector<ExprPtr>> values_rows;
  /// ... or INSERT INTO t SELECT ...
  std::unique_ptr<SelectStatement> select;

  StatementKind kind() const override { return StatementKind::kInsert; }
  std::string ToSql() const override;
};

struct UpdateStatement : Statement {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< may be null

  StatementKind kind() const override { return StatementKind::kUpdate; }
  std::string ToSql() const override;
};

struct DeleteStatement : Statement {
  std::string table_name;
  ExprPtr where;  ///< may be null

  StatementKind kind() const override { return StatementKind::kDelete; }
  std::string ToSql() const override;
};

struct ColumnDefAst {
  std::string name;
  DataType type = DataType::kInteger;
  bool not_null = false;
};

struct CreateTableStatement : Statement {
  std::string table_name;
  std::vector<ColumnDefAst> columns;  ///< empty for CREATE TABLE ... AS SELECT
  bool in_accelerator = false;             ///< CREATE TABLE ... IN ACCELERATOR
  /// Optional explicit target: IN ACCELERATOR accel2 (default: balanced).
  std::optional<std::string> accelerator_name;
  std::optional<std::string> distribute_by;  ///< DISTRIBUTE BY (col)
  bool if_not_exists = false;
  /// CTAS: schema derived from the query; rows inserted on creation.
  std::unique_ptr<SelectStatement> as_select;

  StatementKind kind() const override { return StatementKind::kCreateTable; }
  std::string ToSql() const override;
};

struct DropTableStatement : Statement {
  std::string table_name;
  bool if_exists = false;

  StatementKind kind() const override { return StatementKind::kDropTable; }
  std::string ToSql() const override;
};

struct GrantStatement : Statement {
  std::vector<std::string> privileges;  ///< SELECT/INSERT/UPDATE/DELETE/EXECUTE
  std::string object_name;              ///< table or procedure
  std::string grantee;

  StatementKind kind() const override { return StatementKind::kGrant; }
  std::string ToSql() const override;
};

struct RevokeStatement : Statement {
  std::vector<std::string> privileges;
  std::string object_name;
  std::string grantee;

  StatementKind kind() const override { return StatementKind::kRevoke; }
  std::string ToSql() const override;
};

/// EXPLAIN <select>: routing decision + access-path report.
/// EXPLAIN ANALYZE <select>: executes the statement and reports the traced
/// stage tree (per-stage timings, row counts, boundary bytes).
struct ExplainStatement : Statement {
  std::unique_ptr<SelectStatement> select;
  bool analyze = false;

  StatementKind kind() const override { return StatementKind::kExplain; }
  std::string ToSql() const override;
};

/// CALL proc('arg', 42, ...) — arguments must be literals.
struct CallStatement : Statement {
  std::string procedure_name;
  std::vector<Value> arguments;

  StatementKind kind() const override { return StatementKind::kCall; }
  std::string ToSql() const override;
};

}  // namespace idaa::sql
