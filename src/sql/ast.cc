#include "sql/ast.h"

#include "common/string_util.h"

namespace idaa::sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcatOp: return "||";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNotEq: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLtEq: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGtEq: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

namespace {

std::string QuoteSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string LiteralToSql(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_varchar()) return QuoteSqlString(v.AsVarchar());
  if (v.is_date()) return "DATE " + QuoteSqlString(FormatDate(v.AsDate()));
  if (v.is_timestamp()) return "TIMESTAMP " + std::to_string(v.AsTimestamp());
  return v.ToString();
}

}  // namespace

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return LiteralToSql(literal);
    case ExprKind::kColumnRef:
      return table_qualifier.empty() ? column_name
                                     : table_qualifier + "." + column_name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNeg ? "-" : "NOT ") + "(" +
             children[0]->ToSql() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->ToSql() + " " + BinaryOpToString(binary_op) +
             " " + children[1]->ToSql() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToSql();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToSql() + " THEN " +
               children[2 * i + 1]->ToSql();
      }
      if (has_else) out += " ELSE " + children.back()->ToSql();
      return out + " END";
    }
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToSql();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToSql();
      }
      return out + "))";
    }
    case ExprKind::kBetween:
      return "(" + children[0]->ToSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToSql() + " AND " + children[2]->ToSql() + ")";
    case ExprKind::kIsNull:
      return "(" + children[0]->ToSql() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case ExprKind::kLike:
      return "(" + children[0]->ToSql() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToSql() + ")";
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToSql() + " AS " +
             DataTypeToString(cast_type) + ")";
    case ExprKind::kParam:
      return "?";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->table_qualifier = table_qualifier;
  copy->column_name = column_name;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  copy->function_name = function_name;
  copy->distinct = distinct;
  copy->has_else = has_else;
  copy->negated = negated;
  copy->cast_type = cast_type;
  copy->param_index = param_index;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(table);
  e->column_name = std::move(column);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args,
                         bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = ToUpper(name);
  e->distinct = distinct;
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCast(ExprPtr operand, DataType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCast;
  e->cast_type = type;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeParam(size_t index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParam;
  e->param_index = index;
  return e;
}

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" || upper_name == "AVG" ||
         upper_name == "MIN" || upper_name == "MAX" ||
         upper_name == "STDDEV" || upper_name == "VARIANCE";
}

// ---------------------------------------------------------------------------
// Statement::ToSql
// ---------------------------------------------------------------------------

std::string SelectStatement::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToSql();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (from) {
    out += " FROM " + from->table_name;
    if (!from->alias.empty()) out += " " + from->alias;
    for (const auto& join : joins) {
      switch (join.type) {
        case JoinType::kInner: out += " JOIN "; break;
        case JoinType::kLeft: out += " LEFT JOIN "; break;
        case JoinType::kCross: out += " CROSS JOIN "; break;
      }
      out += join.table.table_name;
      if (!join.table.alias.empty()) out += " " + join.table.alias;
      if (join.on) out += " ON " + join.on->ToSql();
    }
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      out += order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

std::string InsertStatement::ToSql() const {
  std::string out = "INSERT INTO " + table_name;
  if (!columns.empty()) {
    out += " (";
    out += Join(columns, ", ");
    out += ")";
  }
  if (select) {
    out += " " + select->ToSql();
    return out;
  }
  out += " VALUES ";
  for (size_t r = 0; r < values_rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t c = 0; c < values_rows[r].size(); ++c) {
      if (c > 0) out += ", ";
      out += values_rows[r][c]->ToSql();
    }
    out += ")";
  }
  return out;
}

std::string UpdateStatement::ToSql() const {
  std::string out = "UPDATE " + table_name + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second->ToSql();
  }
  if (where) out += " WHERE " + where->ToSql();
  return out;
}

std::string DeleteStatement::ToSql() const {
  std::string out = "DELETE FROM " + table_name;
  if (where) out += " WHERE " + where->ToSql();
  return out;
}

std::string CreateTableStatement::ToSql() const {
  std::string out = "CREATE TABLE ";
  if (if_not_exists) out += "IF NOT EXISTS ";
  out += table_name;
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns[i].name;
      out += " ";
      out += DataTypeToString(columns[i].type);
      if (columns[i].not_null) out += " NOT NULL";
    }
    out += ")";
  }
  if (in_accelerator) {
    out += " IN ACCELERATOR";
    if (accelerator_name) out += " " + *accelerator_name;
  }
  if (distribute_by) out += " DISTRIBUTE BY (" + *distribute_by + ")";
  if (as_select) out += " AS " + as_select->ToSql();
  return out;
}

std::string DropTableStatement::ToSql() const {
  std::string out = "DROP TABLE ";
  if (if_exists) out += "IF EXISTS ";
  return out + table_name;
}

std::string GrantStatement::ToSql() const {
  return "GRANT " + Join(privileges, ", ") + " ON " + object_name + " TO " +
         grantee;
}

std::string RevokeStatement::ToSql() const {
  return "REVOKE " + Join(privileges, ", ") + " ON " + object_name + " TO " +
         grantee;
}

std::string ExplainStatement::ToSql() const {
  return (analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ") + select->ToSql();
}

const char* StatementKindToString(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect: return "select";
    case StatementKind::kInsert: return "insert";
    case StatementKind::kUpdate: return "update";
    case StatementKind::kDelete: return "delete";
    case StatementKind::kCreateTable: return "create_table";
    case StatementKind::kDropTable: return "drop_table";
    case StatementKind::kGrant: return "grant";
    case StatementKind::kRevoke: return "revoke";
    case StatementKind::kCall: return "call";
    case StatementKind::kExplain: return "explain";
  }
  return "unknown";
}

std::string CallStatement::ToSql() const {
  std::string out = "CALL " + procedure_name + "(";
  for (size_t i = 0; i < arguments.size(); ++i) {
    if (i > 0) out += ", ";
    out += LiteralToSql(arguments[i]);
  }
  return out + ")";
}

}  // namespace idaa::sql
