// Recursive-descent parser for the SQL subset (see DESIGN.md §3).

#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace idaa::sql {

/// Parse one SQL statement (a trailing ';' is allowed).
Result<StatementPtr> ParseStatement(const std::string& sql);

/// Parse a standalone scalar expression (used by tests and analytics).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace idaa::sql
