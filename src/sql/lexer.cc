#include "sql/lexer.h"

#include <cctype>
#include <charconv>

#include "common/string_util.h"

namespace idaa::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](TokenType type, std::string text, size_t pos) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        push(TokenType::kKeyword, upper, start);
      } else {
        push(TokenType::kIdentifier, word, start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      Token t;
      t.position = start;
      t.text = text;
      if (is_double) {
        t.type = TokenType::kDoubleLit;
        t.double_value = std::stod(text);
      } else {
        t.type = TokenType::kIntegerLit;
        int64_t v = 0;
        auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
        if (ec != std::errc()) {
          return Status::SyntaxError("integer literal out of range: " + text);
        }
        (void)ptr;
        t.int_value = v;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += sql[i++];
      }
      if (!closed) {
        return Status::SyntaxError("unterminated string literal at offset " +
                                   std::to_string(start));
      }
      push(TokenType::kStringLit, std::move(body), start);
      continue;
    }
    if (c == '"') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        body += sql[i++];
      }
      if (!closed) {
        return Status::SyntaxError("unterminated quoted identifier at offset " +
                                   std::to_string(start));
      }
      push(TokenType::kIdentifier, std::move(body), start);
      continue;
    }
    switch (c) {
      case ',': push(TokenType::kComma, ",", start); ++i; break;
      case '(': push(TokenType::kLParen, "(", start); ++i; break;
      case ')': push(TokenType::kRParen, ")", start); ++i; break;
      case '*': push(TokenType::kStar, "*", start); ++i; break;
      case '+': push(TokenType::kPlus, "+", start); ++i; break;
      case '-': push(TokenType::kMinus, "-", start); ++i; break;
      case '/': push(TokenType::kSlash, "/", start); ++i; break;
      case '%': push(TokenType::kPercent, "%", start); ++i; break;
      case '.': push(TokenType::kDot, ".", start); ++i; break;
      case ';': push(TokenType::kSemicolon, ";", start); ++i; break;
      case '?': push(TokenType::kParam, "?", start); ++i; break;
      case '=': push(TokenType::kEq, "=", start); ++i; break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNotEq, "!=", start);
          i += 2;
        } else {
          return Status::SyntaxError("unexpected '!' at offset " +
                                     std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLtEq, "<=", start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNotEq, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGtEq, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        break;
      case '|':
        if (i + 1 < n && sql[i + 1] == '|') {
          push(TokenType::kConcat, "||", start);
          i += 2;
        } else {
          return Status::SyntaxError("unexpected '|' at offset " +
                                     std::to_string(start));
        }
        break;
      default:
        return Status::SyntaxError(StrFormat(
            "unexpected character '%c' at offset %zu", c, start));
    }
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.position = n;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace idaa::sql
