#include "sql/token.h"

#include <unordered_set>

namespace idaa::sql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEof: return "EOF";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kKeyword: return "keyword";
    case TokenType::kIntegerLit: return "integer literal";
    case TokenType::kDoubleLit: return "double literal";
    case TokenType::kStringLit: return "string literal";
    case TokenType::kComma: return ",";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNotEq: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLtEq: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGtEq: return ">=";
    case TokenType::kDot: return ".";
    case TokenType::kSemicolon: return ";";
    case TokenType::kConcat: return "||";
    case TokenType::kParam: return "?";
  }
  return "?";
}

bool IsReservedKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
      "ASC", "DESC", "DISTINCT", "AS", "AND", "OR", "NOT", "NULL", "IS",
      "IN", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END",
      "CAST", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON",
      "CREATE", "TABLE", "DROP", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
      "DELETE", "PRIMARY", "KEY", "ACCELERATOR", "DISTRIBUTE", "TRUE",
      "FALSE", "GRANT", "REVOKE", "TO", "CALL", "EXECUTE", "COMMIT",
      "ROLLBACK", "BEGIN", "TRANSACTION", "EXISTS", "IF", "UNION", "ALL",
      "DATE", "TIMESTAMP", "REPLICATION", "EXPLAIN", "ANALYZE",
  };
  return kKeywords.count(upper_word) > 0;
}

}  // namespace idaa::sql
