// Hand-written SQL lexer.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace idaa::sql {

/// Tokenize a SQL statement. Keywords are upper-cased; identifiers keep
/// their case (the catalog normalizes later); 'strings' support doubled
/// quote escapes; -- comments run to end of line.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace idaa::sql
