// Plan cache: normalized-SQL keyed LRU of parsed statement templates.
//
// Two cooperating halves keep cache hits provably equivalent to a fresh parse:
//
//  1. A token-level normalizer (NormalizeForCache) runs on every statement.
//     It renders the token stream into a canonical key, turning integer /
//     double / string literals in expression position into `?` placeholders
//     and collecting their values in token order. Literals whose position is
//     structural rather than data (LIMIT counts, CAST type lengths, DATE /
//     TIMESTAMP literal bodies) stay inline in the key, because the parser
//     folds or consumes them in ways a parameter marker cannot express.
//  2. On a cache miss the statement is parsed once and the AST is
//     parameterized (ParameterizeStatement): literal nodes are replaced by
//     kParam markers in clause order, collecting values. The miss path
//     cross-validates the AST-collected values against the token-collected
//     ones; any disagreement marks the statement non-cacheable and execution
//     falls back to the freshly parsed tree. Statements that share a key
//     therefore share a token structure, hence an AST shape, hence identical
//     parameter positions — substituting a hit's token-extracted values into
//     the template reproduces exactly what parsing the hit's text would have.
//
// Prepared statements reuse the same machinery with parameterize_literals =
// false: only explicit `?` markers become parameters and literals render
// inline, so a prepared statement's key is stable across Bind calls.

#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace idaa::sql {

/// Output of token-level normalization.
struct NormalizedStatement {
  /// True only for SELECT/INSERT/UPDATE/DELETE (the kinds with a clone path).
  bool cacheable = false;
  /// Statement text contained explicit `?` markers (prepared-only traffic).
  bool has_explicit_params = false;
  /// Canonical key: token stream re-rendered with quoted identifiers and
  /// parameterized literals. Empty when !cacheable.
  std::string key;
  /// Extracted literal / marker values in token order. Explicit `?` markers
  /// contribute no value here (they are bound later).
  std::vector<Value> params;
};

/// Tokenizes `sql` and renders the canonical cache key. Never parses.
/// `parameterize_literals` selects ad-hoc mode (true: literals become params)
/// vs prepared mode (false: literals inline, only `?` markers count).
Result<NormalizedStatement> NormalizeForCache(const std::string& sql,
                                              bool parameterize_literals);

/// Replaces parameterizable literal nodes (non-null integer/double/varchar)
/// with kParam markers in clause order, appending their values to `values`.
/// Returns the number of parameters the statement now carries (pre-existing
/// kParam nodes are re-indexed into the same ordering).
size_t ParameterizeStatement(Statement& stmt, std::vector<Value>* values);

/// Replaces every kParam node with the literal at its index. Fails if any
/// index is out of range or the marker count differs from params.size().
Status SubstituteParams(Statement& stmt, const std::vector<Value>& params);

/// Number of kParam markers in the statement.
size_t CountParams(const Statement& stmt);

/// Deep copy. Supports kSelect/kInsert/kUpdate/kDelete; null otherwise.
StatementPtr CloneStatement(const Statement& stmt);

/// An immutable parsed template shared across sessions. Thread-safe to read
/// concurrently (Instantiate only clones).
struct CachedPlan {
  std::string key;
  StatementPtr template_stmt;  ///< may contain kParam markers
  size_t num_params = 0;
  StatementKind stmt_kind = StatementKind::kSelect;
  std::vector<std::string> tables;  ///< normalized referenced table names

  /// Clone the template and substitute `params`.
  Result<StatementPtr> Instantiate(const std::vector<Value>& params) const;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t size = 0;
};

/// Thread-safe LRU cache of CachedPlan templates keyed on normalized SQL.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 512);

  /// Returns the plan for `key` (touching LRU order) or nullptr.
  std::shared_ptr<const CachedPlan> Get(const std::string& key);

  /// Inserts (or replaces) the plan under plan->key, evicting LRU overflow.
  void Put(std::shared_ptr<const CachedPlan> plan);

  void Clear();
  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const CachedPlan> plan;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace idaa::sql
