#include "sql/plan_cache.h"

#include <algorithm>
#include <functional>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace idaa::sql {
namespace {

std::string QuoteIdent(const std::string& name) {
  // Always re-render identifiers quoted so `FROM t x` and `FROM "t x"`
  // cannot collide on the same key.
  return "\"" + name + "\"";
}

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

/// True when the literal at `i` sits in a structural position the parser
/// consumes directly (not through ParsePrimary), so it must stay inline:
///   LIMIT <int>, DATE '<str>', TIMESTAMP <int>, <type> ( <int> ).
bool IsStructuralLiteral(const std::vector<Token>& toks, size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  const Token& tok = toks[i];
  if (prev.type == TokenType::kKeyword) {
    if (prev.text == "LIMIT" && tok.type == TokenType::kIntegerLit) return true;
    if (prev.text == "DATE" && tok.type == TokenType::kStringLit) return true;
    if (prev.text == "TIMESTAMP" && tok.type == TokenType::kIntegerLit) {
      return true;
    }
  }
  // Type length: CAST(x AS VARCHAR(10)) — VARCHAR lexes as an identifier.
  if (prev.type == TokenType::kLParen && i >= 2 &&
      tok.type == TokenType::kIntegerLit) {
    const Token& before = toks[i - 2];
    if (before.type == TokenType::kIdentifier ||
        before.type == TokenType::kKeyword) {
      if (DataTypeFromString(ToUpper(before.text)).ok()) return true;
    }
  }
  return false;
}

std::string RenderInline(const Token& tok) {
  switch (tok.type) {
    case TokenType::kIntegerLit:
    case TokenType::kDoubleLit:
      // Raw spelling: keeps 1.50 and 1.5 distinct rather than guessing at
      // a canonical float rendering.
      return tok.text;
    case TokenType::kStringLit:
      return QuoteString(tok.text);
    default:
      return tok.text;
  }
}

// ---------------------------------------------------------------------------
// AST walking
// ---------------------------------------------------------------------------

/// Pre-order visit of every expression node under `root`, children in source
/// order. `fn` may replace the node it is handed.
void WalkExpr(ExprPtr& root, const std::function<void(ExprPtr&)>& fn) {
  if (!root) return;
  fn(root);
  for (ExprPtr& child : root->children) WalkExpr(child, fn);
}

/// Visits every root expression slot of a DML statement in clause order —
/// the same order the clauses appear in the statement text, which is what
/// makes AST parameter order line up with token order.
void WalkStatementExprs(Statement& stmt,
                        const std::function<void(ExprPtr&)>& fn) {
  switch (stmt.kind()) {
    case StatementKind::kSelect: {
      auto& s = static_cast<SelectStatement&>(stmt);
      for (auto& item : s.items) WalkExpr(item.expr, fn);
      for (auto& join : s.joins) WalkExpr(join.on, fn);
      WalkExpr(s.where, fn);
      for (auto& g : s.group_by) WalkExpr(g, fn);
      WalkExpr(s.having, fn);
      for (auto& o : s.order_by) WalkExpr(o.expr, fn);
      return;
    }
    case StatementKind::kInsert: {
      auto& s = static_cast<InsertStatement&>(stmt);
      for (auto& row : s.values_rows) {
        for (auto& e : row) WalkExpr(e, fn);
      }
      if (s.select) WalkStatementExprs(*s.select, fn);
      return;
    }
    case StatementKind::kUpdate: {
      auto& s = static_cast<UpdateStatement&>(stmt);
      for (auto& [col, e] : s.assignments) WalkExpr(e, fn);
      WalkExpr(s.where, fn);
      return;
    }
    case StatementKind::kDelete: {
      auto& s = static_cast<DeleteStatement&>(stmt);
      WalkExpr(s.where, fn);
      return;
    }
    default:
      return;
  }
}

bool IsParameterizableLiteral(const Expr& e) {
  if (e.kind != ExprKind::kLiteral) return false;
  // NULL / booleans lex as keywords; DATE / TIMESTAMP literals stay inline
  // in the normalized key, so the AST side must skip them symmetrically.
  return e.literal.is_integer() || e.literal.is_double() ||
         e.literal.is_varchar();
}

std::unique_ptr<SelectStatement> CloneSelect(const SelectStatement& s) {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = s.distinct;
  for (const auto& item : s.items) {
    SelectItem copy;
    copy.expr = item.expr ? item.expr->Clone() : nullptr;
    copy.alias = item.alias;
    out->items.push_back(std::move(copy));
  }
  out->from = s.from;
  for (const auto& join : s.joins) {
    JoinClause jc;
    jc.type = join.type;
    jc.table = join.table;
    jc.on = join.on ? join.on->Clone() : nullptr;
    out->joins.push_back(std::move(jc));
  }
  out->where = s.where ? s.where->Clone() : nullptr;
  for (const auto& g : s.group_by) {
    out->group_by.push_back(g ? g->Clone() : nullptr);
  }
  out->having = s.having ? s.having->Clone() : nullptr;
  for (const auto& o : s.order_by) {
    OrderByItem copy;
    copy.expr = o.expr ? o.expr->Clone() : nullptr;
    copy.ascending = o.ascending;
    out->order_by.push_back(std::move(copy));
  }
  out->limit = s.limit;
  return out;
}

}  // namespace

Result<NormalizedStatement> NormalizeForCache(const std::string& sql,
                                              bool parameterize_literals) {
  IDAA_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(sql));
  NormalizedStatement out;
  if (toks.empty() || toks[0].type != TokenType::kKeyword) return out;
  const std::string& head = toks[0].text;
  if (head != "SELECT" && head != "INSERT" && head != "UPDATE" &&
      head != "DELETE") {
    return out;
  }
  out.cacheable = true;
  std::string key;
  key.reserve(sql.size() + 16);
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.type == TokenType::kEof) break;
    if (tok.type == TokenType::kSemicolon) continue;
    if (!key.empty()) key += ' ';
    switch (tok.type) {
      case TokenType::kIdentifier:
        key += QuoteIdent(tok.text);
        break;
      case TokenType::kParam:
        out.has_explicit_params = true;
        key += '?';
        break;
      case TokenType::kIntegerLit:
      case TokenType::kDoubleLit:
      case TokenType::kStringLit:
        if (parameterize_literals && !IsStructuralLiteral(toks, i)) {
          key += '?';
          if (tok.type == TokenType::kIntegerLit) {
            out.params.push_back(Value::Integer(tok.int_value));
          } else if (tok.type == TokenType::kDoubleLit) {
            out.params.push_back(Value::Double(tok.double_value));
          } else {
            out.params.push_back(Value::Varchar(tok.text));
          }
        } else {
          key += RenderInline(tok);
        }
        break;
      default:
        key += tok.text;
        break;
    }
  }
  out.key = std::move(key);
  return out;
}

size_t ParameterizeStatement(Statement& stmt, std::vector<Value>* values) {
  size_t next = 0;
  WalkStatementExprs(stmt, [&](ExprPtr& e) {
    if (e->kind == ExprKind::kParam) {
      e->param_index = next++;
    } else if (IsParameterizableLiteral(*e)) {
      if (values) values->push_back(e->literal);
      e = MakeParam(next++);
    }
  });
  return next;
}

Status SubstituteParams(Statement& stmt, const std::vector<Value>& params) {
  // Validate first so a mismatch leaves the statement untouched.
  size_t markers = 0;
  size_t max_index = 0;
  WalkStatementExprs(stmt, [&](ExprPtr& e) {
    if (e->kind != ExprKind::kParam) return;
    ++markers;
    max_index = std::max(max_index, e->param_index);
  });
  if (markers != params.size()) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(markers) +
        " parameter markers but " + std::to_string(params.size()) +
        " values were bound");
  }
  if (markers > 0 && max_index >= params.size()) {
    return Status::InvalidArgument(
        "parameter marker " + std::to_string(max_index + 1) +
        " has no bound value (" + std::to_string(params.size()) + " bound)");
  }
  WalkStatementExprs(stmt, [&](ExprPtr& e) {
    if (e->kind != ExprKind::kParam) return;
    e = MakeLiteral(params[e->param_index]);
  });
  return Status::OK();
}

size_t CountParams(const Statement& stmt) {
  size_t n = 0;
  WalkStatementExprs(const_cast<Statement&>(stmt), [&](ExprPtr& e) {
    if (e->kind == ExprKind::kParam) ++n;
  });
  return n;
}

StatementPtr CloneStatement(const Statement& stmt) {
  switch (stmt.kind()) {
    case StatementKind::kSelect:
      return CloneSelect(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kInsert: {
      const auto& s = static_cast<const InsertStatement&>(stmt);
      auto out = std::make_unique<InsertStatement>();
      out->table_name = s.table_name;
      out->columns = s.columns;
      for (const auto& row : s.values_rows) {
        std::vector<ExprPtr> copy;
        copy.reserve(row.size());
        for (const auto& e : row) copy.push_back(e ? e->Clone() : nullptr);
        out->values_rows.push_back(std::move(copy));
      }
      if (s.select) out->select = CloneSelect(*s.select);
      return out;
    }
    case StatementKind::kUpdate: {
      const auto& s = static_cast<const UpdateStatement&>(stmt);
      auto out = std::make_unique<UpdateStatement>();
      out->table_name = s.table_name;
      for (const auto& [col, e] : s.assignments) {
        out->assignments.emplace_back(col, e ? e->Clone() : nullptr);
      }
      out->where = s.where ? s.where->Clone() : nullptr;
      return out;
    }
    case StatementKind::kDelete: {
      const auto& s = static_cast<const DeleteStatement&>(stmt);
      auto out = std::make_unique<DeleteStatement>();
      out->table_name = s.table_name;
      out->where = s.where ? s.where->Clone() : nullptr;
      return out;
    }
    default:
      return nullptr;
  }
}

Result<StatementPtr> CachedPlan::Instantiate(
    const std::vector<Value>& params) const {
  if (!template_stmt) return Status::Internal("cached plan has no template");
  StatementPtr copy = CloneStatement(*template_stmt);
  if (!copy) return Status::Internal("cached plan kind is not cloneable");
  IDAA_RETURN_IF_ERROR(SubstituteParams(*copy, params));
  return copy;
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

PlanCache::PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

void PlanCache::Put(std::shared_ptr<const CachedPlan> plan) {
  if (!plan || plan->key.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(plan->key);
  if (it != map_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(plan->key);
  const std::string& key = lru_.front();
  map_[key] = Entry{std::move(plan), lru_.begin()};
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = map_.size();
  return s;
}

}  // namespace idaa::sql
