// Evaluation of bound expressions with SQL three-valued logic.

#pragma once

#include "common/result.h"
#include "common/row.h"
#include "sql/binder.h"

namespace idaa::sql {

/// Evaluate a bound expression against a row. NULLs propagate per SQL
/// semantics (comparisons with NULL yield NULL; AND/OR use 3VL).
Result<Value> EvalExpr(const BoundExpr& expr, const Row& row);

/// Evaluate a predicate: returns true only if the expression evaluates to
/// TRUE (NULL and FALSE both reject the row).
Result<bool> EvalPredicate(const BoundExpr& expr, const Row& row);

/// Compute one aggregate over already-collected input values. Used by both
/// executors; `inputs` holds the evaluated argument per qualifying row
/// (for COUNT(*) pass row count via `count_star_rows`).
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(const BoundAggregate& agg);

  /// Feed the evaluated argument of one row (ignored for COUNT(*)).
  void Accumulate(const Value& v);

  /// Feed one row for COUNT(*).
  void AccumulateRow() { ++row_count_; }

  // Batch-path fast paths (callers guarantee !distinct). Each is exactly
  // equivalent to Accumulate(...) of the stated Value without the boxing.
  void AccumulateInt64(int64_t v);             // Accumulate(Value::Integer(v))
  void AccumulateDouble(double v);             // Accumulate(Value::Double(v))
  void AccumulateNull() { ++row_count_; }      // Accumulate(Value::Null())
  /// COUNT(x) over a non-null argument: Finalize only reads the counters,
  /// so min/max/sum bookkeeping is skipped.
  void AccumulateCountNonNull() {
    ++row_count_;
    ++non_null_count_;
  }

  // Run-folded fast paths for RLE-encoded input: each is exactly
  // equivalent to calling the corresponding single-row method n times.
  // Counters fold to += n; min/max update once; integer sums fold via
  // one multiply (wrap-exact mod 2^64, matching n repeated wrapping
  // adds). Floating-point sums are NOT associative, so sum_/sum_sq_
  // replay the adds one by one unless Finalize never reads them for
  // this aggregate — bit-identity with the row-at-a-time path is the
  // contract the equivalence battery pins.
  void AccumulateRowRun(uint64_t n) { row_count_ += n; }
  void AccumulateNullRun(uint64_t n) { row_count_ += n; }
  void AccumulateCountNonNullRun(uint64_t n) {
    row_count_ += n;
    non_null_count_ += n;
  }
  void AccumulateInt64Run(int64_t v, uint64_t n);
  void AccumulateDoubleRun(double v, uint64_t n);

  /// Final aggregate value (SQL semantics: SUM/AVG/... of no rows is NULL,
  /// COUNT is 0).
  Value Finalize() const;

  /// Combine a partial accumulator computed elsewhere (slice-parallel
  /// aggregation). DISTINCT accumulators are not mergeable.
  Status Merge(const AggregateAccumulator& other);

 private:
  AggFunc func_;
  bool distinct_ = false;
  DataType result_type_ = DataType::kInteger;
  uint64_t row_count_ = 0;       // COUNT(*)
  uint64_t non_null_count_ = 0;  // COUNT(x) / AVG denominator
  double sum_ = 0.0;
  int64_t int_sum_ = 0;
  bool int_exact_ = true;  // SUM over integers stays integer
  double sum_sq_ = 0.0;    // for STDDEV/VARIANCE
  Value min_, max_;
  std::vector<Value> seen_;  // DISTINCT support (small-N workloads)
};

}  // namespace idaa::sql
